"""Setup shim: metadata lives in pyproject.toml.

A setup.py is needed because this environment has no `wheel` package and no
network access, so pip's PEP 517 editable path (which shells out to
bdist_wheel) cannot run; the legacy `setup.py develop` path works offline.
"""
from setuptools import setup

setup()
