"""CPU baseline: dependence-aware task-parallel multifrontal execution.

Models a 32-core CPU running an optimized multifrontal package (CHOLMOD /
STRUMPACK with MKL, Section 3.2).  Unlike the GPU's rigid level-by-level
batching, CPU runtimes use fine-grained task parallelism with work
stealing, so the model is an event-driven list scheduler over the *actual*
assembly-tree dependences:

* a supernode becomes ready when all children finish;
* a ready supernode runs on one core at the per-core BLAS3 roofline rate
  for its front size; fronts large enough to be panel-parallelized may
  gang up to ``max_gang`` cores at ``gang_efficiency``;
* every task pays a small runtime/synchronization overhead;
* aggregate progress is additionally capped by memory bandwidth.

This captures why CPUs beat GPUs on FullChip-class matrices (no batching
cliffs, cores saturate on small fronts) while losing on large-front
matrices (32 cores of peak is 4.7x below one V100).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.baselines.roofline import DenseRoofline, cpu_core_roofline
from repro.obs import span
from repro.symbolic.analyze import SymbolicFactorization
from repro.tasks.flops import supernode_factor_flops


@dataclass(frozen=True)
class CPUSpec:
    """Parameters of one CPU platform."""

    name: str
    n_cores: int
    core_peak_gflops: float
    core_n_sat: float
    dram_gbs: float
    task_overhead_s: float    # runtime scheduling cost per supernode task
    max_gang: int             # cores a single large front may use
    gang_efficiency: float    # parallel efficiency of ganged panels
    gang_threshold: int       # fronts at least this large parallelize

    def roofline(self) -> DenseRoofline:
        return cpu_core_roofline(self.core_peak_gflops, self.core_n_sat)


# The paper's CPU: 32-core / 64-thread AMD Zen2 (Threadripper PRO 3975WX)
# at 3.5 GHz; Figure 5 marks its usable peak as 1500 GFLOP/s.
CPU_ZEN2_32C = CPUSpec(
    name="Zen2-32c", n_cores=32, core_peak_gflops=46.9, core_n_sat=256.0,
    dram_gbs=100.0, task_overhead_s=1.5e-6,
    max_gang=16, gang_efficiency=0.7, gang_threshold=2048,
)


@dataclass
class CPUResult:
    """Modeled CPU execution of one factorization."""

    name: str
    seconds: float
    flops: int
    critical_path_seconds: float
    memory_seconds: float

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds else 0.0


class CPUModel:
    """Executes a symbolic factorization under task-parallel scheduling."""

    def __init__(self, spec: CPUSpec = CPU_ZEN2_32C):
        self.spec = spec
        self.roofline = spec.roofline()

    def _task_seconds(self, front: int, n_cols: int,
                      symmetric: bool) -> tuple[float, int]:
        """(seconds, cores) for one supernode's factorization."""
        spec = self.spec
        flops = supernode_factor_flops(front, n_cols, symmetric)
        cores = 1
        rate = self.roofline.rate(front)
        if front >= spec.gang_threshold:
            cores = min(spec.max_gang, spec.n_cores)
            rate = rate * cores * spec.gang_efficiency
        seconds = flops / (rate * 1e9) + spec.task_overhead_s
        return seconds, cores

    def run(self, symbolic: SymbolicFactorization) -> CPUResult:
        with span(f"baseline.cpu.{self.spec.name}"):
            return self._run(symbolic)

    def _run(self, symbolic: SymbolicFactorization) -> CPUResult:
        symmetric = symbolic.kind == "cholesky"
        tree = symbolic.tree
        spec = self.spec
        n_sn = tree.n_supernodes
        children_left = [len(sn.children) for sn in tree.supernodes]
        ready = [sn.index for sn in tree.supernodes if not sn.children]
        heapq.heapify(ready)

        free_cores = spec.n_cores
        now = 0.0
        running: list[tuple[float, int, int]] = []  # (finish, sn, cores)
        finished = 0
        makespan = 0.0
        total_bytes = 0

        while finished < n_sn:
            # Start every ready task that fits.
            while ready and free_cores > 0:
                sn_index = heapq.heappop(ready)
                sn = tree.supernodes[sn_index]
                seconds, cores = self._task_seconds(
                    sn.front_size, sn.n_cols, symmetric
                )
                cores = min(cores, free_cores)
                free_cores -= cores
                heapq.heappush(running, (now + seconds, sn_index, cores))
                entries = sn.front_size * sn.front_size
                if symmetric:
                    entries = sn.front_size * (sn.front_size + 1) // 2
                total_bytes += 2 * entries * 8
            if not running:
                raise AssertionError("CPU model deadlocked (bad tree)")
            finish, sn_index, cores = heapq.heappop(running)
            now = max(now, finish)
            makespan = max(makespan, now)
            free_cores += cores
            finished += 1
            parent = tree.supernodes[sn_index].parent
            if parent >= 0:
                children_left[parent] -= 1
                if children_left[parent] == 0:
                    heapq.heappush(ready, parent)

        memory_seconds = total_bytes / (spec.dram_gbs * 1e9)
        seconds = max(makespan, memory_seconds)
        return CPUResult(
            name=spec.name,
            seconds=seconds,
            flops=symbolic.flops,
            critical_path_seconds=makespan,
            memory_seconds=memory_seconds,
        )
