"""Baseline performance models: GPU (CHOLMOD/STRUMPACK-style) and CPU.

The paper compares Spatula against state-of-the-art factorization packages
on an NVIDIA V100 and a 32-core Zen2 CPU.  We cannot run those here, so
this subpackage provides analytic-but-structure-aware models that execute
the *same symbolic factorization* (same supernodes, same dependences, same
FLOPs) under each platform's documented execution strategy:

* :mod:`repro.baselines.roofline` — dense-factorization throughput curves
  (the Figure 7 measurement, which the paper itself uses as its first-order
  explanation of GPU behaviour);
* :mod:`repro.baselines.gpu` — level-by-level batched execution (Figure 8)
  with per-kernel efficiency from the roofline, SM-level load imbalance,
  kernel-launch overhead, and a DRAM bound; V100 / A100 / H100 parameter
  sets for Table 5;
* :mod:`repro.baselines.cpu` — dependence-aware list scheduling of
  supernode tasks over 32 cores with per-core BLAS efficiency curves.

Both models consume a :class:`repro.symbolic.SymbolicFactorization`, so
"who wins where" follows real matrix structure exactly as in the paper.
"""

from repro.baselines.roofline import (
    DenseRoofline,
    cpu_core_roofline,
    gpu_dense_roofline,
)
from repro.baselines.gpu import GPUModel, GPU_V100, GPU_A100, GPU_H100
from repro.baselines.cpu import CPUModel, CPU_ZEN2_32C

__all__ = [
    "DenseRoofline",
    "gpu_dense_roofline",
    "cpu_core_roofline",
    "GPUModel",
    "GPU_V100",
    "GPU_A100",
    "GPU_H100",
    "CPUModel",
    "CPU_ZEN2_32C",
]
