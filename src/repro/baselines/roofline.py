"""Dense-factorization throughput curves (Figure 7).

Figure 7 measures V100 dense LU GFLOP/s as a function of matrix size:
performance "flattens around size 20000, and drops linearly below 10000".
We model this with a saturating curve

    rate(n) = peak * min(1, n / n_sat)

which reproduces both observations (linear ramp below saturation, flat
above) and is the paper's own first-order explanation for why small
supernodes destroy GPU utilization.  CPU cores saturate far earlier
(BLAS3 panels of a few hundred rows), which is why CPUs beat GPUs on
small-supernode matrices like FullChip (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DenseRoofline:
    """A saturating throughput curve for dense factorization kernels.

    Attributes:
        peak_gflops: asymptotic throughput on large matrices.
        n_sat: matrix size at which the curve reaches peak.
        floor_gflops: minimum rate (a single scalar pipeline's worth),
            so tiny kernels don't get an absurd zero rate.
    """

    peak_gflops: float
    n_sat: float
    floor_gflops: float = 1.0

    def rate(self, n: int | float) -> float:
        """Throughput in GFLOP/s for a dense factorization of size n."""
        frac = min(1.0, float(n) / self.n_sat)
        return max(self.floor_gflops, self.peak_gflops * frac)

    def utilization(self, n: int | float) -> float:
        return self.rate(n) / self.peak_gflops

    def curve(self, sizes) -> np.ndarray:
        """Vectorized rate over an array of sizes (for plotting Fig. 7)."""
        return np.array([self.rate(int(s)) for s in np.asarray(sizes)])


def gpu_dense_roofline(peak_gflops: float = 7000.0,
                       n_sat: float = 20000.0) -> DenseRoofline:
    """The V100 curve of Figure 7 (peak 7 TFLOP/s FP64, saturates ~20k)."""
    return DenseRoofline(peak_gflops=peak_gflops, n_sat=n_sat,
                         floor_gflops=2.0)


def cpu_core_roofline(peak_gflops: float = 46.9,
                      n_sat: float = 256.0) -> DenseRoofline:
    """One Zen2 core at 3.5 GHz: ~47 GFLOP/s FP64 peak, saturating on
    panels of a few hundred rows (MKL/BLIS DGEMM behaviour)."""
    return DenseRoofline(peak_gflops=peak_gflops, n_sat=n_sat,
                         floor_gflops=0.5)
