"""GPU baseline: level-by-level batched multifrontal execution.

Models how CHOLMOD-GPU and STRUMPACK execute sparse factorization
(Sections 3.1, Figure 8): supernodes are grouped by elimination-tree
*height* into batches; each batch is one (batched) kernel launch; within a
batch, supernode kernels run concurrently across the GPU's SMs.

The model captures the three inefficiencies the paper identifies:

1. *Small-kernel inefficiency*: each supernode kernel runs at the
   Figure 7 roofline rate for its front size, and can use at most the
   SM share that size can occupy.
2. *Batching load imbalance* (Figure 8): rigid kernels are list-scheduled
   onto SM groups; a batch retires at its makespan, so one big supernode
   next to many small ones wastes most of the machine.
3. *Level-by-level data movement*: every level writes its update matrices
   to DRAM and the next level reads them back (no producer-consumer
   reuse), so each level is also bounded by DRAM bandwidth.

Each batch additionally pays a kernel-launch overhead; deep trees of tiny
supernodes (FullChip-style circuit matrices) therefore collapse to launch
latency — the 0.3 GFLOP/s disaster of Figure 5.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.baselines.roofline import DenseRoofline, gpu_dense_roofline
from repro.obs import span
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.etree import NO_PARENT
from repro.tasks.flops import supernode_factor_flops


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of one GPU generation."""

    name: str
    peak_gflops: float
    n_sat: float              # dense-factorization saturation size (Fig. 7)
    n_sms: int
    dram_gbs: float
    launch_overhead_s: float  # per batched-kernel launch
    supernode_overhead_s: float = 1.5e-6
    # per-supernode setup inside a batch: pointer marshaling, extend-add
    # gather kernels, per-front cuBLAS/cuSolver calls

    def roofline(self) -> DenseRoofline:
        return gpu_dense_roofline(self.peak_gflops, self.n_sat)


# The V100 the paper evaluates against (7 TFLOP/s FP64, 900 GB/s HBM2).
GPU_V100 = GPUSpec("V100", peak_gflops=7000.0, n_sat=20000.0, n_sms=80,
                   dram_gbs=900.0, launch_overhead_s=5e-6)
# Table 5's newer generations. A100 improves utilization (larger cache,
# FP64 tensor cores -> earlier saturation); H100 raises peak much faster
# than its memory system, so utilization drops (as the paper observes).
GPU_A100 = GPUSpec("A100", peak_gflops=19500.0, n_sat=32000.0, n_sms=108,
                   dram_gbs=1900.0, launch_overhead_s=5e-6)
GPU_H100 = GPUSpec("H100", peak_gflops=51000.0, n_sat=90000.0, n_sms=114,
                   dram_gbs=2000.0, launch_overhead_s=5e-6)


@dataclass
class GPUResult:
    """Modeled GPU execution of one factorization."""

    name: str
    seconds: float
    flops: int
    n_batches: int
    compute_seconds: float
    memory_seconds: float
    launch_seconds: float

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds else 0.0


class GPUModel:
    """Executes a symbolic factorization under the batched GPU strategy."""

    def __init__(self, spec: GPUSpec = GPU_V100):
        self.spec = spec
        self.roofline = spec.roofline()

    def _batches(self, symbolic: SymbolicFactorization) -> list[list[int]]:
        """Group supernodes by height above the leaves (Figure 8)."""
        supernodes = symbolic.tree.supernodes
        heights = np.zeros(len(supernodes), dtype=np.int64)
        for sn in supernodes:  # postorder: children before parents
            if sn.parent != NO_PARENT:
                heights[sn.parent] = max(heights[sn.parent],
                                         heights[sn.index] + 1)
        batches: list[list[int]] = [
            [] for _ in range(int(heights.max()) + 1 if len(heights) else 0)
        ]
        for sn in supernodes:
            batches[heights[sn.index]].append(sn.index)
        return batches

    def _kernel(self, front: int, n_cols: int, symmetric: bool
                ) -> tuple[float, int]:
        """(seconds, SM share) of one supernode's factorization kernel."""
        flops = supernode_factor_flops(front, n_cols, symmetric)
        rate = self.roofline.rate(front)  # GFLOP/s
        seconds = flops / (rate * 1e9)
        # SM share this front can occupy: fraction of the curve it reaches.
        sms = max(1, int(round(self.spec.n_sms
                               * self.roofline.utilization(front))))
        return seconds, sms

    def run(self, symbolic: SymbolicFactorization) -> GPUResult:
        with span(f"baseline.gpu.{self.spec.name}"):
            return self._run(symbolic)

    def _run(self, symbolic: SymbolicFactorization) -> GPUResult:
        symmetric = symbolic.kind == "cholesky"
        supernodes = symbolic.tree.supernodes
        compute = 0.0
        memory = 0.0
        launches = 0.0
        n_batches = 0
        for batch in self._batches(symbolic):
            if not batch:
                continue
            n_batches += 1
            # Rigid-kernel list scheduling onto SMs (imbalance, Figure 8).
            kernels = []
            batch_bytes = 0
            for idx in batch:
                sn = supernodes[idx]
                seconds, sms = self._kernel(sn.front_size, sn.n_cols,
                                            symmetric)
                kernels.append((seconds, sms))
                # Level-by-level data movement: read the front (assembled
                # from children updates in DRAM), write back L columns and
                # the update matrix.
                entries = sn.front_size * sn.front_size
                if symmetric:
                    entries = sn.front_size * (sn.front_size + 1) // 2
                batch_bytes += 2 * entries * 8
            makespan = _list_schedule_makespan(kernels, self.spec.n_sms)
            # Per-supernode setup is host-side and serial: pointer
            # marshaling, extend-add staging, per-front library calls.
            setup = len(batch) * self.spec.supernode_overhead_s
            compute_t = makespan + setup
            memory_t = batch_bytes / (self.spec.dram_gbs * 1e9)
            compute += compute_t
            memory += memory_t
            launches += self.spec.launch_overhead_s
        # Within a level compute and traffic overlap; levels serialize.
        seconds = launches + compute + memory
        # Overlap credit: the faster of compute/memory hides under the
        # slower one per level; approximate globally.
        seconds -= min(compute, memory) * 0.5
        return GPUResult(
            name=self.spec.name,
            seconds=seconds,
            flops=symbolic.flops,
            n_batches=n_batches,
            compute_seconds=compute,
            memory_seconds=memory,
            launch_seconds=launches,
        )


def _list_schedule_makespan(kernels: list[tuple[float, int]],
                            n_sms: int) -> float:
    """Makespan of rigid (time, width) kernels on n_sms workers.

    Longest-processing-time-first list scheduling over SM capacity —
    the standard approximation for batched-kernel execution.
    """
    if not kernels:
        return 0.0
    kernels = sorted(kernels, reverse=True)  # longest first
    # Event-driven: track (finish_time, sms_released); greedily start
    # kernels as capacity allows.
    free_sms = n_sms
    now = 0.0
    running: list[tuple[float, int]] = []  # heap of (finish, sms)
    makespan = 0.0
    for seconds, sms in kernels:
        sms = min(sms, n_sms)
        while free_sms < sms:
            finish, released = heapq.heappop(running)
            now = max(now, finish)
            free_sms += released
        heapq.heappush(running, (now + seconds, sms))
        free_sms -= sms
        makespan = max(makespan, now + seconds)
    return makespan
