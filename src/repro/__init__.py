"""repro — a full Python reproduction of *Spatula: A Hardware Accelerator
for Sparse Matrix Factorization* (Feldmann & Sanchez, MICRO 2023).

The package layers, bottom to top:

* :mod:`repro.sparse`   — sparse formats, MatrixMarket IO, and the
  synthetic evaluation-matrix suite;
* :mod:`repro.ordering` — fill-reducing orderings + static pivoting;
* :mod:`repro.symbolic` — elimination trees, fill structures, supernodes,
  CSQ fronts, tiling;
* :mod:`repro.numeric`  — dense kernels, multifrontal Cholesky/LU, and the
  end-to-end :class:`~repro.numeric.SparseSolver`;
* :mod:`repro.tasks`    — the tile-task decomposition and FLOP accounting;
* :mod:`repro.arch`     — the Spatula cycle-level simulator (the paper's
  contribution);
* :mod:`repro.baselines`— GPU and CPU performance models;
* :mod:`repro.eval`     — drivers regenerating every table and figure;
* :mod:`repro.obs`      — the instrumentation layer: metrics registry,
  pipeline spans, run artifacts, logging (see docs/OBSERVABILITY.md).

Quick start::

    import numpy as np
    from repro import SparseSolver, SpatulaConfig, simulate
    from repro.sparse import grid_laplacian_3d

    A = grid_laplacian_3d(12, seed=0)
    solver = SparseSolver(A, kind="cholesky")       # functional solve
    x = solver.solve(np.ones(A.n_rows))

    report = simulate(A, kind="cholesky",           # timing on Spatula
                      config=SpatulaConfig.paper())
    print(report.summary())
"""

from repro.arch import SimReport, SpatulaConfig, SpatulaSim, simulate
from repro.numeric import SparseSolver
from repro.obs import (
    MetricsRegistry,
    RunArtifact,
    enable_tracing,
    get_tracer,
    span,
)
from repro.sparse import CSCMatrix, COOMatrix
from repro.symbolic import SymbolicFactorization, symbolic_factorize

__version__ = "1.0.0"

__all__ = [
    "CSCMatrix",
    "COOMatrix",
    "SparseSolver",
    "SymbolicFactorization",
    "symbolic_factorize",
    "SpatulaConfig",
    "SpatulaSim",
    "SimReport",
    "simulate",
    "MetricsRegistry",
    "RunArtifact",
    "span",
    "get_tracer",
    "enable_tracing",
    "__version__",
]
