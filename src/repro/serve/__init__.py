"""Solver-as-a-service: a long-lived, multi-tenant solve server.

The serving layer turns :class:`~repro.numeric.solver.SparseSolver` into
a warm, shared resource: per-pattern workers keep factorizations
resident, concurrent same-pattern solve requests coalesce into blocked
multi-RHS panels (bit-identically, via batch-invariant ``rhs_pad``
solves), and distinct patterns factor and solve concurrently against the
sharded analysis cache.  See docs/SERVING.md.
"""

from repro.serve.client import InProcessClient, SocketClient
from repro.serve.metrics import (
    LatencyRecorder,
    export_serve_gauges,
    stats_to_prometheus,
)
from repro.serve.server import (
    PatternWorker,
    ServeConfig,
    SolveServer,
    run_unix_server,
    serve_unix,
)
from repro.serve.top import render_dashboard, run_top

__all__ = [
    "InProcessClient",
    "LatencyRecorder",
    "PatternWorker",
    "ServeConfig",
    "SocketClient",
    "SolveServer",
    "export_serve_gauges",
    "render_dashboard",
    "run_top",
    "run_unix_server",
    "serve_unix",
    "stats_to_prometheus",
]
