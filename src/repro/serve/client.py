"""Clients for the solve server.

:class:`InProcessClient` talks numpy directly to a
:class:`~repro.serve.server.SolveServer` in the same process — the path
tests and the ``serve-bench`` load generator use, where wire encoding
would only add noise to the measurement.  :class:`SocketClient` speaks
the NDJSON protocol over the unix socket like an external tenant would.

Both expose the same calls: ``factor`` (returns the pattern handle),
``solve`` (vector or panel in, array out), ``refactorize``, ``stats``
(optionally windowed, optionally Prometheus text), and ``health`` (the
cheap liveness probe).  ``repro serve-stats`` and ``repro serve-top``
are thin consumers of the last two (docs/SERVING.md "Operating the
server").
"""

from __future__ import annotations

import socket

import numpy as np

from repro.serve import protocol
from repro.serve.server import SolveServer
from repro.sparse.csc import CSCMatrix


class InProcessClient:
    """Zero-copy client bound to an in-process server."""

    def __init__(self, server: SolveServer) -> None:
        self.server = server

    def factor(self, matrix: CSCMatrix, kind: str | None = None,
               ordering: str = "amd") -> str:
        return self.server.factor(matrix, kind=kind,
                                  ordering=ordering)["pattern"]

    def solve(self, pattern: str, b: np.ndarray) -> np.ndarray:
        return self.server.solve(pattern, b)

    def refactorize(self, pattern: str, data: np.ndarray) -> None:
        self.server.refactorize(pattern, data)

    def stats(self, window_s: float | None = None,
              format: str | None = None) -> dict | str:
        if format == "text":
            from repro.serve.metrics import stats_to_prometheus

            return stats_to_prometheus(
                self.server.stats(window_s=window_s),
                self.server.health())
        return self.server.stats(window_s=window_s)

    def health(self) -> dict:
        return self.server.health()

    def shutdown(self) -> None:
        self.server.shutdown()


class SocketClient:
    """Blocking NDJSON client over the server's unix socket.

    One request in flight at a time per client; run several clients (or
    threads, one client each) to exercise cross-connection coalescing.
    """

    def __init__(self, path: str, timeout: float = 60.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def request(self, message: dict) -> dict:
        """Send one request dict; block for (and return) its response."""
        self._next_id += 1
        message = {"id": self._next_id, **message}
        self._sock.sendall(protocol.encode(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = protocol.decode(line)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "request failed"))
        return response

    def factor(self, matrix: CSCMatrix, kind: str | None = None,
               ordering: str = "amd") -> str:
        response = self.request({
            "op": "factor",
            "matrix": protocol.matrix_to_wire(matrix),
            "kind": kind,
            "ordering": ordering,
        })
        return response["pattern"]

    def solve(self, pattern: str, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            response = self.request({"op": "solve", "pattern": pattern,
                                     "b": b.tolist()})
            return np.asarray(response["x"], dtype=np.float64)
        response = self.request({"op": "solve", "pattern": pattern,
                                 "bs": b.T.tolist()})
        return np.asarray(response["xs"], dtype=np.float64).T

    def refactorize(self, pattern: str, data: np.ndarray) -> None:
        self.request({"op": "refactorize", "pattern": pattern,
                      "data": np.asarray(data, dtype=np.float64).tolist()})

    def stats(self, window_s: float | None = None,
              format: str | None = None) -> dict | str:
        """Server stats; ``format="text"`` returns Prometheus text."""
        message: dict = {"op": "stats"}
        if window_s is not None:
            message["window_s"] = window_s
        if format is not None:
            message["format"] = format
        response = self.request(message)
        return response["text"] if format == "text" \
            else response["stats"]

    def health(self) -> dict:
        return self.request({"op": "health"})["health"]

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def close(self) -> None:
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
