"""Wire protocol of the solve server: newline-delimited JSON.

One request or response per line (NDJSON) over a local stream socket —
deliberately boring, so any language (or ``nc``) can talk to the server.
Requests carry an ``op`` plus op-specific fields; responses echo the
request ``id`` and carry ``ok`` plus either the result payload or an
``error`` string.

Operations
----------

``factor``
    Register a matrix and build (or warm) its per-pattern solver::

        {"op": "factor", "id": 1,
         "matrix": {"n": 4, "indptr": [...], "indices": [...],
                    "data": [...]},
         "kind": "cholesky" | "lu" | null,     # null: infer from symmetry
         "ordering": "amd"}                    # optional
        -> {"id": 1, "ok": true, "pattern": "<key>", "n": 4,
            "factor_nnz": 10, "warm": false}

    ``pattern`` is the handle every later request uses.  Re-sending
    ``factor`` for a known pattern refactorizes with the new values on
    the warm path (``"warm": true``).

``solve``
    One right-hand side against a registered pattern::

        {"op": "solve", "id": 2, "pattern": "<key>", "b": [...]}
        -> {"id": 2, "ok": true, "x": [...], "batch_k": 5}

    ``batch_k`` reports how many concurrent requests shared the blocked
    panel this response rode in (1 = not coalesced).  An (n, k) panel
    may be sent directly as a list of k column lists under ``"bs"``.

``refactorize``
    New values on the registered pattern (same nonzero layout)::

        {"op": "refactorize", "id": 3, "pattern": "<key>",
         "data": [...]}
        -> {"id": 3, "ok": true}

``stats``
    Full operational snapshot: cumulative counters, coalescing stats,
    latency percentiles, the rolling-window SLO view, per-worker queue
    depth/occupancy, slow-request exemplars, and analysis-cache shard
    stats.  Read-only — polling never mutates server gauges.  Options::

        {"op": "stats", "id": 4,
         "window_s": 30,            # optional: rolling-window width
         "format": "text"}          # optional: Prometheus text instead
        -> {"id": 4, "ok": true, "stats": {...}}      # format json
        -> {"id": 4, "ok": true, "text": "# TYPE ..."} # format text

``health``
    Cheap liveness probe: uptime, heartbeat count and age, per-worker
    liveness and queue depth, in-flight request count, analysis-cache
    occupancy::

        {"op": "health", "id": 5}
        -> {"id": 5, "ok": true, "health": {"ok": true, ...}}

``shutdown``
    Drain and stop the server.

Every solve/factor/refactorize response also carries the
server-assigned ``request_id`` of the request that produced it — the
trace handle the slow-request exemplars and telemetry spans use
(docs/SERVING.md "Operating the server").

Errors come back as ``{"id": ..., "ok": false, "error": "..."}`` and
never tear down the connection.
"""

from __future__ import annotations

import json

import numpy as np

from repro.sparse.csc import CSCMatrix

#: Recognised request operations.
OPS = ("factor", "solve", "refactorize", "stats", "health", "shutdown")

#: Recognised ``stats`` rendering formats.
STATS_FORMATS = ("json", "text")


class ProtocolError(ValueError):
    """A structurally invalid request (unknown op, missing field)."""


def matrix_to_wire(matrix: CSCMatrix) -> dict:
    """JSON-safe dict encoding of a square CSC matrix."""
    return {
        "n": int(matrix.n_rows),
        "indptr": np.asarray(matrix.indptr).tolist(),
        "indices": np.asarray(matrix.indices).tolist(),
        "data": np.asarray(matrix.data).tolist(),
    }


def matrix_from_wire(payload: dict) -> CSCMatrix:
    """Decode :func:`matrix_to_wire` output back into a CSCMatrix."""
    try:
        n = int(payload["n"])
        indptr = np.asarray(payload["indptr"], dtype=np.int64)
        indices = np.asarray(payload["indices"], dtype=np.int64)
        data = np.asarray(payload["data"], dtype=np.float64)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad matrix payload: {exc}") from None
    return CSCMatrix(n, n, indptr, indices, data)


def encode(message: dict) -> bytes:
    """One NDJSON frame (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes | str) -> dict:
    """Parse one NDJSON frame into a message dict."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def validate_request(message: dict) -> str:
    """Check a request's shape; returns its ``op``."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    if op == "factor" and "matrix" not in message:
        raise ProtocolError("factor request needs a 'matrix' field")
    if op in ("solve", "refactorize") and "pattern" not in message:
        raise ProtocolError(f"{op} request needs a 'pattern' field")
    if op == "solve" and "b" not in message and "bs" not in message:
        raise ProtocolError("solve request needs 'b' (or 'bs') field")
    if op == "refactorize" and "data" not in message:
        raise ProtocolError("refactorize request needs a 'data' field")
    if op == "stats":
        fmt = message.get("format", "json")
        if fmt not in STATS_FORMATS:
            raise ProtocolError(
                f"unknown stats format {fmt!r} "
                f"(expected one of {STATS_FORMATS})")
        window_s = message.get("window_s")
        if window_s is not None and (
                not isinstance(window_s, (int, float))
                or window_s <= 0):
            raise ProtocolError("window_s must be a positive number")
    return op


# The first parameter is named ``req_id`` (not ``request_id``) so a
# payload carrying the server-assigned ``request_id`` trace handle
# never collides with the wire message id.

def ok_response(req_id, **payload) -> dict:
    return {"id": req_id, "ok": True, **payload}


def error_response(req_id, error: str) -> dict:
    return {"id": req_id, "ok": False, "error": str(error)}
