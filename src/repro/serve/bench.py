"""Load generator for the solve server (``repro serve-bench``).

Drives a :class:`~repro.serve.server.SolveServer` with multi-tenant
solve traffic built from the fuzz-suite matrix families
(:mod:`repro.verify.generators`) and measures what serving adds over the
raw solver: request latency percentiles, sustained throughput, and the
coalescing win.

Two traffic shapes:

* **closed loop** — ``clients`` threads each keep exactly one request in
  flight (think: simulation processes blocked on their solve).
  Concurrency is fixed, arrival rate adapts to service time.
* **open loop** — requests arrive on a fixed schedule at ``rate``
  requests/second regardless of completions (think: independent
  tenants).  Queueing shows up as latency, which is the point.

Every run measures two phases over the *same* workload: the coalescing
server as configured, and an uncoalesced baseline
(``max_batch=1, rhs_pad=1`` — natural per-request serving).  The
throughput ratio lands in ``serve.speedup.coalesce``; the acceptance bar
for same-pattern single-RHS traffic is >= 5x (ISSUE 8, measured in
:func:`run_bench` and gated nowhere — the trend gate watches it
instead).

Bit-identity: with ``verify=True`` (default) every coalesced response is
compared — ``np.array_equal``, not allclose — against a direct
``SparseSolver(A, rhs_pad=max_batch)`` solve of the same right-hand
side, proving the coalescing layer never changes a single bit of any
answer (see docs/SERVING.md for why ``rhs_pad`` makes that possible).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.numeric.solver import SparseSolver
from repro.obs.metrics import global_registry
from repro.serve.metrics import (
    DEFAULT_RING,
    REQUEST_PHASE,
    WINDOW_THROUGHPUT_GAUGE,
    export_serve_gauges,
)
from repro.serve.server import ServeConfig, SolveServer
from repro.sparse.csc import CSCMatrix
from repro.verify.generators import build_case, family_names


@dataclass
class BenchConfig:
    """Workload and server knobs for one ``serve-bench`` run."""

    family: str = "spd_random"      # fuzz-suite matrix family
    patterns: int = 2               # distinct tenants (matrices)
    clients: int = 16               # closed-loop concurrency
    requests: int = 400             # total solve requests per phase
    mode: str = "closed"            # "closed" | "open"
    rate: float = 500.0             # open-loop arrivals per second
    rhs_pool: int = 8               # distinct right-hand sides per pattern
    seed: int = 0
    max_n: int = 96                 # generator size cap
    min_n: int = 24                 # skip degenerate tiny cases
    coalesce_window_s: float = 0.002
    max_batch: int = 16
    verify: bool = True             # bit-identity check vs direct solver
    baseline: bool = True           # also run the uncoalesced phase

    def validate(self) -> None:
        if self.family not in family_names():
            raise ValueError(
                f"unknown family {self.family!r}; "
                f"choose from {family_names()}")
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if min(self.patterns, self.clients, self.requests,
               self.rhs_pool, self.max_batch) < 1:
            raise ValueError("patterns/clients/requests/rhs_pool/"
                             "max_batch must all be >= 1")


def build_workload(config: BenchConfig
                   ) -> tuple[list[CSCMatrix], list[list[np.ndarray]]]:
    """Deterministic matrices + right-hand-side pools for the run.

    Fuzz cases that the generator expects to be singular are skipped
    (the bench measures serving, not failure handling), as are cases
    below ``min_n`` — a 2x2 tenant measures dispatch overhead, not
    coalescing.
    """
    matrices: list[CSCMatrix] = []
    seed = config.seed
    while len(matrices) < config.patterns:
        case = build_case(config.family, seed, max_n=config.max_n)
        seed += 1
        if case.expect != "ok" or case.matrix.n_rows < config.min_n:
            continue
        matrices.append(case.matrix)
        if seed > config.seed + 100 * config.patterns:
            raise RuntimeError(
                f"family {config.family!r} yields too few solvable cases")
    pools = []
    for i, matrix in enumerate(matrices):
        rng = np.random.default_rng(config.seed * 7919 + i)
        pools.append([rng.standard_normal(matrix.n_rows)
                      for _ in range(config.rhs_pool)])
    return matrices, pools


def _run_phase(matrices: list[CSCMatrix],
               pools: list[list[np.ndarray]],
               config: BenchConfig,
               server_config: ServeConfig,
               label: str) -> dict:
    """Run one traffic phase against a fresh server; return its stats.

    Factorization happens before the clock starts — the phase measures
    warm serving, which is the workload the server exists for.
    """
    server = SolveServer(server_config)
    patterns = [server.factor(m)["pattern"] for m in matrices]
    records: list[tuple[int, int, np.ndarray]] = []
    records_lock = threading.Lock()
    errors: list[str] = []

    def pick(i: int) -> tuple[int, int]:
        # Deterministic request mix: round-robin over patterns, striding
        # through each pattern's RHS pool.
        pi = i % len(patterns)
        return pi, (i // len(patterns)) % len(pools[pi])

    t0 = time.perf_counter()
    if config.mode == "closed":
        counter = itertools.count()

        def client() -> None:
            while True:
                i = next(counter)
                if i >= config.requests:
                    return
                pi, ri = pick(i)
                try:
                    x = server.solve(patterns[pi], pools[pi][ri])
                except Exception as exc:      # surface, don't hang peers
                    with records_lock:
                        errors.append(str(exc))
                    return
                with records_lock:
                    records.append((pi, ri, x))

        threads = [threading.Thread(target=client, daemon=True)
                   for _ in range(config.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        # Open loop: submissions at fixed arrival times, completions
        # collected afterwards.  Latency (measured server-side from
        # enqueue) then includes queueing delay under overload.
        interval = 1.0 / config.rate
        futures = []
        for i in range(config.requests):
            target = t0 + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            pi, ri = pick(i)
            futures.append((pi, ri,
                            server.submit_solve(patterns[pi],
                                                pools[pi][ri])))
        for pi, ri, future in futures:
            try:
                records.append((pi, ri, future.result()["x"]))
            except Exception as exc:
                errors.append(str(exc))
    elapsed = time.perf_counter() - t0

    # Side-effect-free snapshot (the bench is its own collection point
    # and exports the canonical gauges once, in run_bench); the window
    # covers the whole phase, so the windowed view here is the live-SLO
    # reading an operator polling mid-run would have seen.
    stats = server.stats(export=False, window_s=max(elapsed, 1.0))
    server.shutdown()
    completed = len(records)
    return {
        "label": label,
        "mode": config.mode,
        "elapsed_s": elapsed,
        "completed": completed,
        "errors": errors,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_ms": stats["latency_ms"].get(REQUEST_PHASE, {}),
        "window": stats["window"],
        "coalesce": stats["coalesce"],
        "queue_depth_max": stats["queue_depth_max"],
        "records": records,
    }


def _verify_records(matrices: list[CSCMatrix],
                    pools: list[list[np.ndarray]],
                    records: list[tuple[int, int, np.ndarray]],
                    rhs_pad: int) -> dict:
    """Bit-compare every served response against direct solves."""
    references: dict[tuple[int, int], np.ndarray] = {}
    solvers: dict[int, SparseSolver] = {}
    mismatches = 0
    for pi, ri, x in records:
        key = (pi, ri)
        if key not in references:
            if pi not in solvers:
                solvers[pi] = SparseSolver(matrices[pi],
                                           rhs_pad=rhs_pad)
            references[key] = solvers[pi].solve(pools[pi][ri])
        if not np.array_equal(x, references[key]):
            mismatches += 1
    return {"checked": len(records), "mismatches": mismatches,
            "bit_identical": mismatches == 0}


def run_bench(config: BenchConfig | None = None) -> dict:
    """Run the full bench: coalesced phase, baseline phase, verification.

    Exports the ``serve.*`` gauges (from the *coalesced* phase — that is
    the configuration the server ships with) into the global registry so
    the caller's run artifact and the history trend gate pick them up.
    """
    config = config or BenchConfig()
    config.validate()
    matrices, pools = build_workload(config)

    # The latency ring must out-size the request count so summary()
    # stays the exact cumulative distribution and the bench artifact is
    # bit-stable for a fixed workload (repro.serve.metrics).
    ring = max(DEFAULT_RING, 4 * config.requests)
    coalesced = _run_phase(
        matrices, pools, config,
        ServeConfig(coalesce_window_s=config.coalesce_window_s,
                    max_batch=config.max_batch, latency_ring=ring),
        label="coalesced")

    result = {
        "config": {
            "family": config.family,
            "patterns": config.patterns,
            "clients": config.clients,
            "requests": config.requests,
            "mode": config.mode,
            "rate": config.rate if config.mode == "open" else None,
            "max_n": config.max_n,
            "coalesce_window_ms": config.coalesce_window_s * 1e3,
            "max_batch": config.max_batch,
            "sizes": [m.n_rows for m in matrices],
        },
        "coalesced": {k: v for k, v in coalesced.items()
                      if k != "records"},
    }

    if config.baseline:
        baseline = _run_phase(
            matrices, pools, config,
            ServeConfig(coalesce_window_s=0.0, max_batch=1, rhs_pad=1,
                        latency_ring=ring),
            label="baseline")
        result["baseline"] = {k: v for k, v in baseline.items()
                              if k != "records"}
        if baseline["throughput_rps"] > 0:
            result["speedup_coalesce"] = (coalesced["throughput_rps"]
                                          / baseline["throughput_rps"])

    if config.verify:
        result["verify"] = _verify_records(
            matrices, pools, coalesced["records"], config.max_batch)

    # Export the canonical serve.* gauges from the coalesced phase —
    # this is the bench's one explicit collection point (it runs after
    # both phases, so the shipped configuration wins over the
    # baseline's shutdown-time export).
    registry = global_registry()
    for stat in ("p50_ms", "p95_ms", "p99_ms"):
        value = coalesced["latency_ms"].get(stat)
        if value is not None:
            registry.gauge(
                f"serve.latency.{REQUEST_PHASE}.{stat}").set(value)
    window_request = coalesced["window"]["latency_ms"].get(
        REQUEST_PHASE, {})
    for stat in ("p50_ms", "p95_ms", "p99_ms"):
        if stat in window_request:
            registry.gauge(
                f"serve.window.latency.{REQUEST_PHASE}.{stat}"
            ).set(window_request[stat])
    registry.gauge(WINDOW_THROUGHPUT_GAUGE).set(
        coalesced["window"]["throughput_rps"])
    export_serve_gauges(
        throughput_rps=coalesced["throughput_rps"],
        batch_mean=coalesced["coalesce"]["batch_mean"] or None,
        queue_depth_max=coalesced["queue_depth_max"],
        coalesce_speedup=result.get("speedup_coalesce"),
    )
    return result


def sweep_modes(config: BenchConfig | None = None) -> dict:
    """Closed- and open-loop runs over one workload (CI smoke helper)."""
    config = config or BenchConfig()
    out = {}
    for mode in ("closed", "open"):
        out[mode] = run_bench(replace(config, mode=mode))
    return out
