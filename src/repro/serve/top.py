"""``repro serve-top``: a live terminal dashboard for the solve server.

Polls the ``health`` and ``stats`` ops over the unix socket and renders
an htop-style view: a header line (uptime, heartbeat, inflight, window
throughput), a per-pattern-worker lane table (liveness, queue depth,
busy/idle, batch occupancy), a rolling latency line with a unicode
sparkline of the windowed p50 trend, and the slowest-request exemplars
with their phase breakdown.  Pure consumer: everything it shows comes
from the wire surface any external scraper could poll
(docs/SERVING.md "Operating the server").

The renderer is a pure function of (health, stats, trend) so it is unit
testable without a terminal; the poll loop owns only timing, screen
clearing, and the bounded p50-trend deque.
"""

from __future__ import annotations

import sys
import time
from collections import deque

from repro.obs.live import sparkline
from repro.serve.metrics import REQUEST_PHASE

#: Sparkline width (poll intervals of windowed p50 history kept).
TREND_POINTS = 48

_CLEAR = "\x1b[H\x1b[2J"


def _fmt_ms(value: float) -> str:
    return f"{value:8.3f}ms"


def _short(pattern: str, width: int = 14) -> str:
    return pattern if len(pattern) <= width else pattern[:width - 1] + "…"


def render_dashboard(health: dict, stats: dict,
                     trend: list[float] | None = None) -> str:
    """Render one dashboard frame as a plain string (no ANSI clears)."""
    lines = []
    window = stats.get("window", {})
    window_lat = window.get("latency_ms", {})
    request = window_lat.get(REQUEST_PHASE, {})
    status = "up" if health.get("ok") else \
        ("stopping" if health.get("stopping") else "DEGRADED")
    lines.append(
        f"repro serve-top — {status}  "
        f"uptime {health.get('uptime_s', 0.0):8.1f}s  "
        f"heartbeat #{health.get('heartbeats', 0)} "
        f"({health.get('heartbeat_age_s', 0.0):.1f}s ago)")
    lines.append(
        f"window {stats.get('window_s', 0):g}s: "
        f"{window.get('throughput_rps', 0.0):8.1f} req/s  "
        f"inflight {window.get('inflight', 0):>4}  "
        f"queued {window.get('queue_depth', 0):>4}  "
        f"responses {stats.get('responses', 0)}  "
        f"errors {stats.get('errors', 0)}")
    p50 = request.get("p50_ms", 0.0)
    lines.append(
        f"latency (window): p50 {_fmt_ms(p50)}  "
        f"p95 {_fmt_ms(request.get('p95_ms', 0.0))}  "
        f"p99 {_fmt_ms(request.get('p99_ms', 0.0))}  "
        f"max {_fmt_ms(request.get('max_ms', 0.0))}")
    if trend:
        lines.append(f"p50 trend: {sparkline(trend, width=TREND_POINTS)} "
                     f"({len(trend)} samples)")
    lines.append("")
    lines.append(f"{'pattern':<16}{'state':<7}{'queue':>6}{'served':>8}"
                 f"{'batches':>9}{'batch k':>9}{'idle':>8}")
    workers = stats.get("workers", {})
    for pattern in sorted(workers):
        w = workers[pattern]
        state = "dead" if not w.get("alive", False) else \
            ("busy" if w.get("busy") else "idle")
        mean_k = (w.get("columns", 0) / w["batches"]
                  if w.get("batches") else 0.0)
        lines.append(
            f"{_short(pattern, 15):<16}{state:<7}"
            f"{w.get('queue_depth', 0):>6}{w.get('served', 0):>8}"
            f"{w.get('batches', 0):>9}{mean_k:>9.2f}"
            f"{w.get('idle_s', 0.0):>7.1f}s")
    if not workers:
        lines.append("  (no patterns registered)")
    exemplars = stats.get("exemplars", [])
    if exemplars:
        lines.append("")
        lines.append("slowest requests:")
        for ex in exemplars[:5]:
            phases = ex.get("phases_ms", {})
            lines.append(
                f"  {ex.get('request_id', '?'):<8}"
                f"{ex.get('op', '?'):<12}"
                f"{ex.get('latency_ms', 0.0):>9.3f}ms  "
                f"batch {ex.get('batch_k', 1):>3}  "
                f"queue {phases.get('queue_wait', 0.0):7.3f}  "
                f"coalesce {phases.get('coalesce_wait', 0.0):7.3f}  "
                f"solve {phases.get('solve', 0.0):7.3f}")
    cache = stats.get("analysis_cache", {})
    lines.append("")
    lines.append(
        f"analysis cache: {cache.get('size', 0)}/"
        f"{cache.get('capacity', 0)} entries, "
        f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses")
    return "\n".join(lines) + "\n"


def run_top(socket_path: str, interval_s: float = 1.0,
            iterations: int = 0, window_s: float | None = None,
            clear: bool = True, out=None) -> int:
    """Poll-and-render loop.  ``iterations=0`` runs until Ctrl-C (or
    the server goes away); a positive count renders that many frames —
    what the tests and one-shot scripts use.  Returns an exit code."""
    from repro.serve.client import SocketClient

    out = out if out is not None else sys.stdout
    trend: deque[float] = deque(maxlen=TREND_POINTS)
    frames = 0
    try:
        with SocketClient(socket_path) as client:
            while True:
                health = client.health()
                stats = client.stats(window_s=window_s)
                request = stats.get("window", {}) \
                    .get("latency_ms", {}).get(REQUEST_PHASE, {})
                trend.append(request.get("p50_ms", 0.0))
                frame = render_dashboard(health, stats, list(trend))
                out.write((_CLEAR if clear else "") + frame)
                out.flush()
                frames += 1
                if iterations and frames >= iterations:
                    return 0
                time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"serve-top: server went away ({exc})", file=sys.stderr)
        return 0 if frames else 1
