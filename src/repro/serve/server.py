"""The long-lived, multi-tenant solve server.

``SolveServer`` is the threaded core: a table of per-pattern workers,
each owning one warm :class:`~repro.numeric.solver.SparseSolver`.
Requests against *distinct* patterns factor and solve concurrently
(distinct worker threads, distinct analysis-cache shards); requests
against the *same* pattern share one warm
:class:`~repro.numeric.engine.NumericContext` and are serialized by
their worker — which is what lets it coalesce them.

Coalescing: when a worker dequeues a solve request it keeps draining the
*contiguous* run of solve requests behind it (never past a factor /
refactorize barrier, so values can never be mixed across a
refactorization) and waits up to ``coalesce_window_s`` for more to
arrive, bounded by ``max_batch`` columns.  The batch is stacked into one
blocked (n, k) panel and solved in a single sweep — concurrent
single-RHS traffic rides the multi-RHS path that is ~29x faster than
k separate solves.  Workers are built with
``SparseSolver(rhs_pad=max_batch)``, so every dense kernel runs at
batch-size-independent shapes and each response is **bit-identical** no
matter which requests happened to share its panel (docs/SERVING.md).

Live observability: every request gets a server-assigned **request id**
at submission and carries it through coalescing — a blocked panel knows
its rider ids, responses echo the id, and per-request phase spans
(``queue_wait`` → ``coalesce_wait`` → ``solve``) flow into the
telemetry sink when one is active.  The server keeps rolling-window
latency/throughput views (:class:`repro.serve.metrics.LatencyRecorder`),
a bounded top-K slow-request exemplar ring
(:class:`repro.obs.live.ExemplarRing`), per-worker live queue
depth/occupancy, and a heartbeat counter — all surfaced by the
side-effect-free :meth:`SolveServer.stats` / :meth:`SolveServer.health`
and, over the wire, by the ``stats`` / ``health`` ops
(docs/SERVING.md "Operating the server").

The asyncio front end (:func:`serve_unix` / :func:`run_unix_server`)
speaks the NDJSON protocol of :mod:`repro.serve.protocol` over a unix
socket, fanning request handling onto a thread pool so concurrent
connections (and pipelined requests on one connection) coalesce too.
In-process callers — tests, benchmarks — skip the wire entirely via
:class:`repro.serve.client.InProcessClient`.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.numeric.cache import analysis_cache, pattern_digest
from repro.numeric.solver import SparseSolver
from repro.obs import telemetry
from repro.obs.live import ExemplarRing
from repro.obs.metrics import global_registry
from repro.obs.spans import Span
from repro.serve import protocol
from repro.serve.metrics import (
    DEFAULT_RING,
    REQUEST_PHASE,
    LatencyRecorder,
    export_serve_gauges,
    stats_to_prometheus,
)
from repro.sparse.csc import CSCMatrix

logger = logging.getLogger(__name__)


@dataclass
class ServeConfig:
    """Tuning knobs of the solve server (see docs/SERVING.md)."""

    #: How long a worker holds a solve batch open waiting for more
    #: same-pattern requests.  0.0 is *opportunistic* coalescing: drain
    #: whatever is already queued, never wait.
    coalesce_window_s: float = 0.002
    #: Largest blocked panel (columns) one solve sweep carries.
    #: ``max_batch=1`` disables coalescing entirely (the per-request
    #: baseline the bench compares against).
    max_batch: int = 32
    #: Batch-invariant solve width passed to every per-pattern solver.
    #: ``None`` (default) tracks ``max_batch`` so responses are
    #: bit-identical regardless of batching; set 1 to disable padding.
    rhs_pad: int | None = None
    #: Bound on concurrently registered patterns (worker threads).
    max_patterns: int = 64
    #: Thread-pool width of the socket front end.
    io_threads: int = 8
    #: Numeric-phase knobs forwarded to each SparseSolver.
    workers: int | None = None
    block_size: int | None = None
    scheduler: str | None = None
    #: Autotuner experience store (a directory path).  When set, pattern
    #: registrations with ``ordering="auto"`` resolve the best known
    #: ordering/block-size/workers for the matrix family from it (see
    #: :mod:`repro.ordering.autotune`); without it "auto" falls back to
    #: AMD.
    tune_store: str | None = None
    #: Trailing window (seconds) of the live SLO view reported by
    #: ``stats`` and exported as the ``serve.window.*`` gauges.
    window_s: float = 60.0
    #: Per-phase latency sample-ring capacity (bounded memory; see
    #: repro.serve.metrics for the cumulative-vs-windowed contract).
    latency_ring: int = DEFAULT_RING
    #: Slow-request exemplars retained (top-K by end-to-end latency).
    exemplars: int = 16
    #: Liveness heartbeat period (seconds); the ``health`` op reports
    #: the beat count and the age of the last beat.
    heartbeat_s: float = 1.0

    def effective_rhs_pad(self) -> int:
        if self.rhs_pad is not None:
            return max(1, self.rhs_pad)
        return max(1, self.max_batch)


@dataclass
class _Ticket:
    """One queued request; ``future`` resolves to the op's payload.

    The three timestamps are the request's span skeleton: ``t_submit``
    (enqueue), ``t_dequeue`` (its worker picked it out of the queue —
    for batch riders, the moment they were drained into the batch), and
    ``t_start`` (the factor/solve actually began, i.e. the coalesce
    window closed).  :meth:`phases_ms` turns them into the breakdown
    that exemplars, telemetry spans, and the latency recorder share.
    """

    op: str                                   # "factor"|"solve"|"refactorize"
    b: np.ndarray | None = None               # solve: (n, k) panel
    vector: bool = False                      # solve: request was 1-D
    matrix: CSCMatrix | None = None           # factor
    kind: str | None = None                   # factor
    ordering: str = "amd"                     # factor
    data: np.ndarray | None = None            # refactorize
    request_id: str = ""
    t_submit: float = field(default_factory=time.perf_counter)
    t_dequeue: float | None = None
    t_start: float | None = None
    future: Future = field(default_factory=Future)

    def phases_ms(self, now: float) -> dict[str, float]:
        dequeue = self.t_dequeue if self.t_dequeue is not None \
            else self.t_submit
        start = self.t_start if self.t_start is not None else dequeue
        return {
            "queue_wait": max(0.0, dequeue - self.t_submit) * 1e3,
            "coalesce_wait": max(0.0, start - dequeue) * 1e3,
            "solve": max(0.0, now - start) * 1e3,
        }


class PatternWorker(threading.Thread):
    """One pattern's FIFO executor: a warm solver + a coalescing queue.

    Live counters (``served``/``batches``/``columns``/``last_batch_k``/
    ``last_done``) are written only by the worker thread itself and read
    lock-free by :meth:`snapshot`, so stats polling never contends with
    the solve path.
    """

    def __init__(self, pattern: str, server: "SolveServer") -> None:
        super().__init__(name=f"serve-{pattern[:12]}", daemon=True)
        self.pattern = pattern
        self.server = server
        self.config = server.config
        self.solver: SparseSolver | None = None
        self.matrix: CSCMatrix | None = None
        #: Matrix size, pinned at registration so ``submit_solve`` can
        #: reject wrong-length right-hand sides before they reach (and
        #: poison) a coalesced batch.
        self.n: int | None = None
        self._queue: deque[_Ticket] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        # -- live stats (worker-thread writes, lock-free reads) -----------
        self.busy = False
        self.served = 0
        self.batches = 0
        self.columns = 0
        self.last_batch_k = 0
        self.created = time.perf_counter()
        self.last_done = self.created

    # -- producer side ------------------------------------------------------

    def submit(self, ticket: _Ticket) -> Future:
        with self._cond:
            if self._stopping:
                raise RuntimeError("server is shutting down")
            self._queue.append(ticket)
            depth = len(self._queue)
            self._cond.notify()
        self.server.note_submitted(ticket, depth)
        return ticket.future

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()

    # -- live stats ---------------------------------------------------------

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def snapshot(self) -> dict:
        """Point-in-time operational view of this worker."""
        now = time.perf_counter()
        return {
            "alive": self.is_alive(),
            "busy": self.busy,
            "queue_depth": self.queue_depth(),
            "served": self.served,
            "batches": self.batches,
            "columns": self.columns,
            "last_batch_k": self.last_batch_k,
            "n": self.n,
            "idle_s": max(0.0, now - self.last_done),
            "age_s": max(0.0, now - self.created),
        }

    # -- consumer side ------------------------------------------------------

    def run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return                      # stopped and drained
                ticket = self._queue.popleft()
            ticket.t_dequeue = time.perf_counter()
            self.busy = True
            try:
                if ticket.op == "solve":
                    self._run_solve_batch(ticket)
                elif ticket.op == "factor":
                    self._run_factor(ticket)
                elif ticket.op == "refactorize":
                    self._run_refactorize(ticket)
                else:
                    raise ValueError(f"unknown ticket op {ticket.op!r}")
            except Exception as exc:            # worker must survive
                logger.exception("serve worker %s: %s failed",
                                 self.pattern, ticket.op)
                global_registry().counter("serve.errors").inc()
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
            finally:
                self.busy = False
                self.last_done = time.perf_counter()

    def _coalesce(self, first: _Ticket) -> list[_Ticket]:
        """Collect the solve batch starting at ``first``.

        Drains only the *contiguous* prefix of solve requests (a
        factor/refactorize request is a barrier: requests behind it see
        the new values, never the old ones), waiting up to the window
        for the queue to refill, until ``max_batch`` columns are held.
        A queued panel that would push the batch past ``max_batch``
        columns is left for the next batch, so the assembled panel never
        exceeds ``max_batch`` (``first`` itself may — an oversized single
        request — and :meth:`_solve_panel` chunks it back down).
        """
        batch = [first]
        columns = first.b.shape[1]
        max_batch = self.config.max_batch
        if max_batch <= 1:
            return batch
        deadline = time.perf_counter() + self.config.coalesce_window_s
        while columns < max_batch:
            with self._cond:
                while (self._queue and self._queue[0].op == "solve"
                        and columns + self._queue[0].b.shape[1]
                        <= max_batch):
                    ticket = self._queue.popleft()
                    ticket.t_dequeue = time.perf_counter()
                    batch.append(ticket)
                    columns += ticket.b.shape[1]
                if columns >= max_batch or self._stopping:
                    break
                if self._queue:
                    break           # barrier op, or next panel won't fit
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return batch

    def _solve_panel(self, panel: np.ndarray) -> np.ndarray:
        """Solve one blocked panel at batch-invariant widths.

        A panel wider than the padding width (a single oversized
        request — coalescing never assembles one) is solved in
        ``rhs_pad``-wide chunks so every dense kernel still runs at the
        fixed ``(n, rhs_pad)`` shape and the bit-identity guarantee
        holds for any k.
        """
        pad = self.config.effective_rhs_pad()
        if pad > 1 and panel.shape[1] > pad:
            return np.concatenate(
                [self.solver.solve(panel[:, i:i + pad])
                 for i in range(0, panel.shape[1], pad)], axis=1)
        return self.solver.solve(panel)

    def _run_solve_batch(self, first: _Ticket) -> None:
        batch = self._coalesce(first)
        t_start = time.perf_counter()
        for ticket in batch:
            ticket.t_start = t_start
        riders = [t.request_id for t in batch]
        try:
            if self.solver is None:
                raise RuntimeError(
                    f"pattern {self.pattern!r} has no factorization yet")
            panel = (batch[0].b if len(batch) == 1
                     else np.concatenate([t.b for t in batch], axis=1))
            k = panel.shape[1]
            with telemetry.task_span("serve.batch", pattern=self.pattern,
                                     k=k, requests=len(batch),
                                     riders=riders):
                x = self._solve_panel(panel)
        except Exception as exc:
            # A failed coalesced solve must fail *every* rider: a batch
            # peer left unresolved would hang its client in
            # Future.result() forever.  run() re-logs and counts via the
            # re-raise (first's future is already done, so its handler
            # skips it).
            for ticket in batch:
                if not ticket.future.done():
                    ticket.future.set_exception(exc)
            raise
        reg = global_registry()
        reg.counter("serve.coalesce.batches").inc()
        reg.counter("serve.coalesce.columns").inc(k)
        self.batches += 1
        self.columns += k
        self.last_batch_k = k
        self.server.note_batch(k)
        offset = 0
        for ticket in batch:
            width = ticket.b.shape[1]
            result = x[:, offset] if ticket.vector \
                else x[:, offset:offset + width]
            offset += width
            self.served += 1
            self.server.note_response(ticket, self.pattern, batch_k=k,
                                      width=width)
            ticket.future.set_result({"x": result, "batch_k": k,
                                      "request_id": ticket.request_id})

    def _run_factor(self, ticket: _Ticket) -> None:
        ticket.t_start = time.perf_counter()
        warm = self.solver is not None
        if warm:
            # Same pattern, new values: ride the warm refactorize path.
            self.solver.refactorize(ticket.matrix)
        else:
            self.matrix = ticket.matrix
            self.solver = SparseSolver(
                ticket.matrix, kind=ticket.kind,
                ordering=ticket.ordering,
                workers=self.config.workers,
                block_size=self.config.block_size,
                scheduler=self.config.scheduler,
                rhs_pad=self.config.effective_rhs_pad(),
                tune_store=self.config.tune_store,
            )
        self.served += 1
        self.server.note_response(ticket, self.pattern)
        ticket.future.set_result({
            "pattern": self.pattern,
            "n": int(ticket.matrix.n_rows),
            "factor_nnz": int(self.solver.symbolic.factor_nnz),
            "warm": warm,
            "request_id": ticket.request_id,
        })

    def _run_refactorize(self, ticket: _Ticket) -> None:
        ticket.t_start = time.perf_counter()
        if self.solver is None:
            raise RuntimeError(
                f"pattern {self.pattern!r} has no factorization yet")
        matrix = CSCMatrix(
            self.matrix.n_rows, self.matrix.n_cols,
            self.matrix.indptr, self.matrix.indices, ticket.data,
        )
        self.solver.refactorize(matrix)
        self.served += 1
        self.server.note_response(ticket, self.pattern)
        ticket.future.set_result({"pattern": self.pattern,
                                  "request_id": ticket.request_id})


class SolveServer:
    """Multi-tenant solve service over per-pattern workers.

    In-process entry points (used by :class:`InProcessClient`, tests,
    and the bench) take and return numpy arrays directly; the protocol
    entry point :meth:`handle` speaks the NDJSON dict format.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.latency = LatencyRecorder(ring=self.config.latency_ring)
        self.exemplars = ExemplarRing(self.config.exemplars)
        self._workers: dict[str, PatternWorker] = {}
        self._table_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._batch_columns = 0
        self._batch_count = 0
        self._batch_max = 0
        self._queue_depth_max = 0
        self._inflight = 0
        self._heartbeats = 0
        self._last_beat = time.perf_counter()
        self._request_seq = itertools.count(1)
        self._shutdown = threading.Event()
        self._started = time.perf_counter()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="serve-heartbeat",
            daemon=True)
        self._heartbeat_thread.start()

    # -- liveness -----------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Count beats while the server lives, so a poller can tell an
        idle-but-healthy server from a hung one (``health`` reports the
        beat count and the age of the last beat)."""
        period = max(0.05, self.config.heartbeat_s)
        while not self._shutdown.wait(period):
            with self._stats_lock:
                self._heartbeats += 1
                self._last_beat = time.perf_counter()

    def next_request_id(self) -> str:
        """A fresh server-unique request id (``r<n>``)."""
        return f"r{next(self._request_seq)}"

    # -- stats hooks (called by workers) ------------------------------------

    def note_batch(self, k: int) -> None:
        with self._stats_lock:
            self._batch_columns += k
            self._batch_count += 1
            self._batch_max = max(self._batch_max, k)

    def note_submitted(self, ticket: _Ticket, depth: int) -> None:
        with self._stats_lock:
            self._queue_depth_max = max(self._queue_depth_max, depth)
            self._inflight += 1
        # Every resolution path — success, solve failure, batch-peer
        # failure, worker crash — settles the future, so the inflight
        # level can never leak.
        ticket.future.add_done_callback(self._note_settled)

    def _note_settled(self, _future: Future) -> None:
        with self._stats_lock:
            self._inflight -= 1

    def note_response(self, ticket: _Ticket, pattern: str,
                      batch_k: int = 1, width: int = 1) -> None:
        """Record one completed request: phase latencies, the slow-
        request exemplar ring, and (when telemetry is on) per-request
        span events carrying the request id."""
        now = time.perf_counter()
        total_s = now - ticket.t_submit
        phases = ticket.phases_ms(now)
        self.latency.observe(REQUEST_PHASE, total_s)
        self.latency.observe("queue_wait", phases["queue_wait"] / 1e3)
        self.latency.observe("coalesce_wait",
                             phases["coalesce_wait"] / 1e3)
        self.latency.observe("solve", phases["solve"] / 1e3)
        global_registry().counter("serve.responses").inc()
        self.exemplars.offer(total_s * 1e3, {
            "request_id": ticket.request_id,
            "op": ticket.op,
            "pattern": pattern,
            "batch_k": batch_k,
            "k": width,
            "latency_ms": total_s * 1e3,
            "phases_ms": phases,
            "wall": time.time(),
        })
        sink = telemetry.current_sink()
        if sink is not None:
            attrs = {"request_id": ticket.request_id, "op": ticket.op,
                     "pattern": pattern, "batch_k": batch_k}
            sink.span(Span(name="serve.request",
                           start_s=ticket.t_submit,
                           duration_s=total_s), attrs=attrs)
            cursor = ticket.t_submit
            for phase in ("queue_wait", "coalesce_wait", "solve"):
                dur = phases[phase] / 1e3
                sink.span(Span(name=f"serve.request.{phase}",
                               start_s=cursor, duration_s=dur,
                               depth=1), attrs=attrs)
                cursor += dur

    # -- pattern table ------------------------------------------------------

    def pattern_key(self, matrix: CSCMatrix, kind: str,
                    ordering: str) -> str:
        return f"{pattern_digest(matrix)}:{kind}:{ordering}"

    def _worker(self, pattern: str) -> PatternWorker:
        with self._table_lock:
            worker = self._workers.get(pattern)
        if worker is None:
            raise KeyError(
                f"unknown pattern {pattern!r}; send a factor request "
                "first")
        return worker

    # -- in-process API (numpy in, numpy out) -------------------------------

    def submit_factor(self, matrix: CSCMatrix, kind: str | None = None,
                      ordering: str = "amd",
                      request_id: str | None = None) -> Future:
        if self._shutdown.is_set():
            raise RuntimeError("server is shutting down")
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("factor requires a square matrix")
        if kind is None:
            kind = "cholesky" if matrix.is_symmetric() else "lu"
        pattern = self.pattern_key(matrix, kind, ordering)
        with self._table_lock:
            worker = self._workers.get(pattern)
            if worker is None:
                if len(self._workers) >= self.config.max_patterns:
                    raise RuntimeError(
                        f"pattern table full "
                        f"({self.config.max_patterns} patterns); "
                        "shut down idle tenants or raise max_patterns")
                worker = PatternWorker(pattern, self)
                worker.n = int(matrix.n_rows)
                self._workers[pattern] = worker
                worker.start()
        global_registry().counter("serve.requests.factor").inc()
        return worker.submit(_Ticket(
            op="factor", matrix=matrix, kind=kind, ordering=ordering,
            request_id=request_id or self.next_request_id()))

    def submit_solve(self, pattern: str, b: np.ndarray,
                     request_id: str | None = None) -> Future:
        worker = self._worker(pattern)
        b = np.asarray(b, dtype=np.float64)
        vector = b.ndim == 1
        if vector:
            b = b[:, None]
        if b.ndim != 2:
            raise ValueError("b must be a vector or an (n, k) array")
        # Reject wrong-length b at submission: inside the worker the
        # mismatch would surface mid-batch, where it is hard to
        # attribute and would fail the batch's co-riders too.
        if worker.n is not None and b.shape[0] != worker.n:
            raise ValueError(
                f"b has {b.shape[0]} rows but pattern {pattern!r} is "
                f"{worker.n}x{worker.n}")
        global_registry().counter("serve.requests.solve").inc()
        return worker.submit(_Ticket(
            op="solve", b=b, vector=vector,
            request_id=request_id or self.next_request_id()))

    def submit_refactorize(self, pattern: str, data: np.ndarray,
                           request_id: str | None = None) -> Future:
        data = np.asarray(data, dtype=np.float64)
        global_registry().counter("serve.requests.refactorize").inc()
        return self._worker(pattern).submit(_Ticket(
            op="refactorize", data=data,
            request_id=request_id or self.next_request_id()))

    def factor(self, matrix: CSCMatrix, kind: str | None = None,
               ordering: str = "amd") -> dict:
        return self.submit_factor(matrix, kind, ordering).result()

    def solve(self, pattern: str, b: np.ndarray) -> np.ndarray:
        return self.submit_solve(pattern, b).result()["x"]

    def refactorize(self, pattern: str, data: np.ndarray) -> dict:
        return self.submit_refactorize(pattern, data).result()

    # -- stats / lifecycle --------------------------------------------------

    def queue_depth(self) -> int:
        """Current total pending requests across pattern queues."""
        with self._table_lock:
            workers = list(self._workers.values())
        return sum(w.queue_depth() for w in workers)

    def uptime_s(self) -> float:
        return max(time.perf_counter() - self._started, 1e-9)

    def health(self) -> dict:
        """Cheap liveness probe: no latency math, no gauge mutation.

        Distinguishes an idle-but-healthy server (heartbeats advance,
        workers alive, queues empty) from a hung one (stale heartbeat
        or a dead worker with a non-empty queue).
        """
        now = time.perf_counter()
        with self._stats_lock:
            heartbeats = self._heartbeats
            beat_age = now - self._last_beat
            inflight = self._inflight
        with self._table_lock:
            workers = dict(self._workers)
        worker_health = {
            pattern: {"alive": w.is_alive(),
                      "busy": w.busy,
                      "queue_depth": w.queue_depth()}
            for pattern, w in workers.items()
        }
        cache = analysis_cache()
        return {
            "ok": (not self._shutdown.is_set()
                   and all(h["alive"] or h["queue_depth"] == 0
                           for h in worker_health.values())),
            "stopping": self._shutdown.is_set(),
            "uptime_s": self.uptime_s(),
            "heartbeats": heartbeats,
            "heartbeat_age_s": max(0.0, beat_age),
            "patterns": len(workers),
            "inflight": inflight,
            "queue_depth": sum(h["queue_depth"]
                               for h in worker_health.values()),
            "workers": worker_health,
            "analysis_cache": {"size": len(cache),
                               "capacity": cache.capacity,
                               "shards": len(cache.shard_stats())},
        }

    def stats(self, export: bool = False,
              window_s: float | None = None) -> dict:
        """Full operational snapshot: cumulative counters, the rolling
        ``window_s`` (default ``config.window_s``) SLO view, per-worker
        occupancy, and the slow-request exemplars.

        Side-effect-free by default so concurrent wire pollers never
        mutate shared gauges; explicit collection points (shutdown, the
        bench, ``stats(export=True)``) pass ``export=True`` to publish
        the ``serve.*`` gauges into the global registry.
        """
        window_s = float(window_s) if window_s else self.config.window_s
        with self._stats_lock:
            batch_mean = (self._batch_columns / self._batch_count
                          if self._batch_count else 0.0)
            batch_count = self._batch_count
            batch_max = self._batch_max
            queue_depth_max = self._queue_depth_max
            inflight = self._inflight
            heartbeats = self._heartbeats
        with self._table_lock:
            workers = dict(self._workers)
        reg = global_registry()
        uptime = self.uptime_s()
        responses = reg.value("serve.responses", 0)
        window = self.latency.window_summary(window_s=window_s)
        request_window = window.get(REQUEST_PHASE, {})
        queue_depth = sum(w.queue_depth() for w in workers.values())
        stats = {
            "patterns": len(workers),
            "responses": int(responses),
            "errors": int(reg.value("serve.errors", 0)),
            "uptime_s": uptime,
            "heartbeats": heartbeats,
            "inflight": inflight,
            "coalesce": {
                "batches": batch_count,
                "batch_mean": batch_mean,
                "batch_max": batch_max,
            },
            "queue_depth": queue_depth,
            "queue_depth_max": queue_depth_max,
            "latency_ms": self.latency.summary(),
            "window_s": window_s,
            "window": {
                "latency_ms": window,
                "throughput_rps": request_window.get("rate_per_s", 0.0),
                "inflight": inflight,
                "queue_depth": queue_depth,
            },
            "workers": {pattern: w.snapshot()
                        for pattern, w in workers.items()},
            "exemplars": self.exemplars.snapshot(),
            "analysis_cache": analysis_cache().stats(),
            "analysis_cache_shards": analysis_cache().shard_stats(),
        }
        if export:
            self.latency.export()
            self.latency.export_window(window_s=window_s)
            export_serve_gauges(batch_mean=batch_mean or None,
                                queue_depth_max=queue_depth_max,
                                queue_depth=queue_depth,
                                uptime_s=uptime)
        return stats

    def shutdown(self, wait: bool = True) -> None:
        self._shutdown.set()
        with self._table_lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.stop()
        if wait:
            for worker in workers:
                worker.join(timeout=30.0)
            self._heartbeat_thread.join(timeout=5.0)
        self.stats(export=True)

    # -- protocol entry point -----------------------------------------------

    def handle(self, message: dict) -> dict:
        """Serve one protocol request dict; always returns a response."""
        request_id = message.get("id")
        try:
            op = protocol.validate_request(message)
            if op == "factor":
                matrix = protocol.matrix_from_wire(message["matrix"])
                result = self.submit_factor(
                    matrix, kind=message.get("kind"),
                    ordering=message.get("ordering", "amd"),
                ).result()
                return protocol.ok_response(request_id, **result)
            if op == "solve":
                if "bs" in message:
                    b = np.asarray(message["bs"], dtype=np.float64).T
                else:
                    b = np.asarray(message["b"], dtype=np.float64)
                result = self.submit_solve(
                    message["pattern"], b).result()
                x = result["x"]
                return protocol.ok_response(
                    request_id, batch_k=result["batch_k"],
                    request_id=result["request_id"],
                    **({"xs": x.T.tolist()} if x.ndim == 2
                       else {"x": x.tolist()}))
            if op == "refactorize":
                result = self.submit_refactorize(
                    message["pattern"],
                    np.asarray(message["data"], dtype=np.float64),
                ).result()
                return protocol.ok_response(request_id, **result)
            if op == "stats":
                # Read-only on the wire: never export gauges from a
                # poller (concurrent scrapers would race collection
                # points and each other).
                stats = self.stats(export=False,
                                   window_s=message.get("window_s"))
                if message.get("format") == "text":
                    return protocol.ok_response(
                        request_id,
                        text=stats_to_prometheus(stats, self.health()))
                return protocol.ok_response(request_id, stats=stats)
            if op == "health":
                return protocol.ok_response(request_id,
                                            health=self.health())
            # shutdown
            self.shutdown(wait=False)
            return protocol.ok_response(request_id, stopping=True)
        except Exception as exc:
            global_registry().counter("serve.errors").inc()
            return protocol.error_response(request_id, str(exc))


# -- asyncio socket front end -------------------------------------------------


async def serve_unix(server: SolveServer, path: str):
    """Start the NDJSON front end on a unix socket; returns the
    asyncio server object.  Each request line becomes its own task on a
    thread pool, so pipelined requests from one connection (and requests
    from many connections) reach the coalescing queues concurrently."""
    import asyncio
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(max_workers=server.config.io_threads,
                              thread_name_prefix="serve-io")

    async def on_client(reader, writer):
        loop = asyncio.get_running_loop()
        write_lock = asyncio.Lock()
        pending: set = set()

        async def one(line: bytes) -> None:
            try:
                request = protocol.decode(line)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(None, str(exc))
            else:
                response = await loop.run_in_executor(
                    pool, server.handle, request)
            async with write_lock:
                writer.write(protocol.encode(response))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.ensure_future(one(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            writer.close()

    # NDJSON frames carry whole matrices; the default 64 KiB line limit
    # is far too small for a factor request.
    return await asyncio.start_unix_server(on_client, path=path,
                                           limit=256 * 1024 * 1024)


def run_unix_server(server: SolveServer, path: str,
                    ready: threading.Event | None = None) -> None:
    """Blocking runner: serve on ``path`` until the server shuts down.

    ``ready`` (if given) is set once the socket is listening — the
    hand-shake tests and the CLI's startup message use it.
    """
    import asyncio

    async def main() -> None:
        sock_server = await serve_unix(server, path)
        if ready is not None:
            ready.set()
        logger.info("serving on %s", path)
        try:
            while not server._shutdown.is_set():
                await asyncio.sleep(0.05)
        finally:
            sock_server.close()
            await sock_server.wait_closed()

    asyncio.run(main())
