"""Canonical ``serve.*`` metrics shared by every serving harness.

Three harnesses measure warm-serving behaviour — the long-lived
:class:`~repro.serve.server.SolveServer`, the ``repro serve-bench`` load
generator, and the ``solve --repeat/--procs`` warm-loop — and all three
export the *same* gauge names so the ``repro.obs.history`` trend gate
sees one comparable series regardless of which harness produced a run:

* ``serve.latency.request.{p50,p95,p99}_ms`` — end-to-end request
  latency (enqueue to response, including queueing and coalescing wait);
* ``serve.throughput.rps`` — completed requests per wall-clock second;
* ``serve.coalesce.batch_mean`` — mean blocked-panel width per solve
  (1.0 = nothing coalesced);
* ``serve.queue.depth_max`` — high-water pending-request depth;
* ``serve.queue.depth`` — *current* pending-request depth across
  pattern queues (a live level, where ``depth_max`` only ever rises);
* ``serve.uptime_s`` — server uptime at export time;
* ``serve.speedup.coalesce`` — bench-only: coalesced throughput over
  the uncoalesced per-request baseline.

The latency names are deliberately *one* logical phase ("request"), not
per-op: the history gate compares like with like across harnesses that
mix factor/refactorize/solve traffic differently.  The server
additionally records per-phase sub-latencies (``queue_wait``,
``coalesce_wait``, ``solve``) so a slow request decomposes.

Cumulative vs windowed
----------------------

``summary()`` keeps the cumulative schema run artifacts and the bench
rely on; :meth:`LatencyRecorder.window_summary` is the *live* view — the
same percentile schema computed over only the samples of the trailing
window, plus throughput.  Windowed values export under
``serve.window.*`` (``serve.window.latency.<phase>.pXX_ms``,
``serve.window.throughput.rps``), which are WATCHED_METRICS of their
own so the trend gate compares live-window behaviour across builds.

Storage is bounded: each phase keeps at most ``ring`` samples in a
:class:`repro.obs.live.RollingWindow` (lifetime count/mean/max stay
exact as scalars).  While a run observes fewer samples than the ring
capacity — every bench and test run, by construction — ``summary()`` is
the exact cumulative distribution, so bench artifacts are bit-stable;
a long-lived server's ``summary()`` gracefully degrades to "the last
``ring`` requests" instead of growing without bound.
"""

from __future__ import annotations

import threading

from repro.obs.live import RollingWindow, flatten_stats, prometheus_text
from repro.obs.metrics import MetricsRegistry, global_registry

#: The logical phase every serving harness reports request latency under.
REQUEST_PHASE = "request"

#: Per-request sub-phases the solve server records (docs/SERVING.md):
#: time queued behind earlier work, time spent waiting for the coalesce
#: window to fill, and the blocked panel solve itself.
SUB_PHASES = ("queue_wait", "coalesce_wait", "solve")

#: Default per-phase sample-ring capacity.  Large enough that every
#: bench/test run keeps exact cumulative percentiles; small enough that
#: a week-long server holds a few hundred KiB per phase, total.
DEFAULT_RING = 8192

#: Gauge names the trend gate watches (see repro.obs.artifact).
LATENCY_GAUGES = tuple(
    f"serve.latency.{REQUEST_PHASE}.{stat}"
    for stat in ("p50_ms", "p95_ms", "p99_ms")
)
THROUGHPUT_GAUGE = "serve.throughput.rps"
BATCH_MEAN_GAUGE = "serve.coalesce.batch_mean"
QUEUE_DEPTH_GAUGE = "serve.queue.depth_max"
QUEUE_DEPTH_CURRENT_GAUGE = "serve.queue.depth"
UPTIME_GAUGE = "serve.uptime_s"
COALESCE_SPEEDUP_GAUGE = "serve.speedup.coalesce"
#: Rolling-window SLO gauges (exported by export_window / stats
#: collection points; watched by the trend gate).
WINDOW_LATENCY_GAUGES = tuple(
    f"serve.window.latency.{REQUEST_PHASE}.{stat}"
    for stat in ("p50_ms", "p95_ms", "p99_ms")
)
WINDOW_THROUGHPUT_GAUGE = "serve.window.throughput.rps"

#: Shared never-written ring backing zero-filled window rows for phases
#: with no observations yet.
_EMPTY_WINDOW = RollingWindow(1)


class LatencyRecorder:
    """Thread-safe, *bounded* per-phase wall-clock latency samples.

    ``summary()`` reuses the telemetry percentile schema
    (count/mean/p50/p95/p99/max in milliseconds) so server stats, bench
    artifacts, and ``repro telemetry`` reports all read the same way;
    ``window_summary()`` is the live windowed counterpart.  See the
    module docstring for the cumulative-vs-windowed contract.
    """

    def __init__(self, ring: int = DEFAULT_RING) -> None:
        self._lock = threading.Lock()
        self._ring = max(1, int(ring))
        self._phases: dict[str, RollingWindow] = {}

    @property
    def ring(self) -> int:
        return self._ring

    def _window(self, phase: str) -> RollingWindow:
        with self._lock:
            win = self._phases.get(phase)
            if win is None:
                win = RollingWindow(self._ring)
                self._phases[phase] = win
            return win

    def observe(self, phase: str, seconds: float) -> None:
        self._window(phase).append(float(seconds))

    def count(self, phase: str = REQUEST_PHASE) -> int:
        """Exact lifetime observation count for ``phase``."""
        with self._lock:
            win = self._phases.get(phase)
        return win.count() if win is not None else 0

    def phases(self) -> list[str]:
        with self._lock:
            return sorted(self._phases)

    @staticmethod
    def _as_ms(snap: dict) -> dict[str, float]:
        return {
            "count": snap["count"],
            "mean_ms": snap["mean"] * 1e3,
            "p50_ms": snap["p50"] * 1e3,
            "p95_ms": snap["p95"] * 1e3,
            "p99_ms": snap["p99"] * 1e3,
            "max_ms": snap["max"] * 1e3,
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Cumulative per-phase percentiles (ms) over retained samples.

        ``count`` reports the exact lifetime count even after the ring
        wraps; the percentiles then cover the most recent ``ring``
        samples (documented degradation — see module docstring).
        """
        with self._lock:
            phases = dict(self._phases)
        out = {}
        for name, win in sorted(phases.items()):
            if win.count() == 0:
                continue
            stats = self._as_ms(win.snapshot(window_s=None))
            stats["count"] = win.count()
            out[name] = stats
        return out

    def window_summary(self, window_s: float = 60.0,
                       now: float | None = None
                       ) -> dict[str, dict[str, float]]:
        """Per-phase percentiles + throughput over the trailing window.

        Adds ``rate_per_s`` (completions per second inside the window)
        to the ms-schema of :meth:`summary`.  Phases with no sample in
        the window report zeroed stats rather than disappearing, so a
        dashboard's layout is stable across idle periods.
        """
        with self._lock:
            phases = dict(self._phases)
        # The known phases always appear (zeroed when idle) so a
        # dashboard's layout is stable from the very first poll.
        for name in (REQUEST_PHASE, *SUB_PHASES):
            phases.setdefault(name, _EMPTY_WINDOW)
        out = {}
        for name, win in sorted(phases.items()):
            snap = win.snapshot(window_s=window_s, now=now)
            stats = self._as_ms(snap)
            stats["rate_per_s"] = snap["rate_per_s"]
            out[name] = stats
        return out

    def export(self, registry: MetricsRegistry | None = None) -> None:
        """Set ``serve.latency.<phase>.pXX_ms`` gauges from the samples."""
        registry = registry if registry is not None else global_registry()
        for phase, stats in self.summary().items():
            for stat in ("p50_ms", "p95_ms", "p99_ms"):
                registry.gauge(
                    f"serve.latency.{phase}.{stat}").set(stats[stat])

    def export_window(self, window_s: float = 60.0,
                      registry: MetricsRegistry | None = None) -> None:
        """Set the ``serve.window.*`` SLO gauges from the trailing window.

        ``serve.window.latency.<phase>.pXX_ms`` per phase, plus
        ``serve.window.throughput.rps`` from the request phase's
        completion rate.
        """
        registry = registry if registry is not None else global_registry()
        summary = self.window_summary(window_s=window_s)
        for phase, stats in summary.items():
            for stat in ("p50_ms", "p95_ms", "p99_ms"):
                registry.gauge(
                    f"serve.window.latency.{phase}.{stat}"
                ).set(stats[stat])
        request = summary.get(REQUEST_PHASE)
        if request is not None:
            registry.gauge(WINDOW_THROUGHPUT_GAUGE).set(
                request["rate_per_s"])


def export_serve_gauges(throughput_rps: float | None = None,
                        batch_mean: float | None = None,
                        queue_depth_max: float | None = None,
                        queue_depth: float | None = None,
                        uptime_s: float | None = None,
                        coalesce_speedup: float | None = None,
                        registry: MetricsRegistry | None = None) -> None:
    """Set the scalar serving gauges that are not latency percentiles."""
    registry = registry if registry is not None else global_registry()
    if throughput_rps is not None:
        registry.gauge(THROUGHPUT_GAUGE).set(float(throughput_rps))
    if batch_mean is not None:
        registry.gauge(BATCH_MEAN_GAUGE).set(float(batch_mean))
    if queue_depth_max is not None:
        registry.gauge(QUEUE_DEPTH_GAUGE).set(float(queue_depth_max))
    if queue_depth is not None:
        registry.gauge(QUEUE_DEPTH_CURRENT_GAUGE).set(float(queue_depth))
    if uptime_s is not None:
        registry.gauge(UPTIME_GAUGE).set(float(uptime_s))
    if coalesce_speedup is not None:
        registry.gauge(COALESCE_SPEEDUP_GAUGE).set(float(coalesce_speedup))


def stats_to_prometheus(stats: dict, health: dict | None = None) -> str:
    """Render a ``SolveServer.stats()`` dict (and optionally its
    ``health()`` dict) as Prometheus exposition text under the
    ``repro_serve_`` namespace — the payload of the ``stats`` op with
    ``format: "text"`` (docs/SERVING.md)."""
    flat = flatten_stats(stats, "serve")
    if health is not None:
        flat.update(flatten_stats(health, "health"))
    return prometheus_text(flat, prefix="repro_")
