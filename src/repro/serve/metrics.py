"""Canonical ``serve.*`` metrics shared by every serving harness.

Three harnesses measure warm-serving behaviour — the long-lived
:class:`~repro.serve.server.SolveServer`, the ``repro serve-bench`` load
generator, and the ``solve --repeat/--procs`` warm-loop — and all three
export the *same* gauge names so the ``repro.obs.history`` trend gate
sees one comparable series regardless of which harness produced a run:

* ``serve.latency.request.{p50,p95,p99}_ms`` — end-to-end request
  latency (enqueue to response, including queueing and coalescing wait);
* ``serve.throughput.rps`` — completed requests per wall-clock second;
* ``serve.coalesce.batch_mean`` — mean blocked-panel width per solve
  (1.0 = nothing coalesced);
* ``serve.queue.depth_max`` — high-water pending-request depth;
* ``serve.speedup.coalesce`` — bench-only: coalesced throughput over
  the uncoalesced per-request baseline.

The latency names are deliberately *one* logical phase ("request"), not
per-op: the history gate compares like with like across harnesses that
mix factor/refactorize/solve traffic differently.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.telemetry import latency_percentiles

#: The logical phase every serving harness reports request latency under.
REQUEST_PHASE = "request"

#: Gauge names the trend gate watches (see repro.obs.artifact).
LATENCY_GAUGES = tuple(
    f"serve.latency.{REQUEST_PHASE}.{stat}"
    for stat in ("p50_ms", "p95_ms", "p99_ms")
)
THROUGHPUT_GAUGE = "serve.throughput.rps"
BATCH_MEAN_GAUGE = "serve.coalesce.batch_mean"
QUEUE_DEPTH_GAUGE = "serve.queue.depth_max"
COALESCE_SPEEDUP_GAUGE = "serve.speedup.coalesce"


class LatencyRecorder:
    """Thread-safe per-phase wall-clock latency samples (seconds).

    ``summary()`` reuses the telemetry percentile schema
    (count/mean/p50/p95/p99/max in milliseconds) so server stats, bench
    artifacts, and ``repro telemetry`` reports all read the same way.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: dict[str, list[float]] = {}

    def observe(self, phase: str, seconds: float) -> None:
        with self._lock:
            self._samples.setdefault(phase, []).append(float(seconds))

    def count(self, phase: str = REQUEST_PHASE) -> int:
        with self._lock:
            return len(self._samples.get(phase, ()))

    def summary(self) -> dict[str, dict[str, float]]:
        with self._lock:
            snapshot = {k: list(v) for k, v in self._samples.items()}
        return latency_percentiles(snapshot)

    def export(self, registry: MetricsRegistry | None = None) -> None:
        """Set ``serve.latency.<phase>.pXX_ms`` gauges from the samples."""
        registry = registry if registry is not None else global_registry()
        for phase, stats in self.summary().items():
            for stat in ("p50_ms", "p95_ms", "p99_ms"):
                registry.gauge(
                    f"serve.latency.{phase}.{stat}").set(stats[stat])


def export_serve_gauges(throughput_rps: float | None = None,
                        batch_mean: float | None = None,
                        queue_depth_max: float | None = None,
                        coalesce_speedup: float | None = None,
                        registry: MetricsRegistry | None = None) -> None:
    """Set the scalar serving gauges that are not latency percentiles."""
    registry = registry if registry is not None else global_registry()
    if throughput_rps is not None:
        registry.gauge(THROUGHPUT_GAUGE).set(float(throughput_rps))
    if batch_mean is not None:
        registry.gauge(BATCH_MEAN_GAUGE).set(float(batch_mean))
    if queue_depth_max is not None:
        registry.gauge(QUEUE_DEPTH_GAUGE).set(float(queue_depth_max))
    if coalesce_speedup is not None:
        registry.gauge(COALESCE_SPEEDUP_GAUGE).set(float(coalesce_speedup))
