"""MatrixMarket coordinate-format IO.

The paper's evaluation uses SuiteSparse matrices, which are distributed as
MatrixMarket ``.mtx`` files.  This module implements the subset of the format
SuiteSparse uses: ``matrix coordinate real/integer/pattern
general/symmetric``.  It lets users run the reproduction on real downloaded
matrices in place of the bundled synthetic suite.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.sparse.coo import COOMatrix


def _open_text(path: str | Path) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return open(path, "r")


def read_matrix_market(path: str | Path) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a COO matrix.

    Supports real, integer, and pattern fields with general or symmetric
    storage.  Symmetric storage is expanded to a full (general) pattern.
    Pattern matrices get value 1.0 for every entry.
    """
    with _open_text(path) as f:
        header = f.readline().strip().lower().split()
        if len(header) < 5 or header[0] != "%%matrixmarket" or header[1] != "matrix":
            raise ValueError(f"not a MatrixMarket matrix file: {path}")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise ValueError("only coordinate format is supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")

        line = f.readline()
        while line.startswith("%") or not line.strip():
            line = f.readline()
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        count = 0
        for line in f:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            rows[count] = int(toks[0]) - 1
            cols[count] = int(toks[1]) - 1
            vals[count] = 1.0 if field == "pattern" else float(toks[2])
            count += 1
        if count != nnz:
            raise ValueError(f"expected {nnz} entries, found {count}")

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, vals[off_diag]])
    return COOMatrix(n_rows, n_cols, rows, cols, vals)


def write_matrix_market(
    path: str | Path, matrix: COOMatrix, symmetric: bool = False
) -> None:
    """Write a COO matrix to a MatrixMarket coordinate real file.

    If ``symmetric`` is true, only the lower triangle is written and the
    header declares symmetric storage (the caller asserts the matrix is
    numerically symmetric).

    Duplicate coordinates are summed before writing: MatrixMarket
    consumers are not required to sum duplicates, so emitting them raw
    would make the file's meaning reader-dependent (and its declared nnz
    count duplicates).  Canonical output keeps the read/write round trip
    an exact identity under :meth:`COOMatrix.to_csc` semantics.
    """
    mat = matrix.deduplicated()
    if symmetric:
        mat = mat.lower_triangle()
    symmetry = "symmetric" if symmetric else "general"
    with open(path, "w") as f:
        f.write(f"%%MatrixMarket matrix coordinate real {symmetry}\n")
        f.write("% written by repro (Spatula reproduction)\n")
        f.write(f"{mat.n_rows} {mat.n_cols} {mat.nnz}\n")
        for r, c, v in zip(mat.rows, mat.cols, mat.vals):
            f.write(f"{r + 1} {c + 1} {v:.17g}\n")
