"""Compressed sparse column (CSC) matrix format.

CSC is the working format of the symbolic and numeric factorization stages:
column traversal is the access pattern of Cholesky/LU (Listing 1 in the
paper), and CSC makes it O(nnz(col)).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix


class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Invariants (checked by :meth:`validate`):
      * ``indptr`` is nondecreasing with ``indptr[0] == 0`` and
        ``indptr[-1] == nnz``.
      * row indices within each column are strictly increasing.
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Convert from COO, summing duplicates and sorting row indices."""
        dedup = coo.deduplicated()
        indptr = np.zeros(coo.n_cols + 1, dtype=np.int64)
        np.add.at(indptr, dedup.cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.n_rows, coo.n_cols, indptr, dedup.rows, dedup.vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def identity(cls, n: int) -> "CSCMatrix":
        """The n-by-n identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls(n, n, np.arange(n + 1, dtype=np.int64), idx, np.ones(n))

    # -- basic properties --------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.data)

    def validate(self) -> None:
        """Raise ValueError if any CSC structural invariant is violated."""
        if len(self.indptr) != self.n_cols + 1:
            raise ValueError("indptr has wrong length")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr endpoints are inconsistent")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data length mismatch")
        for j in range(self.n_cols):
            rows = self.col_rows(j)
            if len(rows) and (rows.min() < 0 or rows.max() >= self.n_rows):
                raise ValueError(f"row index out of bounds in column {j}")
            if np.any(np.diff(rows) <= 0):
                raise ValueError(f"row indices not strictly increasing in column {j}")

    # -- access ------------------------------------------------------------

    def col_rows(self, j: int) -> np.ndarray:
        """Row indices of the nonzeros in column j."""
        return self.indices[self.indptr[j]:self.indptr[j + 1]]

    def col_vals(self, j: int) -> np.ndarray:
        """Values of the nonzeros in column j."""
        return self.data[self.indptr[j]:self.indptr[j + 1]]

    def col_nnz(self, j: int) -> int:
        return int(self.indptr[j + 1] - self.indptr[j])

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal as a dense vector."""
        n = min(self.n_rows, self.n_cols)
        diag = np.zeros(n)
        for j in range(n):
            rows = self.col_rows(j)
            hit = np.searchsorted(rows, j)
            if hit < len(rows) and rows[hit] == j:
                diag[j] = self.col_vals(j)[hit]
        return diag

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for j in range(self.n_cols):
            out[self.col_rows(j), j] = self.col_vals(j)
        return out

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        return COOMatrix(
            self.n_rows, self.n_cols,
            self.indices.copy(), cols, self.data.copy(),
        )

    # -- operations ----------------------------------------------------------

    def transpose(self) -> "CSCMatrix":
        """Return A^T in CSC form (equivalently, A in CSR form)."""
        return CSCMatrix.from_coo(self.to_coo().transpose())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a vector or an (n, k) panel of vectors."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (1, 2):
            raise ValueError("matvec operand must be 1-D or 2-D")
        if x.shape[0] != self.n_cols:
            raise ValueError("dimension mismatch in matvec")
        if x.ndim == 1:
            y = np.zeros(self.n_rows)
            for j in range(self.n_cols):
                if x[j] != 0.0:
                    y[self.col_rows(j)] += self.col_vals(j) * x[j]
            return y
        y = np.zeros((self.n_rows, x.shape[1]))
        for j in range(self.n_cols):
            xj = x[j]
            if np.any(xj):
                y[self.col_rows(j)] += self.col_vals(j)[:, None] * xj
        return y

    def permuted(self, perm: np.ndarray) -> "CSCMatrix":
        """Symmetric permutation PAP^T with perm mapping new -> old index."""
        return CSCMatrix.from_coo(self.to_coo().permuted(perm))

    def lower_triangle(self, strict: bool = False) -> "CSCMatrix":
        """Extract the lower triangle as CSC."""
        return CSCMatrix.from_coo(self.to_coo().lower_triangle(strict=strict))

    def pattern_symmetrized(self) -> "CSCMatrix":
        """Return a matrix with the pattern of A + A^T and values of A
        (transposed entries that are absent in A contribute value 0).

        Used to set up symmetric-structure analysis for unsymmetric LU
        (the standard approach with static pivoting, cf. SuperLU-DIST).
        """
        coo = self.to_coo()
        rows = np.concatenate([coo.rows, coo.cols])
        cols = np.concatenate([coo.cols, coo.rows])
        vals = np.concatenate([coo.vals, np.zeros(coo.nnz)])
        merged = COOMatrix(self.n_rows, self.n_cols, rows, cols, vals)
        return CSCMatrix.from_coo(merged)

    def is_structurally_symmetric(self) -> bool:
        """True if the nonzero pattern of A equals that of A^T."""
        at = self.transpose()
        return (
            np.array_equal(self.indptr, at.indptr)
            and np.array_equal(self.indices, at.indices)
        )

    def is_symmetric(self, rtol: float = 1e-12) -> bool:
        """True if A is numerically symmetric within relative tolerance."""
        at = self.transpose()
        if not self.is_structurally_symmetric():
            return False
        scale = max(1.0, float(np.abs(self.data).max()) if self.nnz else 1.0)
        return bool(np.allclose(self.data, at.data, rtol=rtol, atol=rtol * scale))

    def column_pattern_csc(self) -> list[np.ndarray]:
        """The full pattern as a list of per-column row-index arrays."""
        return [self.col_rows(j).copy() for j in range(self.n_cols)]
