"""Synthetic sparse matrix generators.

The paper evaluates on SuiteSparse matrices from circuit simulation,
structural analysis, fluid dynamics, and optimization (Section 7.1).  Those
cannot be downloaded offline, so these generators produce matrices with the
same *structural* character — the property that actually drives the paper's
results, via the supernode size distribution (Figure 6):

* 3-D grid stencils  -> large supernodes (structural / geo / CFD matrices);
* 2-D grid stencils  -> mid/small supernodes (apache2, G3_circuit, thermal);
* power-law graphs   -> tiny supernodes, deep irregular trees (FullChip,
  rajat31, ASIC_680k circuit matrices);
* dense-ish random   -> few huge supernodes (human_gene1, nd24k, appu);
* block-arrow        -> optimization / KKT structure (kkt_power).

All generators are deterministic given a seed and return SPD (for Cholesky)
or diagonally dominant unsymmetric (for LU with static pivoting) matrices.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix


def _spd_from_pattern(
    rows: np.ndarray,
    cols: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> CSCMatrix:
    """Build an SPD matrix with the symmetrized pattern of (rows, cols).

    Off-diagonal values are random in [-1, -0.1]; the diagonal is set to
    (row sum of |off-diagonals|) + 1, which makes the matrix strictly
    diagonally dominant with positive diagonal, hence SPD.
    """
    off = rows != cols
    rows, cols = rows[off], cols[off]
    # Symmetrize the pattern.
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    vals = -(0.1 + 0.9 * rng.random(len(rows)))
    all_vals = np.concatenate([vals, vals])
    coo = COOMatrix(n, n, all_rows, all_cols, all_vals).deduplicated()
    # Diagonally dominant diagonal.
    diag = np.ones(n)
    np.add.at(diag, coo.rows, np.abs(coo.vals))
    rows_f = np.concatenate([coo.rows, np.arange(n)])
    cols_f = np.concatenate([coo.cols, np.arange(n)])
    vals_f = np.concatenate([coo.vals, diag])
    return CSCMatrix.from_coo(COOMatrix(n, n, rows_f, cols_f, vals_f))


def _unsym_from_pattern(
    rows: np.ndarray,
    cols: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> CSCMatrix:
    """Build a diagonally dominant unsymmetric matrix from a pattern.

    Diagonal dominance keeps LU with static pivoting numerically stable, as
    assumed by the paper's static-pivoting preprocessing (Section 2.4).
    """
    off = rows != cols
    rows, cols = rows[off], cols[off]
    vals = rng.uniform(-1.0, 1.0, len(rows))
    coo = COOMatrix(n, n, rows, cols, vals).deduplicated()
    diag = np.ones(n)
    np.add.at(diag, coo.rows, np.abs(coo.vals))
    rows_f = np.concatenate([coo.rows, np.arange(n)])
    cols_f = np.concatenate([coo.cols, np.arange(n)])
    vals_f = np.concatenate([coo.vals, diag])
    return CSCMatrix.from_coo(COOMatrix(n, n, rows_f, cols_f, vals_f))


def _grid_edges_2d(nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
    """Edges of the 5-point stencil on an nx-by-ny grid (one direction)."""
    idx = np.arange(nx * ny).reshape(nx, ny)
    horiz = (idx[:, :-1].ravel(), idx[:, 1:].ravel())
    vert = (idx[:-1, :].ravel(), idx[1:, :].ravel())
    rows = np.concatenate([horiz[0], vert[0]])
    cols = np.concatenate([horiz[1], vert[1]])
    return rows, cols


def _grid_edges_3d(nx: int, ny: int, nz: int) -> tuple[np.ndarray, np.ndarray]:
    """Edges of the 7-point stencil on an nx-by-ny-by-nz grid."""
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    pairs = [
        (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()),
        (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()),
        (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    return rows, cols


def grid_laplacian_2d(nx: int, ny: int | None = None, seed: int = 0) -> CSCMatrix:
    """SPD 5-point-stencil matrix on an nx-by-ny grid.

    Models 2-D PDE discretizations (thermal, electrostatics).  With a good
    ordering these matrices have moderate supernodes — the "mid-range" of
    Figure 6.
    """
    ny = nx if ny is None else ny
    rows, cols = _grid_edges_2d(nx, ny)
    return _spd_from_pattern(rows, cols, nx * ny, np.random.default_rng(seed))


def grid_laplacian_3d(
    nx: int, ny: int | None = None, nz: int | None = None, seed: int = 0
) -> CSCMatrix:
    """SPD 7-point-stencil matrix on a 3-D grid.

    Models 3-D structural / geomechanical / CFD problems — these produce the
    large supernodes that dominate FLOPs in matrices like Serena and
    atmosmodd (Figure 6, top).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rows, cols = _grid_edges_3d(nx, ny, nz)
    return _spd_from_pattern(rows, cols, nx * ny * nz, np.random.default_rng(seed))


def _preferential_attachment_edges(
    n: int, edges_per_node: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Barabasi-Albert-style edge list with power-law degree distribution.

    Uses the endpoint-sampling trick: sampling uniformly from the list of
    edge endpoints is equivalent to degree-proportional sampling.
    """
    m = edges_per_node
    rows: list[int] = []
    cols: list[int] = []
    endpoints: list[int] = list(range(m + 1))
    for new in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            pick = endpoints[rng.integers(0, len(endpoints))]
            targets.add(pick)
        for t in targets:
            rows.append(new)
            cols.append(t)
            endpoints.append(new)
            endpoints.append(t)
    return np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)


def _circuit_pattern(
    n: int, hub_fraction: float, rng: np.random.Generator,
    aspect: int = 16,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Edge pattern of a chip-like netlist graph.

    Local wiring forms a narrow strip grid (width ``aspect``): circuit
    graphs have small separators relative to their size, so even the best
    ordering yields only small supernodes — the defining FullChip property
    (Figure 6, bottom: the largest supernode is 0.1% of n, vs ~1% for 3-D
    meshes).  On top, power-law "global nets" (clock, power, long wires)
    connect random cells to hub nodes via preferential attachment, and
    node labels are shuffled (placement order is unrelated to netlist
    order).
    """
    width = max(2, aspect)
    length = max(2, n // width)
    n_actual = width * length
    grid_rows, grid_cols = _grid_edges_2d(width, length)
    n_hub_edges = int(hub_fraction * n_actual)
    hub_rows, hub_cols = _preferential_attachment_edges(
        n_actual, 1, rng
    )
    pick = rng.permutation(len(hub_rows))[:n_hub_edges]
    rows = np.concatenate([grid_rows, hub_rows[pick]])
    cols = np.concatenate([grid_cols, hub_cols[pick]])
    relabel = rng.permutation(n_actual)
    return relabel[rows], relabel[cols], n_actual


def circuit_like(n: int, hub_fraction: float = 0.15,
                 aspect: int = 16, seed: int = 0) -> CSCMatrix:
    """Unsymmetric circuit-simulation-style matrix (for LU).

    Grid-local wiring plus power-law global nets (see
    :func:`_circuit_pattern`); structurally near-symmetric (as in modified
    nodal analysis) but numerically unsymmetric.  The resulting elimination
    trees are deep with tiny supernodes — pathological for batched GPU
    execution, exactly the FullChip / rajat31 behaviour.

    Note: n is rounded to a multiple of ``aspect`` (the strip width).
    """
    rng = np.random.default_rng(seed)
    rows, cols, n_actual = _circuit_pattern(n, hub_fraction, rng,
                                            aspect=aspect)
    # Near-symmetric pattern: drop one direction for a random 10% of edges.
    keep = rng.random(len(rows)) > 0.1
    all_rows = np.concatenate([rows, cols[keep]])
    all_cols = np.concatenate([cols, rows[keep]])
    return _unsym_from_pattern(all_rows, all_cols, n_actual, rng)


def power_law_spd(n: int, hub_fraction: float = 0.15,
                  aspect: int = 16, seed: int = 0) -> CSCMatrix:
    """SPD circuit-style matrix (G3_circuit, for Cholesky).

    Same chip-like pattern as :func:`circuit_like`, symmetrized and made
    diagonally dominant.  Note: n is rounded to a multiple of ``aspect``.
    """
    rng = np.random.default_rng(seed)
    rows, cols, n_actual = _circuit_pattern(n, hub_fraction, rng,
                                            aspect=aspect)
    return _spd_from_pattern(rows, cols, n_actual, rng)


def random_spd(n: int, density: float = 0.01, seed: int = 0) -> CSCMatrix:
    """SPD matrix with a uniformly random pattern.

    Relatively dense random patterns produce a few huge supernodes after
    fill-in — the structure of human_gene1 / nd24k-style matrices.
    """
    rng = np.random.default_rng(seed)
    nnz_target = max(n, int(density * n * n / 2))
    rows = rng.integers(0, n, nnz_target)
    cols = rng.integers(0, n, nnz_target)
    return _spd_from_pattern(rows, cols, n, rng)


def random_unsymmetric(n: int, density: float = 0.01, seed: int = 0) -> CSCMatrix:
    """Diagonally dominant unsymmetric matrix with a random pattern."""
    rng = np.random.default_rng(seed)
    nnz_target = max(n, int(density * n * n))
    rows = rng.integers(0, n, nnz_target)
    cols = rng.integers(0, n, nnz_target)
    return _unsym_from_pattern(rows, cols, n, rng)


def grid_unsym_2d(nx: int, ny: int | None = None, seed: int = 0) -> CSCMatrix:
    """Unsymmetric 5-point-stencil matrix (convection-diffusion style)."""
    ny = nx if ny is None else ny
    rows, cols = _grid_edges_2d(nx, ny)
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    return _unsym_from_pattern(all_rows, all_cols, nx * ny,
                               np.random.default_rng(seed))


def grid_unsym_3d(
    nx: int, ny: int | None = None, nz: int | None = None, seed: int = 0
) -> CSCMatrix:
    """Unsymmetric 7-point-stencil matrix (atmospheric / transport models).

    Structurally symmetric (as such discretizations are) but numerically
    unsymmetric, requiring LU rather than Cholesky — the structure of
    atmosmodd and Transport.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rows, cols = _grid_edges_3d(nx, ny, nz)
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    return _unsym_from_pattern(all_rows, all_cols, nx * ny * nz,
                               np.random.default_rng(seed))


def banded_spd(n: int, bandwidth: int, seed: int = 0) -> CSCMatrix:
    """SPD banded matrix (1-D mesh / beam problems; long thin etrees)."""
    rng = np.random.default_rng(seed)
    offsets = np.arange(1, bandwidth + 1)
    rows = np.concatenate([np.arange(k, n) for k in offsets])
    cols = np.concatenate([np.arange(0, n - k) for k in offsets])
    return _spd_from_pattern(rows, cols, n, rng)


def arrow_spd(
    n_blocks: int, block_size: int, border: int, seed: int = 0
) -> CSCMatrix:
    """Block-bordered (arrowhead) SPD matrix.

    Models KKT / optimization systems (nlpkkt80, kkt_power): independent
    diagonal blocks — each a small 2-D grid, giving real per-block
    factorization work — coupled through a border of constraint variables,
    yielding a bushy etree whose root supernode (the border) is large.
    ``block_size`` is rounded down to a perfect square.
    """
    rng = np.random.default_rng(seed)
    side = max(2, int(np.sqrt(block_size)))
    block_n = side * side
    n = n_blocks * block_n + border
    border_base = n_blocks * block_n
    rows_list = []
    cols_list = []
    grid_r, grid_c = _grid_edges_2d(side, side)
    for b in range(n_blocks):
        base = b * block_n
        rows_list.append(grid_r + base)
        cols_list.append(grid_c + base)
        # Coupling to the border: each block touches a handful of
        # constraint variables.
        picks = rng.integers(0, border, size=max(2, block_n // 8))
        anchors = base + rng.integers(0, block_n, size=len(picks))
        rows_list.append(border_base + picks)
        cols_list.append(anchors)
    # Sparse border-border coupling (constraints interact locally).
    b_rows = border_base + rng.integers(0, border, size=4 * border)
    b_cols = border_base + rng.integers(0, border, size=4 * border)
    rows_list.append(b_rows)
    cols_list.append(b_cols)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _spd_from_pattern(rows, cols, n, rng)


def arrow_unsym(
    n_blocks: int, block_size: int, border: int, seed: int = 0
) -> CSCMatrix:
    """Unsymmetric block-bordered matrix (kkt_power-style for LU)."""
    spd = arrow_spd(n_blocks, block_size, border, seed=seed)
    coo = spd.to_coo()
    rng = np.random.default_rng(seed + 1)
    return _unsym_from_pattern(coo.rows, coo.cols, spd.n_rows, rng)


def bipartite_cover(
    n_left: int, n_right: int, degree: int = 4, seed: int = 0
) -> CSCMatrix:
    """Unsymmetric matrix with bipartite structure (language / LP matrices).

    Each of the first ``n_left`` rows couples to ``degree`` random columns in
    the trailing ``n_right`` block and vice versa, giving the wide, shallow
    elimination trees typical of term-document and LP-constraint matrices.
    """
    rng = np.random.default_rng(seed)
    n = n_left + n_right
    left = np.repeat(np.arange(n_left), degree)
    right = n_left + rng.integers(0, n_right, n_left * degree)
    rows = np.concatenate([left, right])
    cols = np.concatenate([right, left])
    # Thin the reverse edges so the pattern is unsymmetric.
    keep = rng.random(len(rows)) > 0.3
    return _unsym_from_pattern(rows[keep], cols[keep], n, rng)
