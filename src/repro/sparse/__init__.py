"""Sparse matrix substrate: formats, IO, and synthetic matrix generators.

This subpackage provides the minimal-but-complete sparse linear algebra
foundation the rest of the reproduction builds on.  It deliberately avoids
``scipy.sparse`` for its core data structures so that every operation the
paper relies on (CSC traversal, pattern symmetrization, triangular
extraction) is implemented and testable here; scipy is used only in tests as
an independent oracle.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.generators import (
    arrow_spd,
    arrow_unsym,
    banded_spd,
    bipartite_cover,
    circuit_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    grid_unsym_2d,
    grid_unsym_3d,
    power_law_spd,
    random_spd,
    random_unsymmetric,
)
from repro.sparse.suite import (
    MatrixSpec,
    cholesky_suite,
    get_matrix,
    get_spec,
    lu_suite,
    suite_names,
)

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "read_matrix_market",
    "write_matrix_market",
    "arrow_spd",
    "arrow_unsym",
    "banded_spd",
    "bipartite_cover",
    "circuit_like",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "grid_unsym_2d",
    "grid_unsym_3d",
    "power_law_spd",
    "random_spd",
    "random_unsymmetric",
    "MatrixSpec",
    "cholesky_suite",
    "lu_suite",
    "get_matrix",
    "get_spec",
    "suite_names",
]
