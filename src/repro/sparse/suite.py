"""The evaluation matrix suite.

Section 7.1 of the paper evaluates 20 SPD matrices (Cholesky, Table 3) and
20 unsymmetric matrices (LU, Table 4) from SuiteSparse.  This module maps
each paper matrix name to a deterministic synthetic generator whose
structure matches the original's application domain (see
``repro.sparse.generators`` for the rationale and DESIGN.md section 2 for
the substitution note).

Sizes are scaled so a pure-Python cycle-level simulation of each matrix
finishes in seconds.  Pass ``scale`` > 1 to :func:`get_matrix` for larger
instances (linear dimensions scale roughly with ``scale**(1/d)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sparse.csc import CSCMatrix
from repro.sparse import generators as g


@dataclass(frozen=True)
class MatrixSpec:
    """A named matrix in the evaluation suite.

    Attributes:
        name: the SuiteSparse name used in the paper's tables.
        kind: "spd" (Cholesky suite) or "unsym" (LU suite).
        domain: application domain, as reported by SuiteSparse.
        ordering: recommended fill-reducing ordering ("nd", "amd", "rcm").
        build: zero-configuration factory; takes a float scale >= 0.25.
    """

    name: str
    kind: str
    domain: str
    ordering: str
    build: Callable[[float], CSCMatrix]


def _dim(base: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, round(base * scale))


def _spec(name: str, kind: str, domain: str, ordering: str, build) -> MatrixSpec:
    return MatrixSpec(name=name, kind=kind, domain=domain,
                      ordering=ordering, build=build)


def _g3d(base: int, seed: int, dy: int = 0, dz: int = 0):
    def build(s: float):
        k = _dim(base, s ** (1 / 3))
        return g.grid_laplacian_3d(k, max(2, k + dy), max(2, k + dz),
                                   seed=seed)
    return build


def _g2d(base: int, seed: int, dy: int = 0):
    def build(s: float):
        k = _dim(base, s ** 0.5)
        return g.grid_laplacian_2d(k, max(2, k + dy), seed=seed)
    return build


def _u3d(base: int, seed: int, dy: int = 0, dz: int = 0):
    def build(s: float):
        k = _dim(base, s ** (1 / 3))
        return g.grid_unsym_3d(k, max(2, k + dy), max(2, k + dz), seed=seed)
    return build


def _u2d(base: int, seed: int, dy: int = 0):
    def build(s: float):
        k = _dim(base, s ** 0.5)
        return g.grid_unsym_2d(k, max(2, k + dy), seed=seed)
    return build


# ---------------------------------------------------------------------------
# Cholesky suite (Table 3).  Ordered as in the paper: matrices dominated by
# large supernodes first, small-supernode matrices last.
# ---------------------------------------------------------------------------

_CHOLESKY_SPECS = [
    _spec("Serena", "spd", "gas reservoir (3D)", "nd", _g3d(20, 1)),
    _spec("Geo_1438", "spd", "geomechanics (3D)", "nd", _g3d(19, 2)),
    _spec("Emilia_923", "spd", "geomechanics (3D)", "nd", _g3d(19, 3, dy=-1)),
    _spec("Fault_639", "spd", "contact mechanics (3D)", "nd", _g3d(18, 4)),
    _spec("Hook_1498", "spd", "steel hook (3D)", "nd", _g3d(18, 5, dz=-1)),
    _spec("nd24k", "spd", "3D mesh (ND problem set)", "amd",
          lambda s: g.random_spd(_dim(520, s ** 0.5), density=0.06, seed=6)),
    _spec("audikw_1", "spd", "automotive crankshaft (3D)", "nd", _g3d(17, 7)),
    _spec("PFlow_742", "spd", "pressure flow (3D)", "nd", _g3d(17, 8, dy=-1)),
    _spec("bone010", "spd", "bone micro-FE (3D)", "nd", _g3d(16, 9)),
    _spec("StocF-1465", "spd", "flow with stochastic permeability", "nd",
          _g3d(16, 10, dz=-1)),
    _spec("Flan_1565", "spd", "steel flange (3D)", "nd", _g3d(15, 11)),
    _spec("consph", "spd", "concentric spheres FEM", "nd", _g3d(15, 12, dy=-1)),
    _spec("boneS10", "spd", "bone micro-FE (coarser)", "nd", _g3d(14, 13)),
    _spec("apache2", "spd", "3D finite differences", "nd", _g2d(100, 14)),
    _spec("offshore", "spd", "EM modeling (3D)", "nd", _g3d(13, 15)),
    _spec("inline_1", "spd", "inline skater (3D FEM)", "nd", _g3d(13, 16, dz=-1)),
    _spec("bmwcra_1", "spd", "automotive crankshaft FEM", "nd", _g3d(12, 17)),
    _spec("BenElechi1", "spd", "2D-like FEM sheet", "nd", _g2d(80, 18)),
    _spec("af_0_k101", "spd", "sheet-metal forming", "nd", _g2d(90, 19)),
    _spec("G3_circuit", "spd", "circuit simulation (SPD)", "amd",
          lambda s: g.power_law_spd(_dim(7200, s), hub_fraction=0.05, aspect=24, seed=20)),
]

# ---------------------------------------------------------------------------
# LU suite (Table 4).
# ---------------------------------------------------------------------------

_LU_SPECS = [
    _spec("cage13", "unsym", "DNA electrophoresis", "nd", _u3d(16, 31)),
    _spec("Long_Coup0", "unsym", "coupled consolidation (3D)", "nd",
          _u3d(16, 32, dy=1, dz=-1)),
    _spec("nlpkkt80", "unsym", "nonlinear programming KKT", "amd",
          lambda s: g.arrow_unsym(_dim(48, s), 100, _dim(128, s ** 0.5), seed=33)),
    _spec("Ge87H76", "unsym", "quantum chemistry", "amd",
          lambda s: g.random_unsymmetric(_dim(400, s ** 0.5), density=0.05,
                                         seed=34)),
    _spec("atmosmodd", "unsym", "atmospheric model (3D)", "nd", _u3d(17, 35)),
    _spec("Transport", "unsym", "3D transport", "nd", _u3d(15, 36)),
    _spec("language", "unsym", "natural language processing", "amd",
          lambda s: g.bipartite_cover(_dim(1800, s), _dim(1800, s), degree=4,
                                      seed=37)),
    _spec("ML_Geer", "unsym", "poroelasticity (3D)", "nd", _u3d(15, 38, dz=-1)),
    _spec("appu", "unsym", "random benchmark (NASA)", "amd",
          lambda s: g.random_unsymmetric(_dim(380, s ** 0.5), density=0.08,
                                         seed=39)),
    _spec("dielFilterV3real", "unsym", "dielectric filter EM", "nd",
          _u3d(14, 40)),
    _spec("CoupCons3D", "unsym", "coupled consolidation", "nd", _u3d(14, 41, dy=-1)),
    _spec("kkt_power", "unsym", "optimal power flow KKT", "amd",
          lambda s: g.arrow_unsym(_dim(56, s), 64, _dim(96, s ** 0.5), seed=42)),
    _spec("ASIC_680k", "unsym", "circuit simulation", "amd",
          lambda s: g.circuit_like(_dim(5000, s), hub_fraction=0.08, aspect=20, seed=43)),
    _spec("torso3", "unsym", "human torso field model", "nd", _u3d(13, 44)),
    _spec("ohne2", "unsym", "semiconductor device (3D)", "nd", _u3d(13, 45, dz=-1)),
    _spec("F1", "unsym", "automotive FEM", "nd", _u3d(12, 46)),
    _spec("human_gene1", "unsym", "gene network (dense-ish)", "amd",
          lambda s: g.random_unsymmetric(_dim(320, s ** 0.5), density=0.12,
                                         seed=47)),
    _spec("FullChip", "unsym", "full-chip circuit simulation", "amd",
          lambda s: g.circuit_like(_dim(12000, s), hub_fraction=0.02, aspect=12, seed=48)),
    _spec("TSOPF_b2383", "unsym", "optimal power flow", "amd",
          lambda s: g.circuit_like(_dim(2880, s), hub_fraction=0.05, aspect=24, seed=49)),
    _spec("rajat31", "unsym", "circuit simulation", "amd",
          lambda s: g.circuit_like(_dim(4000, s), hub_fraction=0.05, aspect=16, seed=50)),
]

_REGISTRY: dict[str, MatrixSpec] = {
    spec.name: spec for spec in _CHOLESKY_SPECS + _LU_SPECS
}


def cholesky_suite() -> list[MatrixSpec]:
    """The 20 SPD matrices of Table 3, in the paper's order."""
    return list(_CHOLESKY_SPECS)


def lu_suite() -> list[MatrixSpec]:
    """The 20 unsymmetric matrices of Table 4, in the paper's order."""
    return list(_LU_SPECS)


def suite_names(kind: str | None = None) -> list[str]:
    """All matrix names, optionally filtered by kind ("spd" or "unsym")."""
    return [
        name for name, spec in _REGISTRY.items()
        if kind is None or spec.kind == kind
    ]


def get_spec(name: str) -> MatrixSpec:
    """Look up a suite matrix by its paper name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown suite matrix {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def get_matrix(name: str, scale: float = 1.0) -> CSCMatrix:
    """Build a suite matrix by name at the given scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return get_spec(name).build(scale)
