"""Coordinate (COO) sparse matrix format.

COO is the interchange format: generators and the MatrixMarket reader emit
COO, and everything downstream converts to :class:`repro.sparse.CSCMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format.

    Attributes:
        n_rows: number of rows.
        n_cols: number of columns.
        rows: int64 array of row coordinates, one per entry.
        cols: int64 array of column coordinates, one per entry.
        vals: float64 array of values, one per entry.

    Duplicate coordinates are allowed and are summed on conversion to CSC
    (the usual finite-element assembly convention).
    """

    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("rows, cols, vals must have equal length")
        if len(self.rows) and (
            self.rows.min() < 0
            or self.cols.min() < 0
            or self.rows.max() >= self.n_rows
            or self.cols.max() >= self.n_cols
        ):
            raise ValueError("coordinate out of bounds")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return len(self.vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array; duplicates are summed."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def deduplicated(self) -> "COOMatrix":
        """Return a copy with duplicate coordinates summed and sorted."""
        order = np.lexsort((self.rows, self.cols))
        rows, cols, vals = self.rows[order], self.cols[order], self.vals[order]
        if len(rows) == 0:
            return COOMatrix(self.n_rows, self.n_cols, rows, cols, vals)
        keys = cols * self.n_rows + rows
        first = np.concatenate(([True], keys[1:] != keys[:-1]))
        idx = np.cumsum(first) - 1
        summed = np.zeros(first.sum())
        np.add.at(summed, idx, vals)
        return COOMatrix(
            self.n_rows, self.n_cols, rows[first], cols[first], summed
        )

    def to_csc(self):
        """Canonical COO -> CSC conversion.

        Duplicate coordinates are *summed* (finite-element assembly
        convention) and row indices end up sorted within each column.
        Every conversion path in the repo — this method,
        :meth:`CSCMatrix.from_coo`, :meth:`to_dense` — agrees on these
        semantics; entries whose duplicates sum to exactly zero are kept
        as explicit zeros (the pattern is structural, not numeric).
        """
        from repro.sparse.csc import CSCMatrix

        return CSCMatrix.from_coo(self)

    def transpose(self) -> "COOMatrix":
        """Return the transpose (entries swapped, no copy of values)."""
        return COOMatrix(
            self.n_cols, self.n_rows, self.cols.copy(), self.rows.copy(),
            self.vals.copy(),
        )

    def symmetrized(self) -> "COOMatrix":
        """Return (A + A^T) / 2 as a COO matrix (square matrices only)."""
        if self.n_rows != self.n_cols:
            raise ValueError("symmetrization requires a square matrix")
        rows = np.concatenate([self.rows, self.cols])
        cols = np.concatenate([self.cols, self.rows])
        vals = np.concatenate([self.vals, self.vals]) * 0.5
        return COOMatrix(self.n_rows, self.n_cols, rows, cols, vals).deduplicated()

    def lower_triangle(self, strict: bool = False) -> "COOMatrix":
        """Extract the lower triangle (including the diagonal unless strict)."""
        keep = self.rows > self.cols if strict else self.rows >= self.cols
        return COOMatrix(
            self.n_rows, self.n_cols,
            self.rows[keep], self.cols[keep], self.vals[keep],
        )

    def permuted(self, perm: np.ndarray) -> "COOMatrix":
        """Apply a symmetric permutation: returns A[perm, perm] as COO.

        ``perm`` maps new index -> old index, i.e. the returned matrix B
        satisfies ``B[i, j] == A[perm[i], perm[j]]``.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if self.n_rows != self.n_cols or len(perm) != self.n_rows:
            raise ValueError("symmetric permutation requires square matrix")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(len(perm))
        return COOMatrix(
            self.n_rows, self.n_cols,
            inverse[self.rows], inverse[self.cols], self.vals.copy(),
        )
