"""Supernode detection and relaxed amalgamation (Section 2.3).

A *fundamental supernode* is a maximal run of consecutive columns
j, j+1, ..., j+k whose factor structures nest perfectly: each column's
structure is the previous one's minus its own index, and each column is the
etree parent of its predecessor.  The columns of a supernode share one CSQ
frontal matrix (Figure 4).

Pure fundamental supernodes are often tiny on irregular matrices, so like
every real multifrontal package we also perform *relaxed amalgamation*:
a child supernode is merged into its parent when the extra (logically zero)
entries this introduces are below a threshold.  This trades a little extra
compute for much larger, better-structured fronts — and directly shapes the
supernode-size distribution that Figure 6 studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Supernode:
    """One supernode of the assembly tree.

    Attributes:
        index: position in postorder (0-based; parents follow children).
        first_col / last_col: column range [first_col, last_col] (inclusive).
        rows: sorted row indices of the front, the first ``n_cols`` of which
            are the supernode's own columns (CSQ coordinates, Figure 3).
        parent: index of the parent supernode, or -1 for roots.
        children: indices of child supernodes.
    """

    index: int
    first_col: int
    last_col: int
    rows: np.ndarray
    parent: int = -1
    children: list[int] = field(default_factory=list)

    @property
    def n_cols(self) -> int:
        """Number of columns factored in this supernode (N_k in the paper)."""
        return self.last_col - self.first_col + 1

    @property
    def front_size(self) -> int:
        """Rows/cols of the frontal CSQ matrix (|rows|)."""
        return len(self.rows)

    @property
    def n_update_rows(self) -> int:
        """Rows of the update matrix passed to the parent (U_k columns)."""
        return self.front_size - self.n_cols


def _structures_nest(
    prev_struct: np.ndarray, cur_struct: np.ndarray, prev_col: int
) -> bool:
    """True if cur_struct == prev_struct \\ {prev_col}."""
    if len(cur_struct) != len(prev_struct) - 1:
        return False
    return bool(np.array_equal(cur_struct, prev_struct[1:]))


def find_supernodes(
    parent: np.ndarray,
    structs: list[np.ndarray],
    relax_small: int = 8,
    relax_ratio: float = 0.3,
    force_small: int = 0,
) -> list[Supernode]:
    """Partition columns into supernodes and build the assembly forest.

    Args:
        parent: elimination-tree parent array.
        structs: per-column L structures from
            :func:`repro.symbolic.structure.column_structures`.
        relax_small: child supernodes with at most this many columns are
            candidates for amalgamation into their parent.
        relax_ratio: a merge is accepted when the fraction of logically-zero
            entries it introduces into the merged front stays below this.
        force_small: merges whose combined front stays at or below this size
            are always accepted (packages do this to avoid fronts smaller
            than the hardware's natural panel width — Spatula's tile).

    Returns:
        supernodes in postorder (children precede parents), with parent /
        children links filled in.
    """
    n = len(parent)
    if n == 0:
        return []

    # Step 1: fundamental supernodes — consecutive-column runs.
    sn_of_col = np.empty(n, dtype=np.int64)
    starts: list[int] = [0]
    sn_of_col[0] = 0
    for j in range(1, n):
        fundamental = (
            parent[j - 1] == j
            and _structures_nest(structs[j - 1], structs[j], j - 1)
        )
        if not fundamental:
            starts.append(j)
        sn_of_col[j] = len(starts) - 1

    n_sn = len(starts)
    ends = [s - 1 for s in starts[1:]] + [n - 1]

    # Step 2: supernode tree. Parent supernode owns the first structure row
    # past this supernode's own columns.
    sn_parent = np.full(n_sn, -1, dtype=np.int64)
    for k in range(n_sn):
        last = ends[k]
        below = structs[last][structs[last] > last]
        if len(below):
            sn_parent[k] = sn_of_col[int(below[0])]

    # Step 3: relaxed amalgamation, processed leaves-to-root. A merge keeps
    # column ranges contiguous only when the child is the supernode
    # immediately preceding its parent's columns; fundamental supernode
    # numbering guarantees child index < parent index but not contiguity,
    # so check it.
    merged = np.arange(n_sn)

    def find(k: int) -> int:
        while merged[k] != k:
            merged[k] = merged[merged[k]]
            k = int(merged[k])
        return k

    sn_cols = {k: (starts[k], ends[k]) for k in range(n_sn)}
    sn_rows = {k: structs[starts[k]].copy() for k in range(n_sn)}

    # Merges cascade (absorbing the last child makes the previous sibling
    # column-contiguous), so iterate to a fixpoint.
    changed = True
    while changed:
        changed = False
        for k in range(n_sn):
            root_k = find(k)
            p = sn_parent[k]
            if p < 0:
                continue
            root_p = find(int(p))
            if root_p == root_k:
                continue
            c0, c1 = sn_cols[root_k]
            p0, p1 = sn_cols[root_p]
            if c1 + 1 != p0:
                continue  # not column-contiguous; cannot merge into one CSQ
            merged_rows = np.unique(np.concatenate([sn_rows[root_k],
                                                    sn_rows[root_p]]))
            forced = len(merged_rows) <= force_small
            if not forced and c1 - c0 + 1 > relax_small:
                continue
            exact = (
                _front_entries(len(sn_rows[root_k]))
                + _front_entries(len(sn_rows[root_p]))
            )
            relaxed = _front_entries(len(merged_rows))
            if (not forced and relaxed > 0
                    and (relaxed - exact) / relaxed > relax_ratio):
                continue
            # Accept the merge: child absorbs into parent representative.
            merged[root_k] = root_p
            sn_cols[root_p] = (c0, p1)
            sn_rows[root_p] = merged_rows
            del sn_cols[root_k], sn_rows[root_k]
            changed = True

    # Step 4: renumber surviving supernodes in column order (still a valid
    # postorder-compatible order because children columns precede parents'),
    # and rebuild tree links.
    survivors = sorted(sn_cols, key=lambda k: sn_cols[k][0])
    supernodes: list[Supernode] = []
    col_to_sn = np.empty(n, dtype=np.int64)
    for new, old in enumerate(survivors):
        c0, c1 = sn_cols[old]
        col_to_sn[c0:c1 + 1] = new
        supernodes.append(
            Supernode(index=new, first_col=c0, last_col=c1, rows=sn_rows[old])
        )
    for sn in supernodes:
        below = sn.rows[sn.rows > sn.last_col]
        if len(below):
            sn.parent = int(col_to_sn[int(below[0])])
            supernodes[sn.parent].children.append(sn.index)
    return supernodes


def _front_entries(front_size: int) -> int:
    """Lower-triangle entry count of a front, the amalgamation cost metric."""
    return front_size * (front_size + 1) // 2
