"""Elimination tree construction and traversal (Section 2.3).

The elimination tree (Schreiber [56] in the paper) has one vertex per
column; ``parent(j)`` is the row index of the first subdiagonal nonzero of
column j of the factor L.  It encodes every data dependence of sparse
factorization: column j can only be eliminated after all its descendants.

We use Liu's almost-linear-time algorithm with path compression, which needs
only the pattern of A (not of L).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix

NO_PARENT = -1


def elimination_tree(matrix: CSCMatrix) -> np.ndarray:
    """Compute the elimination tree of a symmetric-pattern matrix.

    Args:
        matrix: square matrix; only the lower-triangular pattern is read, so
            callers with unsymmetric matrices should pass the symmetrized
            pattern (``matrix.pattern_symmetrized()``).

    Returns:
        parent array of length n; ``parent[j]`` is j's parent column or
        ``NO_PARENT`` (-1) for roots.
    """
    n = matrix.n_cols
    if matrix.n_rows != n:
        raise ValueError("elimination tree requires a square matrix")
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    ancestor = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n):
        # Walk up from each row index i < j in column j's upper part --
        # equivalently rows of column i of the lower part. Using CSC of A we
        # traverse rows i in column j with i < j via A's columns: row i,
        # column j in the upper triangle corresponds to entry (j, i) in the
        # lower triangle, so iterate nonzero rows of column j that are < j
        # in A^T; with a symmetric pattern, column j of A works directly.
        for i in matrix.col_rows(j):
            i = int(i)
            if i >= j:
                break  # row indices are sorted; rest are lower-triangle
            # Path from i to the root of its current subtree, compressing.
            while True:
                next_anc = int(ancestor[i])
                ancestor[i] = j
                if next_anc == NO_PARENT:
                    parent[i] = j
                    break
                if next_anc == j:
                    break
                i = next_anc
    return parent


def etree_children(parent: np.ndarray) -> list[list[int]]:
    """Children lists of an elimination tree given the parent array."""
    children: list[list[int]] = [[] for _ in range(len(parent))]
    for j, p in enumerate(parent):
        if p != NO_PARENT:
            children[int(p)].append(j)
    return children


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postorder of the elimination tree.

    Returns an array ``post`` where ``post[k]`` is the k-th vertex in
    postorder.  Every vertex appears after all of its descendants, which is
    the correctness requirement of Listing 2.
    """
    n = len(parent)
    children = etree_children(parent)
    post = np.empty(n, dtype=np.int64)
    idx = 0
    # Iterative DFS over every root, visiting children in ascending order.
    for root in range(n):
        if parent[root] != NO_PARENT:
            continue
        stack = [(root, 0)]
        while stack:
            vertex, child_pos = stack.pop()
            if child_pos < len(children[vertex]):
                stack.append((vertex, child_pos + 1))
                stack.append((children[vertex][child_pos], 0))
            else:
                post[idx] = vertex
                idx += 1
    if idx != n:
        raise ValueError("parent array does not describe a forest")
    return post


def etree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of each vertex (roots at level 0).

    Used by the GPU baseline's level-by-level batching (Figure 8), where
    batches group vertices at equal height from the leaves; see
    ``repro.baselines.gpu`` which uses *height* rather than depth.
    """
    n = len(parent)
    levels = np.full(n, -1, dtype=np.int64)
    for j in range(n - 1, -1, -1):
        p = int(parent[j])
        if p == NO_PARENT:
            levels[j] = 0
        elif levels[p] >= 0:
            levels[j] = levels[p] + 1
        else:
            # Parent not yet resolved (parents always have higher indices in
            # an etree, so this should not happen; guard for safety).
            chain = [j]
            while p != NO_PARENT and levels[p] < 0:
                chain.append(p)
                p = int(parent[p])
            base = 0 if p == NO_PARENT else int(levels[p]) + 1
            for offset, vertex in enumerate(reversed(chain)):
                levels[vertex] = base + offset
    return levels


def etree_heights(parent: np.ndarray) -> np.ndarray:
    """Height of each vertex above the leaves (leaves at height 0).

    This is the batching key used by GPU implementations: all vertices of
    height h can be factored once heights < h are done.
    """
    n = len(parent)
    heights = np.zeros(n, dtype=np.int64)
    for j in postorder(parent):
        p = int(parent[j])
        if p != NO_PARENT:
            heights[p] = max(heights[p], heights[j] + 1)
    return heights


def etree_level_sets(parent: np.ndarray) -> list[np.ndarray]:
    """Height-grouped level sets for level-scheduled parallel traversal.

    ``result[h]`` holds the vertices at height ``h`` above the leaves, in
    ascending index order.  Every vertex's children live in strictly lower
    levels, so processing levels in order with a barrier between them
    satisfies all elimination-tree dependences; vertices *within* a level
    are mutually independent and may run concurrently.  This is the
    schedule the level-scheduled multifrontal factorization dispatches to
    its worker pool (and the batching structure of GPU solvers, Figure 8).
    """
    if len(parent) == 0:
        return []
    heights = etree_heights(parent)
    return [np.flatnonzero(heights == h)
            for h in range(int(heights.max()) + 1)]
