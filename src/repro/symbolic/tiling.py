"""Position-based tiling of CSQ fronts (Section 4.1, Figure 10).

Spatula's primitive datatype is a T-by-T dense tile.  A CSQ front of size r
is cut into ceil(r / T) position-based blocks along each axis; tile (i, j)
covers local positions [i*T, (i+1)*T) x [j*T, (j+1)*T).  For Cholesky only
tiles on or below the block diagonal exist.

Large supernodes additionally get level-2 *supertiles* of S-by-S tiles
(Section 5.1), which the generator FSM iterates over so that the working
set of each phase fits in the on-chip cache.
"""

from __future__ import annotations

from dataclasses import dataclass



def tile_index(front_size: int, tile: int) -> int:
    """Number of tile blocks along one axis of a front."""
    return -(-front_size // tile)


def tile_count_lower(front_size: int, tile: int) -> int:
    """Number of tiles in the lower block triangle (Cholesky storage)."""
    b = tile_index(front_size, tile)
    return b * (b + 1) // 2


@dataclass(frozen=True)
class TileGrid:
    """Tiling metadata for one supernode's front.

    Attributes:
        front_size: r, the CSQ dimension.
        n_pivot_cols: N_k, the number of columns factored here.
        tile: T, the primitive tile size.
        supertile: S, tiles per supertile edge (level-2 tiling).
    """

    front_size: int
    n_pivot_cols: int
    tile: int
    supertile: int

    @property
    def n_blocks(self) -> int:
        """Tile blocks along one axis."""
        return tile_index(self.front_size, self.tile)

    @property
    def n_pivot_blocks(self) -> int:
        """Tile blocks that contain pivot columns.

        Factoring stops after the block containing the last pivot column;
        blocks are position-based so the last pivot block may be partial.
        """
        return tile_index(self.n_pivot_cols, self.tile)

    def block_rows(self, block: int) -> tuple[int, int]:
        """Local position range [start, end) of a tile block."""
        start = block * self.tile
        return start, min(start + self.tile, self.front_size)

    def block_dim(self, block: int) -> int:
        start, end = self.block_rows(block)
        return end - start

    def pivots_in_block(self, block: int) -> int:
        """How many pivot columns fall inside tile-column ``block``."""
        start, end = self.block_rows(block)
        return max(0, min(end, self.n_pivot_cols) - start)

    @property
    def n_tiles_lower(self) -> int:
        """Tiles in the lower block triangle."""
        return tile_count_lower(self.front_size, self.tile)

    @property
    def n_tiles_full(self) -> int:
        """Tiles in the full square (LU fronts)."""
        return self.n_blocks * self.n_blocks

    @property
    def n_supertiles(self) -> int:
        """Supertiles along one axis."""
        return -(-self.n_blocks // self.supertile)

    def supertile_of(self, block: int) -> int:
        return block // self.supertile

    def tile_bytes(self) -> int:
        """Bytes of one full tile (doubles)."""
        return self.tile * self.tile * 8


def front_tile_footprint_bytes(grid: TileGrid, symmetric: bool) -> int:
    """Total bytes of a front stored as full T-by-T tiles."""
    tiles = grid.n_tiles_lower if symmetric else grid.n_tiles_full
    return tiles * grid.tile_bytes()
