"""Nonzero structure of the Cholesky factor L.

Computes, for each column j, the sorted row indices of L[:, j] (diagonal
included).  This is the fill-in computation: entries appear either because
A has them or because an outer-product update of a descendant column
introduces them (Figure 1c in the paper).

The recurrence (processed in any topological order of the etree):

    struct(j) = rows(A lower, col j)  ∪  { union over children c of j of
                 struct(c) \\ {c} }

Complexity is O(nnz(L)) unions of sorted arrays; memory is O(nnz(L)).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import etree_children


def column_structures(
    matrix: CSCMatrix, parent: np.ndarray
) -> list[np.ndarray]:
    """Per-column sorted row-index structure of L (diagonal included).

    Args:
        matrix: square matrix with symmetric pattern (only the lower
            triangle is read).
        parent: elimination tree parent array for the same matrix.
    """
    n = matrix.n_cols
    children = etree_children(parent)
    structs: list[np.ndarray | None] = [None] * n
    # Columns in increasing order: children have smaller indices than
    # parents in an etree, so this is a valid topological order.
    for j in range(n):
        rows = matrix.col_rows(j)
        pieces = [rows[rows >= j]]
        if not len(pieces[0]) or pieces[0][0] != j:
            # Ensure the diagonal is present even if A(j, j) is absent.
            pieces.insert(0, np.array([j], dtype=np.int64))
        for c in children[j]:
            child = structs[c]
            pieces.append(child[child > c])
        if len(pieces) == 1:
            structs[j] = pieces[0].astype(np.int64, copy=True)
        else:
            structs[j] = np.unique(np.concatenate(pieces))
    return structs  # type: ignore[return-value]


def column_counts(matrix: CSCMatrix, parent: np.ndarray) -> np.ndarray:
    """nnz of each column of L (including the diagonal)."""
    return np.array(
        [len(s) for s in column_structures(matrix, parent)], dtype=np.int64
    )


def factor_nnz(matrix: CSCMatrix, parent: np.ndarray) -> int:
    """Total nonzeros of L — the fill-in headline number.

    The paper notes L typically has 10-150x the nonzeros of A; tests use
    this to verify orderings actually reduce fill.
    """
    return int(column_counts(matrix, parent).sum())


def cholesky_flops_from_counts(counts: np.ndarray) -> int:
    """Exact FLOP count of sparse Cholesky from column counts.

    Column j with c = counts[j] nonzeros (incl. diagonal) costs:
      1 sqrt + (c-1) divides + (c-1) * c multiply-subtract pairs
    for the outer-product update, i.e. 1 + (c-1) + (c-1)*c flops.
    """
    c = counts.astype(np.int64)
    return int(np.sum(1 + (c - 1) + (c - 1) * c))


def lu_flops_from_counts(counts: np.ndarray) -> int:
    """FLOP count of sparse LU on a symmetric-pattern factorization.

    With static pivoting and symmetric structure, LU does roughly twice the
    Cholesky work (Section 2.4): the U part mirrors L.
    Column j costs (c-1) divides + 2 * (c-1)^2 update flops.
    """
    c = counts.astype(np.int64) - 1
    return int(np.sum(c + 2 * c * c))
