"""The Compressed Cartesian Square (CSQ) frontal-matrix format.

Figure 3 of the paper: a k-by-k CSQ stores k^2 dense values plus k
coordinates, which are simultaneously the row and column labels of the
nonzeros.  It is the natural container for outer-product updates — the
nonzeros of outer(v, v) are exactly nonzeros(v) x nonzeros(v) — and lets
the multifrontal method run dense kernels on sparse data.

Cholesky fronts are logically symmetric so only the lower triangle is
meaningful; LU fronts use the full square.  We store the full dense block
in both cases (as real packages do) and let the symmetric case simply
ignore the upper triangle.
"""

from __future__ import annotations

import numpy as np


class CSQMatrix:
    """A dense block indexed by a shared sorted coordinate vector.

    Attributes:
        coords: sorted global row/column labels, length k.
        values: k-by-k float64 array.  Entry (i, j) holds the matrix value
            at global coordinate (coords[i], coords[j]).
    """

    def __init__(self, coords: np.ndarray, values: np.ndarray | None = None):
        self.coords = np.asarray(coords, dtype=np.int64)
        if np.any(np.diff(self.coords) <= 0):
            raise ValueError("CSQ coordinates must be strictly increasing")
        k = len(self.coords)
        if values is None:
            self.values = np.zeros((k, k))
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (k, k):
                raise ValueError("values shape does not match coords")
            self.values = values

    @property
    def size(self) -> int:
        return len(self.coords)

    def position_of(self, coord: int) -> int:
        """Local position of a global coordinate (raises if absent)."""
        pos = int(np.searchsorted(self.coords, coord))
        if pos >= self.size or self.coords[pos] != coord:
            raise KeyError(f"coordinate {coord} not in CSQ")
        return pos

    def positions_of(self, coords: np.ndarray) -> np.ndarray:
        """Local positions of a sorted array of global coordinates.

        Every queried coordinate must be present; this is the guarantee the
        symbolic factorization provides for extend-add (child update
        coordinates are a subset of the parent front's coordinates).
        """
        pos = np.searchsorted(self.coords, coords)
        if np.any(pos >= self.size) or np.any(self.coords[pos] != coords):
            raise KeyError("some coordinates are not in CSQ")
        return pos

    def extend_add(self, other: "CSQMatrix") -> None:
        """Accumulate ``other`` into this CSQ by coordinate (extend-add).

        This is the gather_updates operation of Table 1 / Figure 13: the
        same global coordinate generally maps to *different* local positions
        in parent and child, so positions are translated through the
        coordinate vectors.
        """
        pos = self.positions_of(other.coords)
        self.values[np.ix_(pos, pos)] += other.values

    def submatrix(self, start: int) -> "CSQMatrix":
        """The trailing principal submatrix from local position ``start``.

        Used to extract the update matrix U_k = F[N_k:, N_k:] (Listing 2
        line 15) after factoring N_k pivot columns.
        """
        return CSQMatrix(
            self.coords[start:], self.values[start:, start:].copy()
        )

    def scatter_into_dense(self, dense: np.ndarray, lower_only: bool = False
                           ) -> None:
        """Add this CSQ's values into a dense matrix at global coordinates."""
        idx = np.ix_(self.coords, self.coords)
        if lower_only:
            mask = np.tril(np.ones((self.size, self.size), dtype=bool))
            dense[idx] += np.where(mask, self.values, 0.0)
        else:
            dense[idx] += self.values

    def copy(self) -> "CSQMatrix":
        return CSQMatrix(self.coords.copy(), self.values.copy())
