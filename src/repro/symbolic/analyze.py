"""One-call symbolic factorization (the "Symbolic Factorization" box of
Figure 2).

Combines ordering, elimination-tree construction, structure prediction,
supernode detection, and assembly-tree construction into a single reusable
object.  As in real applications, this analysis is computed once per
nonzero pattern and amortized over many numeric factorizations.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import span
from repro.ordering.api import fill_reducing_ordering
from repro.sparse.csc import CSCMatrix
from repro.symbolic.assembly import AssemblyTree, build_assembly_tree
from repro.symbolic.etree import elimination_tree, postorder
from repro.symbolic.structure import (
    cholesky_flops_from_counts,
    column_structures,
    lu_flops_from_counts,
)
from repro.symbolic.supernodes import find_supernodes

if TYPE_CHECKING:
    from repro.ordering.quality import OrderingScore

logger = logging.getLogger(__name__)


@dataclass
class SymbolicFactorization:
    """The reusable symbolic analysis of one sparsity pattern.

    Attributes:
        kind: "cholesky" or "lu".
        perm: fill-reducing permutation (new -> old).
        permuted: the permuted matrix the analysis describes.
        etree_parent: column elimination tree of the permuted matrix.
        tree: supernodal assembly tree with extend-add maps.
        factor_nnz: nonzeros of L (and of U for LU, per triangle).
        flops: factorization FLOPs (LU counts both triangles).
        quality: structural :class:`~repro.ordering.quality.OrderingScore`
            of the ordering actually used (fill, etree height, level
            occupancy), exported as ``ordering.quality.*`` gauges.
    """

    kind: str
    perm: np.ndarray
    permuted: CSCMatrix
    etree_parent: np.ndarray
    tree: AssemblyTree
    factor_nnz: int
    flops: int
    ordering: str = "amd"
    quality: "OrderingScore | None" = None

    @property
    def n(self) -> int:
        return self.permuted.n_rows

    @property
    def n_supernodes(self) -> int:
        return self.tree.n_supernodes

    def supernode_sizes(self) -> np.ndarray:
        """Front sizes (rows) of every supernode, for Figure 6."""
        return np.array(
            [sn.front_size for sn in self.tree.supernodes], dtype=np.int64
        )

    def supernode_flops(self) -> np.ndarray:
        """Per-supernode factorization FLOPs (see flops module for model)."""
        from repro.tasks.flops import supernode_factor_flops

        symmetric = self.kind == "cholesky"
        return np.array(
            [
                supernode_factor_flops(sn.front_size, sn.n_cols, symmetric)
                for sn in self.tree.supernodes
            ],
            dtype=np.int64,
        )


def symbolic_factorize(
    matrix: CSCMatrix,
    kind: str = "cholesky",
    ordering: str = "amd",
    perm: np.ndarray | None = None,
    relax_small: int = 8,
    relax_ratio: float = 0.3,
    force_small: int = 0,
) -> SymbolicFactorization:
    """Run the full symbolic analysis of a matrix.

    Args:
        matrix: square sparse matrix.  For LU it may be unsymmetric; the
            analysis uses the pattern of A + A^T (the standard
            static-pivoting setup, Section 2.4).
        kind: "cholesky" or "lu".
        ordering: fill-reducing ordering method (see
            :func:`repro.ordering.fill_reducing_ordering`).
        perm: optional explicit permutation overriding ``ordering``.
        relax_small / relax_ratio / force_small: amalgamation knobs (see
            :func:`repro.symbolic.supernodes.find_supernodes`).
    """
    if kind not in ("cholesky", "lu"):
        raise ValueError("kind must be 'cholesky' or 'lu'")
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("factorization requires a square matrix")

    if perm is None:
        perm = fill_reducing_ordering(matrix, ordering)
    perm = np.asarray(perm, dtype=np.int64)
    permuted = matrix.permuted(perm)

    def analysis_pattern(mat: CSCMatrix) -> CSCMatrix:
        return mat if kind == "cholesky" else mat.pattern_symmetrized()

    # Postorder the elimination tree and fold that (fill-equivalent)
    # permutation into the ordering: afterwards each supernode's columns
    # are contiguous and every parent immediately follows its last child,
    # which both the supernode detector and the amalgamation rely on.
    with span("symbolic.etree"):
        parent = elimination_tree(analysis_pattern(permuted))
        post = postorder(parent)
        if not np.array_equal(post, np.arange(len(post))):
            perm = perm[post]
            permuted = matrix.permuted(perm)
            parent = elimination_tree(analysis_pattern(permuted))
    with span("symbolic.structure"):
        pattern = analysis_pattern(permuted)
        structs = column_structures(pattern, parent)
        counts = np.array([len(s) for s in structs], dtype=np.int64)
    with span("symbolic.supernodes"):
        supernodes = find_supernodes(
            parent, structs, relax_small=relax_small,
            relax_ratio=relax_ratio, force_small=force_small,
        )
        tree = build_assembly_tree(matrix.n_rows, supernodes)

    if kind == "cholesky":
        flops = cholesky_flops_from_counts(counts)
    else:
        flops = lu_flops_from_counts(counts)

    # Score the ordering from the etree + counts the analysis already
    # computed (nearly free) and export ordering.quality.* gauges, so
    # every solve artifact carries a comparable OrderingScore.
    from repro.ordering.quality import export_quality_gauges, score_from_counts

    quality = score_from_counts(
        ordering, matrix.n_rows, matrix.nnz, parent, counts, kind=kind)
    export_quality_gauges(quality)

    logger.info(
        "symbolic [%s, %s]: n=%d, %d supernodes, nnz(L)=%d, %.3g GFLOP",
        kind, ordering, matrix.n_rows, tree.n_supernodes,
        int(counts.sum()), flops / 1e9,
    )
    return SymbolicFactorization(
        kind=kind,
        perm=perm,
        permuted=permuted,
        etree_parent=parent,
        tree=tree,
        factor_nnz=int(counts.sum()),
        flops=flops,
        ordering=ordering,
        quality=quality,
    )
