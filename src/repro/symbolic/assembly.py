"""The supernodal assembly tree with precomputed extend-add maps.

Packages the output of supernode detection into the structure both the
functional multifrontal factorization and the Spatula simulator consume:
for every supernode, its front coordinates, its parent, and the local
positions its update matrix scatters into within the parent's front
(Figure 13's many-to-many gather structure, resolved at symbolic time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.symbolic.supernodes import Supernode


@dataclass
class AssemblyTree:
    """Everything symbolic the numeric factorization needs.

    Attributes:
        n: matrix dimension.
        supernodes: supernodes in postorder (children precede parents).
        child_maps: for each supernode k, the local positions in
            parent(k)'s front that k's update rows occupy, or None for
            roots / supernodes with empty updates.
        col_to_sn: supernode index owning each column.
    """

    n: int
    supernodes: list[Supernode]
    child_maps: list[np.ndarray | None]
    col_to_sn: np.ndarray

    @property
    def n_supernodes(self) -> int:
        return len(self.supernodes)

    def roots(self) -> list[int]:
        return [sn.index for sn in self.supernodes if sn.parent < 0]

    def postorder_indices(self) -> list[int]:
        """Supernode indices in a valid processing order.

        Supernodes are numbered by first column, and a parent's first column
        always exceeds every descendant's last column, so ascending index
        order is a valid bottom-up order.
        """
        return list(range(self.n_supernodes))

    def validate(self) -> None:
        """Check structural invariants (used heavily in tests).

        * supernode column ranges partition [0, n);
        * a supernode's rows start with exactly its own columns;
        * children precede parents in index order;
        * update coordinates are a subset of the parent's coordinates.
        """
        covered = np.zeros(self.n, dtype=bool)
        for sn in self.supernodes:
            cols = np.arange(sn.first_col, sn.last_col + 1)
            if covered[cols].any():
                raise ValueError(f"supernode {sn.index} overlaps a column")
            covered[cols] = True
            if not np.array_equal(sn.rows[: sn.n_cols], cols):
                raise ValueError(
                    f"supernode {sn.index} rows must start with own columns"
                )
            if sn.parent >= 0:
                if sn.parent <= sn.index:
                    raise ValueError("parent must follow child in postorder")
                parent = self.supernodes[sn.parent]
                update = sn.rows[sn.n_cols:]
                if len(np.setdiff1d(update, parent.rows, assume_unique=True)):
                    raise ValueError(
                        f"supernode {sn.index} update rows not contained "
                        f"in parent {sn.parent}"
                    )
        if not covered.all():
            raise ValueError("supernodes do not cover all columns")


def build_assembly_tree(
    n: int, supernodes: list[Supernode]
) -> AssemblyTree:
    """Assemble the tree structure and extend-add maps from supernodes."""
    col_to_sn = np.empty(n, dtype=np.int64)
    for sn in supernodes:
        col_to_sn[sn.first_col:sn.last_col + 1] = sn.index
    child_maps: list[np.ndarray | None] = []
    for sn in supernodes:
        update = sn.rows[sn.n_cols:]
        if sn.parent < 0 or len(update) == 0:
            child_maps.append(None)
            continue
        parent_rows = supernodes[sn.parent].rows
        pos = np.searchsorted(parent_rows, update)
        if np.any(pos >= len(parent_rows)) or np.any(
            parent_rows[pos] != update
        ):
            raise ValueError(
                f"update rows of supernode {sn.index} missing from parent"
            )
        child_maps.append(pos.astype(np.int64))
    return AssemblyTree(
        n=n, supernodes=supernodes, child_maps=child_maps,
        col_to_sn=col_to_sn,
    )


def initial_front_values(matrix: CSCMatrix, sn: Supernode) -> np.ndarray:
    """Dense Cholesky front initialized with A's lower-triangle entries.

    Entry (i, local_col) of the front receives A[rows[i], first_col +
    local_col] for every nonzero of A that falls inside the front's
    coordinate set; the rest starts at zero and is filled by updates.
    """
    size = sn.front_size
    front = np.zeros((size, size))
    pos_of = {int(r): i for i, r in enumerate(sn.rows)}
    for local_col in range(sn.n_cols):
        j = sn.first_col + local_col
        a_rows = matrix.col_rows(j)
        a_vals = matrix.col_vals(j)
        sel = a_rows >= j
        for r, v in zip(a_rows[sel], a_vals[sel]):
            i = pos_of.get(int(r))
            if i is not None:
                front[i, local_col] += v
    return front


def initial_front_values_lu(
    matrix_csc: CSCMatrix, matrix_csr: CSCMatrix, sn: Supernode
) -> np.ndarray:
    """Dense LU front: L part from A's columns, U part from A's rows.

    Args:
        matrix_csc: A in CSC (for column access).
        matrix_csr: A^T in CSC, i.e. A in CSR (for row access).
        sn: the supernode.
    """
    size = sn.front_size
    front = np.zeros((size, size))
    rows = sn.rows
    pos_of = {int(r): i for i, r in enumerate(rows)}
    for local_col in range(sn.n_cols):
        j = sn.first_col + local_col
        # L part (and the pivot block): entries at or below the diagonal.
        a_rows = matrix_csc.col_rows(j)
        a_vals = matrix_csc.col_vals(j)
        sel = a_rows >= j
        for r, v in zip(a_rows[sel], a_vals[sel]):
            i = pos_of.get(int(r))
            if i is not None:
                front[i, local_col] += v
        # U part: entries of row j strictly right of the diagonal.
        t_rows = matrix_csr.col_rows(j)
        t_vals = matrix_csr.col_vals(j)
        sel = t_rows > j
        for c, v in zip(t_rows[sel], t_vals[sel]):
            i = pos_of.get(int(c))
            if i is not None:
                front[local_col, i] += v
    return front
