"""Symbolic factorization: the preprocessing stage of Figure 2.

Given a (permuted) matrix pattern, this subpackage computes everything the
numeric factorization and the Spatula simulator need:

* the elimination tree and its postorder (:mod:`repro.symbolic.etree`);
* the nonzero structure of the factor L (:mod:`repro.symbolic.structure`);
* fundamental supernodes with relaxed amalgamation
  (:mod:`repro.symbolic.supernodes`);
* the supernodal assembly tree with extend-add index maps
  (:mod:`repro.symbolic.assembly`);
* the CSQ (Compressed Cartesian Square) frontal format
  (:mod:`repro.symbolic.csq`);
* position-based tiling into T-by-T tiles and S-by-S supertiles
  (:mod:`repro.symbolic.tiling`).

The one-call entry point is :func:`symbolic_factorize`.
"""

from repro.symbolic.etree import (
    elimination_tree,
    etree_children,
    etree_heights,
    etree_level_sets,
    etree_levels,
    postorder,
)
from repro.symbolic.structure import column_structures, column_counts
from repro.symbolic.supernodes import Supernode, find_supernodes
from repro.symbolic.assembly import AssemblyTree, build_assembly_tree
from repro.symbolic.csq import CSQMatrix
from repro.symbolic.tiling import TileGrid, tile_count_lower, tile_index
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize

__all__ = [
    "elimination_tree",
    "etree_children",
    "etree_heights",
    "etree_level_sets",
    "etree_levels",
    "postorder",
    "column_structures",
    "column_counts",
    "Supernode",
    "find_supernodes",
    "AssemblyTree",
    "build_assembly_tree",
    "CSQMatrix",
    "TileGrid",
    "tile_count_lower",
    "tile_index",
    "SymbolicFactorization",
    "symbolic_factorize",
]
