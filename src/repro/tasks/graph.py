"""Per-supernode task dependence graphs (Figure 11).

The generator FSMs in hardware (Section 4.4) emit tasks lazily in a fixed
breadth-first order; this module materializes the same task sequence *with*
explicit dependence edges.  The simulator uses the emission order and
readiness conditions; tests use the explicit edges to verify that the
simulator never dispatches a task before its dependences complete and that
alternative emission orders (the Section 5.1 ablation) are semantically
equivalent.

Emission orders supported:

* ``"bf"``       — the paper's breadth-first order: pivot block-columns in
                   sequence, each column's tasks before the next column's
                   (the near-optimal default).
* ``"rowmajor"`` — a "simpler fixed-dimension order" (Section 5.1): all of a
                   tile-row's tasks before the next row.  Semantically
                   equivalent but schedules poorly; used for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.symbolic.tiling import TileGrid
from repro.tasks import flops as F
from repro.tasks.task import Task, TaskType, TileRef

GatherInputs = dict[tuple[int, int], list[TileRef]]


@dataclass
class SupernodeTaskGraph:
    """All tasks of one supernode, in emission order, with dependences.

    Attributes:
        sn: supernode index.
        grid: the front's tiling.
        tasks: tasks in generator emission order.
        deps: ``deps[t]`` lists indices of *intra-supernode* tasks that must
            complete before task t runs.  Gather tasks additionally depend
            on the child supernodes being fully factored, which is enforced
            at the supernode-scheduling level (Section 5.2), not here.
        final_task_of_tile: index of the task producing each tile's final
            value.
    """

    sn: int
    grid: TileGrid
    tasks: list[Task] = field(default_factory=list)
    deps: list[list[int]] = field(default_factory=list)
    final_task_of_tile: dict[tuple[int, int], int] = field(
        default_factory=dict
    )

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def total_flops(self) -> int:
        return sum(t.flops for t in self.tasks)

    def validate_topological(self) -> None:
        """Check deps point strictly backwards in emission order.

        This is the property that makes in-order dispatch deadlock-free
        (a generator's head task only waits on already-emitted tasks).
        """
        for t, dlist in enumerate(self.deps):
            for d in dlist:
                if d >= t:
                    raise ValueError(
                        f"task {t} depends on later task {d}; emission order "
                        "is not topological"
                    )


class _Builder:
    """Shared machinery for the Cholesky and LU graph builders."""

    def __init__(self, sn: int, grid: TileGrid,
                 gather_inputs: GatherInputs | None):
        self.sn = sn
        self.grid = grid
        self.graph = SupernodeTaskGraph(sn=sn, grid=grid)
        self.last_writer: dict[tuple[int, int], int] = {}
        self.gather_inputs = gather_inputs or {}

    def tile(self, i: int, j: int) -> TileRef:
        return TileRef(self.sn, i, j)

    def emit(self, task: Task, deps: list[int]) -> int:
        index = len(self.graph.tasks)
        self.graph.tasks.append(task)
        # Deduplicate while preserving order.
        seen: set[int] = set()
        unique = [d for d in deps if not (d in seen or seen.add(d))]
        self.graph.deps.append(unique)
        self.last_writer[(task.dest.block_row, task.dest.block_col)] = index
        return index

    def dest_dep(self, i: int, j: int) -> list[int]:
        prev = self.last_writer.get((i, j))
        return [prev] if prev is not None else []

    def emit_gathers(self) -> None:
        """One gather task per destination tile receiving child updates.

        Emitted first: Listing 2 gathers before factoring.  Inputs are
        tiles of other supernodes; their readiness is guaranteed by the
        supernode-level dependence (children fully factored first).
        """
        for (i, j) in sorted(self.gather_inputs):
            inputs = self.gather_inputs[(i, j)]
            di = self.grid.block_dim(i)
            dj = self.grid.block_dim(j)
            task = Task(
                ttype=TaskType.GATHER,
                dest=self.tile(i, j),
                inputs=list(inputs),
                flops=F.task_flops("gather_updates", di, dj,
                                   [1] * len(inputs)),
                sn=self.sn,
            )
            self.emit(task, self.dest_dep(i, j))

    def dgemm_splits(self, i: int, j: int, k_end: int,
                     transpose_b: bool) -> None:
        """Emit the dgemm task(s) updating tile (i, j) from block-columns
        [0, k_end), split per supertile (multi-level tiling, Section 5.1).

        For Cholesky ``transpose_b`` is True: the B operands are the same
        block-column's tiles in row j (B = T[j][k]^T).  For LU it is False:
        B operands are U tiles T[k][j].
        """
        if k_end <= 0:
            return
        s = self.grid.supertile
        grid = self.grid
        for k_start in range(0, k_end, s):
            k_stop = min(k_start + s, k_end)
            pairs: list[TileRef] = []
            k_dims: list[int] = []
            dep: list[int] = self.dest_dep(i, j)
            for k in range(k_start, k_stop):
                a = self.tile(i, k)
                b = self.tile(j, k) if transpose_b else self.tile(k, j)
                pairs.extend((a, b))
                k_dims.append(grid.pivots_in_block(k))
                for ref in (a, b):
                    key = (ref.block_row, ref.block_col)
                    final = self.graph.final_task_of_tile.get(key)
                    if final is not None:
                        dep.append(final)
            task = Task(
                ttype=TaskType.DGEMM,
                dest=self.tile(i, j),
                inputs=pairs,
                n_pairs=k_stop - k_start,
                flops=F.dgemm_task_flops(
                    grid.block_dim(i), grid.block_dim(j), k_dims
                ),
                sn=self.sn,
            )
            self.emit(task, dep)

    def mark_final(self, i: int, j: int) -> None:
        self.graph.final_task_of_tile[(i, j)] = self.last_writer[(i, j)]


def _build_cholesky(builder: _Builder, order: str) -> SupernodeTaskGraph:
    grid = builder.grid
    b, p = grid.n_blocks, grid.n_pivot_blocks
    builder.emit_gathers()

    def factor_column(k: int) -> None:
        # Breadth-first within the column (Figure 11's levels): first every
        # tile's accumulated dgemm — these are mutually independent, so the
        # in-order generator can dispatch the whole wavefront back-to-back —
        # then the dchol, then every tsolve.  Interleaving dgemm/tsolve per
        # tile instead would head-of-line-block the generator on each
        # dgemm's completion and serialize the column.
        piv = grid.pivots_in_block(k)
        for i in range(k, b):
            builder.dgemm_splits(i, k, k, transpose_b=True)
        diag = builder.emit(
            Task(
                ttype=TaskType.DCHOL,
                dest=builder.tile(k, k),
                flops=F.dchol_task_flops(piv),
                sn=builder.sn,
            ),
            builder.dest_dep(k, k),
        )
        builder.mark_final(k, k)
        for i in range(k + 1, b):
            builder.emit(
                Task(
                    ttype=TaskType.TSOLVE,
                    dest=builder.tile(i, k),
                    inputs=[builder.tile(k, k)],
                    flops=F.tsolve_task_flops(grid.block_dim(i), piv),
                    sn=builder.sn,
                ),
                builder.dest_dep(i, k) + [diag],
            )
            builder.mark_final(i, k)

    def schur_tile(i: int, j: int) -> None:
        builder.dgemm_splits(i, j, p, transpose_b=True)
        if (i, j) in builder.last_writer:
            builder.mark_final(i, j)

    if order == "bf":
        for k in range(p):
            factor_column(k)
        for j in range(p, b):
            for i in range(j, b):
                schur_tile(i, j)
    elif order == "rowmajor":
        # Fixed-dimension order: sweep tile rows; within a row, left to
        # right. Same tasks and deps, much worse head-of-line behaviour.
        for i in range(b):
            for j in range(min(i, p - 1) + 1):
                piv = grid.pivots_in_block(j)
                builder.dgemm_splits(i, j, j, transpose_b=True)
                if i == j:
                    builder.emit(
                        Task(ttype=TaskType.DCHOL, dest=builder.tile(i, i),
                             flops=F.dchol_task_flops(piv), sn=builder.sn),
                        builder.dest_dep(i, i),
                    )
                else:
                    diag = builder.graph.final_task_of_tile[(j, j)]
                    builder.emit(
                        Task(ttype=TaskType.TSOLVE, dest=builder.tile(i, j),
                             inputs=[builder.tile(j, j)],
                             flops=F.tsolve_task_flops(grid.block_dim(i),
                                                       piv),
                             sn=builder.sn),
                        builder.dest_dep(i, j) + [diag],
                    )
                builder.mark_final(i, j)
            for j in range(p, i + 1):
                schur_tile(i, j)
    else:
        raise ValueError(f"unknown emission order {order!r}")
    return builder.graph


def _build_lu(builder: _Builder, order: str) -> SupernodeTaskGraph:
    grid = builder.grid
    b, p = grid.n_blocks, grid.n_pivot_blocks
    builder.emit_gathers()

    def factor_step(k: int) -> None:
        # Breadth-first within the step (see the Cholesky builder): all
        # dgemm wavefront tasks first, then the dlu, then every tsolve.
        piv = grid.pivots_in_block(k)
        builder.dgemm_splits(k, k, k, transpose_b=False)
        for i in range(k + 1, b):
            builder.dgemm_splits(i, k, k, transpose_b=False)
        for j in range(k + 1, b):
            builder.dgemm_splits(k, j, k, transpose_b=False)
        diag = builder.emit(
            Task(ttype=TaskType.DLU, dest=builder.tile(k, k),
                 flops=F.dlu_task_flops(piv), sn=builder.sn),
            builder.dest_dep(k, k),
        )
        builder.mark_final(k, k)
        for i in range(k + 1, b):
            # L panel tile (i, k): solve against U11 of the pivot tile.
            builder.emit(
                Task(ttype=TaskType.TSOLVE, dest=builder.tile(i, k),
                     inputs=[builder.tile(k, k)],
                     flops=F.tsolve_task_flops(grid.block_dim(i), piv),
                     sn=builder.sn, tag="L"),
                builder.dest_dep(i, k) + [diag],
            )
            builder.mark_final(i, k)
        for j in range(k + 1, b):
            # U panel tile (k, j): solve against L11 of the pivot tile.
            builder.emit(
                Task(ttype=TaskType.TSOLVE, dest=builder.tile(k, j),
                     inputs=[builder.tile(k, k)],
                     flops=F.tsolve_task_flops(grid.block_dim(j), piv),
                     sn=builder.sn, tag="U"),
                builder.dest_dep(k, j) + [diag],
            )
            builder.mark_final(k, j)

    def schur_tile(i: int, j: int) -> None:
        builder.dgemm_splits(i, j, p, transpose_b=False)
        if (i, j) in builder.last_writer:
            builder.mark_final(i, j)

    if order == "bf":
        for k in range(p):
            factor_step(k)
        for i in range(p, b):
            for j in range(p, b):
                schur_tile(i, j)
    elif order == "rowmajor":
        # Fixed-dimension order: sweep full-square tiles row by row. Each
        # tile gets its aggregated dgemm then (if in a panel) its solve.
        # Topologically valid but serializes on the diagonal chain.
        for i in range(b):
            for j in range(b):
                s = min(i, j, p)
                builder.dgemm_splits(i, j, s, transpose_b=False)
                if min(i, j) < p:
                    piv = grid.pivots_in_block(min(i, j))
                    if i == j:
                        builder.emit(
                            Task(ttype=TaskType.DLU, dest=builder.tile(i, i),
                                 flops=F.dlu_task_flops(piv), sn=builder.sn),
                            builder.dest_dep(i, i),
                        )
                    else:
                        diag = builder.graph.final_task_of_tile[
                            (min(i, j), min(i, j))
                        ]
                        dim = grid.block_dim(i if j < i else j)
                        builder.emit(
                            Task(ttype=TaskType.TSOLVE,
                                 dest=builder.tile(i, j),
                                 inputs=[builder.tile(min(i, j), min(i, j))],
                                 flops=F.tsolve_task_flops(dim, piv),
                                 sn=builder.sn,
                                 tag="L" if j < i else "U"),
                            builder.dest_dep(i, j) + [diag],
                        )
                if (i, j) in builder.last_writer:
                    builder.mark_final(i, j)
    else:
        raise ValueError(f"unknown emission order {order!r}")
    return builder.graph


def build_task_graph(
    sn: int,
    grid: TileGrid,
    kind: str,
    gather_inputs: GatherInputs | None = None,
    order: str = "bf",
) -> SupernodeTaskGraph:
    """Build the task graph for one supernode's partial factorization.

    Args:
        sn: supernode index (stamped into tile refs).
        grid: the front's tiling.
        kind: "cholesky" (lower block triangle) or "lu" (full square).
        gather_inputs: per-destination-tile lists of child update tiles.
        order: task emission order, "bf" or "rowmajor" (see module docs).
    """
    builder = _Builder(sn, grid, gather_inputs)
    if kind == "cholesky":
        return _build_cholesky(builder, order)
    if kind == "lu":
        return _build_lu(builder, order)
    raise ValueError("kind must be 'cholesky' or 'lu'")
