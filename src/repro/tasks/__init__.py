"""Task-based decomposition of multifrontal factorization (Section 4.2).

Spatula's programming model decomposes each supernode's partial
factorization into tasks over T-by-T tiles (Table 1):

* ``dgemm``   — D += gemm(hcat(A), vcat(B)) over a list of tile pairs;
* ``tsolve``  — triangular solve of a tile against a factored diagonal tile;
* ``dchol``   — dense Cholesky of a diagonal tile;
* ``dlu``     — dense LU of a diagonal tile;
* ``gather_updates`` — coordinate-aligned accumulation of child update
  tiles into a parent tile (extend-add).

:mod:`repro.tasks.graph` builds the explicit dependence graph of Figure 11;
the simulator's generator FSMs (:mod:`repro.arch.generator`) emit the same
tasks lazily in breadth-first order.
"""

from repro.tasks.task import Task, TaskType, TileRef
from repro.tasks.graph import SupernodeTaskGraph, build_task_graph
from repro.tasks.flops import (
    matrix_factor_flops,
    supernode_factor_flops,
    task_flops,
)

__all__ = [
    "Task",
    "TaskType",
    "TileRef",
    "SupernodeTaskGraph",
    "build_task_graph",
    "matrix_factor_flops",
    "supernode_factor_flops",
    "task_flops",
]
