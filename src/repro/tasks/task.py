"""Task and tile descriptors (Table 1 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TaskType(enum.Enum):
    """The five Spatula task types."""

    DGEMM = "dgemm"
    TSOLVE = "tsolve"
    DCHOL = "dchol"
    DLU = "dlu"
    GATHER = "gather_updates"


@dataclass(frozen=True)
class TileRef:
    """Globally unique name of one T-by-T tile.

    Attributes:
        sn: owning supernode index.
        block_row / block_col: tile-block coordinates inside that
            supernode's front (position-based tiling, Figure 10).
    """

    sn: int
    block_row: int
    block_col: int

    def __repr__(self) -> str:  # compact: S3[2,1]
        return f"S{self.sn}[{self.block_row},{self.block_col}]"


@dataclass
class Task:
    """One unit of work for a PE.

    Attributes:
        ttype: task type.
        dest: destination tile (also an input: tasks read-modify-write it).
        inputs: input tiles.  For DGEMM these come in (A, B) pairs
            flattened as [a0, b0, a1, b1, ...]; ``n_pairs`` gives the pair
            count.  For TSOLVE it is the factored diagonal tile.  For
            GATHER it is the child update tiles.
        n_pairs: DGEMM pair count (drives systolic latency n * T).
        flops: floating-point operations this task performs (actual tile
            dimensions, not padded).
        sn: owning supernode (dest.sn for compute, the *parent* for GATHER).
        tag: small free-form marker used by tests and traces.
    """

    ttype: TaskType
    dest: TileRef
    inputs: list[TileRef] = field(default_factory=list)
    n_pairs: int = 0
    flops: int = 0
    sn: int = -1
    tag: str = ""

    def __repr__(self) -> str:
        return (
            f"Task({self.ttype.value}, dest={self.dest}, "
            f"inputs={len(self.inputs)}, flops={self.flops})"
        )
