"""Whole-matrix tiled execution plan.

Bridges the symbolic factorization and the simulator: for every supernode,
its :class:`~repro.symbolic.tiling.TileGrid` and the tile-level gather map
(which child tiles feed which parent tiles — the Figure 13b many-to-many
structure, resolved at planning time).

Both the Spatula simulator and the analytic baselines consume this plan, so
they agree exactly on the work to be done.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import span
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.tiling import TileGrid
from repro.tasks.graph import GatherInputs, SupernodeTaskGraph, build_task_graph
from repro.tasks.task import TileRef


@dataclass
class SupernodePlan:
    """Per-supernode slice of the execution plan."""

    index: int
    grid: TileGrid
    gather_inputs: GatherInputs = field(default_factory=dict)
    factor_flops: int = 0

    @property
    def n_tiles(self) -> int:
        return self.grid.n_tiles_lower if self.symmetric else \
            self.grid.n_tiles_full

    symmetric: bool = True


@dataclass
class FactorizationPlan:
    """Tiled execution plan for a whole matrix."""

    kind: str
    tile: int
    supertile: int
    supernodes: list[SupernodePlan]
    symbolic: SymbolicFactorization

    @property
    def n_supernodes(self) -> int:
        return len(self.supernodes)

    def task_graph(self, sn: int, order: str = "bf") -> SupernodeTaskGraph:
        """Materialize the task graph of one supernode."""
        plan = self.supernodes[sn]
        return build_task_graph(
            sn, plan.grid, self.kind, plan.gather_inputs, order=order
        )

    def total_factor_flops(self) -> int:
        return sum(sp.factor_flops for sp in self.supernodes)


def _tile_span(positions: np.ndarray, tile: int) -> np.ndarray:
    """Distinct tile-block indices covering a set of local positions."""
    return np.unique(positions // tile)


def build_plan(
    symbolic: SymbolicFactorization,
    tile: int = 16,
    supertile: int = 70,
) -> FactorizationPlan:
    """Build the tiled execution plan from a symbolic factorization.

    Args:
        symbolic: analysis from :func:`repro.symbolic.symbolic_factorize`.
        tile: T, the primitive tile size (16 in the paper's config).
        supertile: S, tiles per supertile edge (70 in the paper's example).
    """
    from repro.tasks.flops import supernode_factor_flops

    with span("plan.build"):
        return _build_plan(symbolic, tile, supertile,
                           supernode_factor_flops)


def _build_plan(symbolic, tile, supertile, supernode_factor_flops):
    kind = symbolic.kind
    symmetric = kind == "cholesky"
    tree = symbolic.tree
    plans = [
        SupernodePlan(
            index=sn.index,
            grid=TileGrid(
                front_size=sn.front_size,
                n_pivot_cols=sn.n_cols,
                tile=tile,
                supertile=supertile,
            ),
            factor_flops=supernode_factor_flops(
                sn.front_size, sn.n_cols, symmetric
            ),
            symmetric=symmetric,
        )
        for sn in tree.supernodes
    ]

    # Gather maps: for each supernode, map its update tiles into parent
    # tiles through the symbolic extend-add position maps.
    for sn in tree.supernodes:
        child_map = tree.child_maps[sn.index]
        if child_map is None:
            continue
        parent_plan = plans[sn.parent]
        n_piv = sn.n_cols
        front = sn.front_size
        update_positions = np.arange(n_piv, front)
        parent_positions = child_map  # parent local position per update row
        child_blocks = _tile_span(update_positions, tile)
        for bi in child_blocks:
            rows_lo = max(bi * tile, n_piv)
            rows_hi = min((bi + 1) * tile, front)
            par_rows = parent_positions[rows_lo - n_piv:rows_hi - n_piv]
            par_bi = _tile_span(par_rows, tile)
            for bj in child_blocks:
                if symmetric and bj > bi:
                    continue
                cols_lo = max(bj * tile, n_piv)
                cols_hi = min((bj + 1) * tile, front)
                par_cols = parent_positions[cols_lo - n_piv:cols_hi - n_piv]
                par_bj = _tile_span(par_cols, tile)
                child_ref = TileRef(sn.index, int(bi), int(bj))
                for pi in par_bi:
                    for pj in par_bj:
                        if symmetric and pj > pi:
                            continue
                        key = (int(pi), int(pj))
                        parent_plan.gather_inputs.setdefault(
                            key, []
                        ).append(child_ref)
    return FactorizationPlan(
        kind=kind,
        tile=tile,
        supertile=supertile,
        supernodes=plans,
        symbolic=symbolic,
    )
