"""FLOP accounting.

Two levels of accounting, kept consistent by tests:

* analytic per-supernode counts (used by the baselines and Figure 6), and
* per-task counts (used by the simulator to report achieved TFLOP/s).

Conventions: a fused multiply-add counts as 2 FLOPs; divides and square
roots count as 1.  These match the counting the GFLOP/s figures in the
paper imply (utilization == useful FLOPs / peak-FMA throughput).
"""

from __future__ import annotations

import numpy as np


def supernode_factor_flops(front_size: int, n_cols: int,
                           symmetric: bool) -> int:
    """FLOPs to run ``n_cols`` pivot steps on a ``front_size`` front.

    For Cholesky (symmetric), pivot i (0-based, r = front_size):
        1 sqrt + (r-i-1) scales + (r-i-1)(r-i) outer-product flops
    For LU, the update covers the full square:
        1 reciprocal + (r-i-1) scales + 2 (r-i-1)^2 update flops.
    """
    r, n = front_size, n_cols
    i = np.arange(n, dtype=np.int64)
    rem = r - i - 1
    if symmetric:
        return int(np.sum(1 + rem + rem * (rem + 1)))
    return int(np.sum(1 + rem + 2 * rem * rem))


def gather_flops(n_update_entries: int) -> int:
    """FLOPs to accumulate an update matrix into a parent (1 add/entry)."""
    return int(n_update_entries)


def matrix_factor_flops(front_sizes: np.ndarray, pivot_counts: np.ndarray,
                        symmetric: bool) -> int:
    """Total factorization FLOPs across all supernodes."""
    return int(
        sum(
            supernode_factor_flops(int(r), int(n), symmetric)
            for r, n in zip(front_sizes, pivot_counts)
        )
    )


# -- per-task counts (actual tile dimensions) --------------------------------

def dgemm_task_flops(d_rows: int, d_cols: int, k_dims: list[int]) -> int:
    """D (d_rows x d_cols) += sum of A_i (d_rows x k_i) @ B_i (k_i x d_cols)."""
    return int(2 * d_rows * d_cols * sum(k_dims))


def tsolve_task_flops(d_rows: int, d_cols: int) -> int:
    """Triangular solve of d_rows x d_cols block against d_cols triangle."""
    return int(d_rows * d_cols * d_cols)


def dchol_task_flops(dim: int) -> int:
    """Dense Cholesky of a dim x dim tile (n^3/3 leading term)."""
    return int(dim * dim * dim // 3 + dim * dim)


def dlu_task_flops(dim: int) -> int:
    """Dense LU of a dim x dim tile (2 n^3/3 leading term)."""
    return int(2 * dim * dim * dim // 3 + dim * dim)


def task_flops(ttype_value: str, d_rows: int, d_cols: int,
               k_dims: list[int] | None = None) -> int:
    """Dispatch table used by the task-graph builder."""
    if ttype_value == "dgemm":
        return dgemm_task_flops(d_rows, d_cols, k_dims or [])
    if ttype_value == "tsolve":
        return tsolve_task_flops(d_rows, d_cols)
    if ttype_value == "dchol":
        return dchol_task_flops(d_rows)
    if ttype_value == "dlu":
        return dlu_task_flops(d_rows)
    if ttype_value == "gather_updates":
        return int(d_rows * d_cols * len(k_dims or [1]))
    raise ValueError(f"unknown task type {ttype_value!r}")
