"""Structured run artifacts: config + report + metrics + spans as JSON.

A :class:`RunArtifact` is the machine-readable record of one pipeline run
— the thing you commit next to a benchmark result, diff across PRs, and
gate regressions on.  The JSON schema is versioned (``schema_version``);
:func:`RunArtifact.load` refuses artifacts written by an incompatible
schema rather than mis-reading them.

Diffing: :func:`diff_artifacts` compares the flattened metric spaces of
two artifacts and flags *watched* metrics (``WATCHED_METRICS``, each with
an improvement direction) that moved in the bad direction by more than a
relative threshold.  The CLI's ``repro report --diff`` exits non-zero when
any watched metric regresses.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Current write schema.  v2 (2026-08) added the optional ``attribution``
#: section (cycle accounting + critical path, repro.obs.attribution);
#: v3 (2026-08) added the optional ``telemetry`` section (run id +
#: wall-clock latency percentiles, repro.obs.telemetry) and the optional
#: ``profile`` section (top-function table + folded stacks,
#: repro.obs.profile).
SCHEMA_VERSION = 3

#: Schemas :func:`RunArtifact.load` understands.  Older artifacts simply
#: lack the sections later versions added — every shared field is
#: identical, so v1/v2 load with ``attribution``/``telemetry``/``profile``
#: defaulting to ``None``.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

#: Metrics the diff/trend gates watch, with the direction that is
#: *better*.  Spans the whole stack: simulator headline numbers, memory
#: system, the numeric engine, and the differential-verification layer.
WATCHED_METRICS: dict[str, str] = {
    "report.cycles": "lower",
    "report.achieved_tflops": "higher",
    "report.utilization": "higher",
    "report.total_dram_bytes": "lower",
    "report.load_imbalance": "lower",
    "cache.hit_rate": "higher",
    "cache.misses": "lower",
    "cache.mshr_stall_cycles": "lower",
    "noc.port.stall_cycles": "lower",
    # numeric engine (repro.numeric.engine.export_factor_metrics)
    "numeric.factor.gflops_per_s": "higher",
    "numeric.parallel.occupancy": "higher",
    "numeric.analysis_cache.hit_rate": "higher",
    # numeric-phase scheduler evidence (repro.numeric.schedule): idle
    # seconds and dispatch latency shrink when the scheduler keeps
    # workers fed; ready-queue depth is the parallelism it exposes.
    "numeric.sched.idle_s": "lower",
    "numeric.sched.dispatch_latency_ms.mean": "lower",
    "numeric.sched.ready_depth.mean": "higher",
    "numeric.sched.worker_tasks.imbalance": "lower",
    # scheduler sweep speedups vs the level baseline
    # (benchmarks/perf_smoke.py --scheduler)
    "numeric.speedup.dag": "higher",
    "numeric.speedup.procs": "higher",
    # differential verification (repro.verify)
    "verify.mismatches": "lower",
    "verify.checks": "higher",
    # wall-clock phase latency percentiles (repro.obs.telemetry): the
    # trend gate covers real time, not just simulated cycles.  Exported
    # by `solve --telemetry-dir/--repeat` runs as latency.<phase>.* gauges.
    "latency.numeric.factorize.p95_ms": "lower",
    "latency.numeric.solve.p50_ms": "lower",
    "latency.numeric.solve.p95_ms": "lower",
    "latency.numeric.solve.p99_ms": "lower",
    # warm-serving layer (repro.serve): the same gauge names are
    # exported by the solve server, `serve-bench`, and the
    # `solve --repeat/--procs` warm loop, so the gate sees one
    # comparable series per metric (see repro.serve.metrics).
    "serve.latency.request.p50_ms": "lower",
    "serve.latency.request.p95_ms": "lower",
    "serve.latency.request.p99_ms": "lower",
    "serve.throughput.rps": "higher",
    "serve.coalesce.batch_mean": "higher",
    "serve.speedup.coalesce": "higher",
    # live rolling-window SLO view of the serving layer (repro.obs.live
    # + repro.serve.metrics.LatencyRecorder.window_summary): the same
    # request phase restricted to the trailing window, so the gate
    # compares live-window behaviour — what an operator would see on a
    # running server — across builds, not just lifetime cumulatives.
    "serve.window.latency.request.p50_ms": "lower",
    "serve.window.latency.request.p99_ms": "lower",
    "serve.window.throughput.rps": "higher",
    # ordering quality harness (repro.ordering.quality): structural
    # quality of the ordering a solve actually used — predicted fill,
    # symbolic FLOPs, etree critical-path length, and how uniformly
    # parallel the etree level sets are.
    "ordering.quality.fill": "lower",
    "ordering.quality.flops": "lower",
    "ordering.quality.etree_height": "lower",
    "ordering.quality.occupancy": "higher",
}


@dataclass
class RunArtifact:
    """One run's full observability record."""

    matrix: str
    kind: str
    n: int
    config: dict
    report: dict
    metrics: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    #: Performance-attribution section (schema v2+): the dict returned by
    #: ``SpatulaSim.attribution()`` — cycle accounting, critical path, and
    #: utilization timeline — or a numeric-engine attribution view for
    #: solve artifacts.  ``None`` for runs without a trace and for every
    #: v1 artifact.
    attribution: dict | None = None
    #: Runtime-telemetry section (schema v3+): the run id, telemetry
    #: directory, process count, and per-phase wall-clock latency
    #: percentiles of the run that produced this artifact.  ``None`` for
    #: runs without ``--telemetry-dir`` and for every v1/v2 artifact.
    telemetry: dict | None = None
    #: Wall-clock profile section (schema v3+): the
    #: :class:`repro.obs.profile.ProfileResult` dict — top-function
    #: table plus folded stack samples (rendered into a flamegraph by
    #: the HTML report).  ``None`` without ``--profile``.
    profile: dict | None = None
    schema_version: int = SCHEMA_VERSION
    created_at: str = ""

    # -- construction -------------------------------------------------------

    @classmethod
    def from_run(cls, report, registry=None, tracer=None,
                 matrix: str | None = None,
                 attribution: dict | None = None) -> "RunArtifact":
        """Build an artifact from a :class:`~repro.arch.stats.SimReport`.

        Args:
            report: the simulation report.
            registry: metrics registry; defaults to ``report.metrics``.
            tracer: span tracer whose spans to embed (optional).
            matrix: label override (defaults to ``report.matrix_name``).
            attribution: attribution section to embed (the dict from
                ``SpatulaSim.attribution()``; optional).
        """
        registry = registry if registry is not None else report.metrics
        return cls(
            matrix=matrix if matrix is not None else report.matrix_name,
            kind=report.kind,
            n=report.n,
            config=asdict(report.config),
            report=report.to_dict(),
            metrics=registry.snapshot() if registry is not None else {},
            spans=[s.to_dict() for s in tracer.spans] if tracer else [],
            attribution=attribution,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "matrix": self.matrix,
            "kind": self.kind,
            "n": self.n,
            "config": self.config,
            "report": self.report,
            "metrics": self.metrics,
            "spans": self.spans,
        }
        if self.attribution is not None:
            data["attribution"] = self.attribution
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.profile is not None:
            data["profile"] = self.profile
        return data

    def save(self, path: str | Path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1)

    @classmethod
    def load(cls, path: str | Path) -> "RunArtifact":
        """Load an artifact of any supported schema version.

        v1 artifacts (written before the attribution layer) load with
        ``attribution=None``; v1/v2 artifacts (written before the
        telemetry layer) load with ``telemetry=None``/``profile=None``.
        Every shared field is identical across versions.
        """
        with open(path) as f:
            data = json.load(f)
        version = data.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in
                                  SUPPORTED_SCHEMA_VERSIONS)
            raise ValueError(
                f"{path}: artifact schema_version {version!r} is not "
                f"supported (supported versions: {supported})"
            )
        return cls(
            matrix=data["matrix"], kind=data["kind"], n=data["n"],
            config=data["config"], report=data["report"],
            metrics=data.get("metrics", {}), spans=data.get("spans", []),
            attribution=data.get("attribution"),
            telemetry=data.get("telemetry"),
            profile=data.get("profile"),
            schema_version=version, created_at=data.get("created_at", ""),
        )

    # -- flattened metric space ---------------------------------------------

    def flat_metrics(self) -> dict[str, float]:
        """Scalar view over report headlines + registry metrics."""
        flat: dict[str, float] = {}
        for key, value in self.report.items():
            if isinstance(value, (int, float)):
                flat[f"report.{key}"] = float(value)
        for name, value in self.metrics.items():
            if isinstance(value, dict):  # histogram summary
                flat[f"{name}.count"] = float(value.get("count", 0))
                flat[f"{name}.mean"] = float(value.get("mean", 0.0))
                flat[f"{name}.max"] = float(value.get("max", 0.0))
            else:
                flat[name] = float(value)
        return flat


# -- pretty printing ---------------------------------------------------------


def render_artifact(artifact: RunArtifact) -> str:
    """Human-readable summary of one artifact."""
    lines = [
        f"{artifact.matrix} [{artifact.kind}] n={artifact.n} "
        f"(schema v{artifact.schema_version}, {artifact.created_at})",
        "-- report " + "-" * 45,
    ]
    for key, value in sorted(artifact.report.items()):
        if isinstance(value, float):
            lines.append(f"  {key:<32}{value:>18.6g}")
        elif isinstance(value, int):
            lines.append(f"  {key:<32}{value:>18}")
    if artifact.spans:
        lines.append("-- spans " + "-" * 46)
        for s in sorted(artifact.spans, key=lambda d: d["start_s"]):
            mem = s.get("peak_mem_bytes")
            mem_s = f"  peak {mem / 1e6:.1f} MB" if mem is not None else ""
            lines.append(
                f"  {'  ' * s.get('depth', 0)}{s['name']:<30}"
                f"{1e3 * s['duration_s']:>10.2f} ms{mem_s}"
            )
    if artifact.attribution and "cycles" in artifact.attribution:
        from repro.obs.attribution import CriticalPath, CycleAttribution

        lines.append("-- attribution " + "-" * 40)
        lines.append(CycleAttribution.from_dict(
            artifact.attribution["cycles"]).render())
        if "critical_path" in artifact.attribution:
            lines.append(CriticalPath.from_dict(
                artifact.attribution["critical_path"]).render())
    if artifact.telemetry:
        lines.append("-- telemetry " + "-" * 42)
        run = artifact.telemetry.get("run_id", "?")
        n_procs = artifact.telemetry.get("n_processes", 1)
        lines.append(f"  run {run} ({n_procs} process(es))")
        for phase, st in sorted(
                artifact.telemetry.get("latency_ms", {}).items()):
            lines.append(
                f"  {phase:<26}x{st['count']:<6}"
                f"p50 {st['p50_ms']:>9.3f} ms  "
                f"p95 {st['p95_ms']:>9.3f} ms  "
                f"p99 {st['p99_ms']:>9.3f} ms"
            )
    if artifact.profile:
        from repro.obs.profile import ProfileResult

        lines.append("-- profile " + "-" * 44)
        lines.append(ProfileResult.from_dict(artifact.profile)
                     .render_top(limit=10))
    if artifact.metrics:
        lines.append("-- metrics " + "-" * 44)
        for name, value in sorted(artifact.metrics.items()):
            if isinstance(value, dict):
                lines.append(
                    f"  {name:<32} count={value.get('count', 0)} "
                    f"mean={value.get('mean', 0.0):.3g} "
                    f"max={value.get('max', 0.0):.3g}"
                )
            else:
                lines.append(f"  {name:<32}{value:>18.6g}")
    return "\n".join(lines)


# -- diffing ------------------------------------------------------------------


@dataclass
class MetricDelta:
    """One metric compared across two artifacts."""

    name: str
    before: float
    after: float
    watched: bool
    direction: str | None      # "lower" | "higher" | None
    regressed: bool

    @property
    def rel_change(self) -> float:
        denom = abs(self.before)
        if denom == 0.0:
            return 0.0 if self.after == self.before else float("inf")
        return (self.after - self.before) / denom


@dataclass
class DiffResult:
    """Outcome of comparing two artifacts."""

    deltas: list[MetricDelta]
    threshold: float

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)


def diff_artifacts(a: RunArtifact, b: RunArtifact,
                   threshold: float = 0.05) -> DiffResult:
    """Compare artifact ``b`` (new) against ``a`` (baseline).

    A *watched* metric regresses when it moves in its bad direction by
    more than ``threshold`` relative to the baseline value.
    """
    fa, fb = a.flat_metrics(), b.flat_metrics()
    deltas: list[MetricDelta] = []
    for name in sorted(set(fa) & set(fb)):
        before, after = fa[name], fb[name]
        direction = WATCHED_METRICS.get(name)
        regressed = False
        if direction is not None and before != after:
            denom = abs(before)
            rel = ((after - before) / denom) if denom else float("inf")
            bad = rel if direction == "lower" else -rel
            regressed = bad > threshold
        deltas.append(MetricDelta(
            name=name, before=before, after=after,
            watched=direction is not None, direction=direction,
            regressed=regressed,
        ))
    return DiffResult(deltas=deltas, threshold=threshold)


def render_diff(result: DiffResult, show_unchanged: bool = False) -> str:
    """Table of metric deltas; regressions are marked ``<< REGRESSION``."""
    lines = [
        f"{'metric':<36}{'baseline':>14}{'new':>14}{'change':>10}",
        "-" * 74,
    ]
    for d in result.deltas:
        if d.before == d.after and not show_unchanged:
            continue
        change = d.rel_change
        change_s = "   inf" if change == float("inf") \
            else f"{100 * change:>+8.1f}%"
        mark = ""
        if d.regressed:
            mark = "  << REGRESSION"
        elif d.watched:
            mark = "  (watched)"
        lines.append(
            f"{d.name:<36}{d.before:>14.6g}{d.after:>14.6g}"
            f"{change_s:>10}{mark}"
        )
    n_reg = len(result.regressions)
    lines.append("-" * 74)
    lines.append(
        f"{n_reg} watched metric(s) regressed beyond "
        f"{100 * result.threshold:.0f}%"
        if n_reg else
        f"no watched metric regressed beyond {100 * result.threshold:.0f}%"
    )
    return "\n".join(lines)
