"""Hierarchical metrics registry (counters, gauges, log-scale histograms).

Components register instruments by dotted hierarchical name —
``sim.cache.hits``, ``noc.port.stall_cycles``, ``hbm.chan3.bytes``,
``scheduler.queue_depth`` — into one :class:`MetricsRegistry` per run.
The registry is intentionally dependency-free and cheap: an instrument is
a tiny object with a plain numeric slot, so hot paths may either update
instruments directly or (the pattern the simulator uses) keep their own
raw counters and *export* them into a registry once at end of run, which
makes instrumentation exactly zero-cost while the run executes.

Naming convention: lower-case dotted segments, coarsest component first
(``<component>.<subcomponent>.<quantity>``), with units spelled out in the
final segment where ambiguous (``_cycles``, ``_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count (events, bytes, cycles)."""

    name: str
    value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_value(self) -> int | float:
        return self.value


@dataclass
class Gauge:
    """A point-in-time level (queue depth, footprint, rate)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def as_value(self) -> float:
        return self.value


@dataclass
class Histogram:
    """A log2-bucketed histogram of non-negative observations.

    Observation ``v`` lands in bucket ``b`` where ``2**(b-1) <= v < 2**b``
    (``v == 0`` lands in bucket 0), i.e. a log-scale histogram suitable for
    heavy-tailed quantities like queue depths, front sizes, or latencies.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: int | float) -> None:
        if value < 0:
            raise ValueError(f"{self.name}: histogram values must be >= 0")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket edge at quantile ``q`` (log2 resolution)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return float(2 ** bucket - 1) if bucket else 0.0
        return self.max

    def as_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by hierarchical name."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # -- registration -------------------------------------------------------

    def _get_or_create(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name=name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- queries ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def value(self, name: str, default: int | float = 0) -> int | float:
        """The scalar value of a counter/gauge (``default`` if absent)."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            raise TypeError(f"{name!r} is a histogram; use get()")
        return inst.value

    def names(self, prefix: str = "") -> list[str]:
        """Sorted instrument names, optionally below a dotted prefix."""
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._instruments
                      if n == prefix.rstrip(".") or n.startswith(dotted))

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Name -> value mapping (histograms expand to summary dicts)."""
        return {
            name: inst.as_value()
            for name, inst in sorted(self._instruments.items())
        }

    def flatten(self) -> dict[str, float]:
        """Flat name -> scalar mapping suitable for diffing.

        Histograms contribute ``name.count`` / ``name.mean`` / ``name.max``
        scalars so two runs can be compared metric-by-metric.
        """
        flat: dict[str, float] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                flat[f"{name}.count"] = float(inst.count)
                flat[f"{name}.mean"] = float(inst.mean)
                flat[f"{name}.max"] = float(inst.max if inst.count else 0.0)
            else:
                flat[name] = inst.value
        return flat


# -- process-global registry --------------------------------------------------
#
# The simulator builds one registry per run; library code that runs outside
# any simulation (the numeric engine, the analysis cache) instead reports
# into this process-global registry, which CLI commands snapshot into run
# artifacts.  Hot paths aggregate locally and export once per operation, so
# the global registry costs a handful of attribute updates per
# factorization, not per pivot.

_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry (numeric engine, caches, solves)."""
    return _global_registry


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests / CLI run isolation)."""
    global _global_registry
    _global_registry = MetricsRegistry()
    return _global_registry
