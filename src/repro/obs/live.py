"""Live operational observability primitives.

Everything in :mod:`repro.obs` so far is *run-scoped*: artifacts,
telemetry streams, and history entries describe a run after it exits.  A
long-lived server (:mod:`repro.serve`) needs *live* answers — what is
p99 over the last minute, which worker is backed up, which request was
slow and why — without ever growing memory with uptime.  This module
holds the building blocks the serving layer (and any future daemon)
composes for that:

* :class:`RollingWindow` — a fixed-capacity ring of timestamped samples
  with windowed percentile/rate snapshots.  Appends are O(1), memory is
  bounded by the ring capacity forever.
* :class:`ExemplarRing` — a bounded top-K-by-latency store of slow-event
  exemplars (request id, phase breakdown, ...), the "which request was
  slow and why" answer.
* :func:`sparkline` — a unicode trend strip for terminal dashboards
  (``repro serve-top``).
* :func:`flatten_stats` / :func:`prometheus_text` — turn a nested stats
  dict into Prometheus exposition format so external scrapers can poll
  the server's ``stats`` op with ``format: "text"``.

The cumulative-vs-windowed split: run artifacts and the history trend
gate want *cumulative* statistics (bit-stable for a fixed workload);
operators want *windowed* ones (what is happening now).  A
:class:`RollingWindow` serves both: while fewer samples than
``capacity`` have been observed the full-ring snapshot is exactly the
cumulative distribution, and the timestamped window view is always the
live one.  See docs/OBSERVABILITY.md ("Run-scoped vs live metrics").
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time

import numpy as np

__all__ = [
    "RollingWindow",
    "ExemplarRing",
    "sparkline",
    "flatten_stats",
    "prometheus_text",
]


class RollingWindow:
    """Fixed-capacity ring of ``(timestamp, value)`` samples.

    Thread-safe.  ``append`` overwrites the oldest sample once
    ``capacity`` is reached, so memory is bounded regardless of uptime.
    Two read views:

    * :meth:`snapshot` — percentiles/mean/max over the samples inside a
      trailing time window (plus their arrival rate), i.e. "the last 60
      seconds";
    * :meth:`snapshot` with ``window_s=None`` — the same summary over
      every *retained* sample, which equals the exact cumulative
      distribution while ``count() <= capacity``.

    ``total_count`` / ``total_sum`` / ``total_max`` track the exact
    lifetime aggregates as cheap scalars even after the ring wraps.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._t = np.zeros(self.capacity, dtype=np.float64)
        self._v = np.zeros(self.capacity, dtype=np.float64)
        self._next = 0                      # next write slot
        self._filled = 0                    # samples currently retained
        self.total_count = 0
        self.total_sum = 0.0
        self.total_max = float("-inf")

    def append(self, value: float, t: float | None = None) -> None:
        t = time.monotonic() if t is None else float(t)
        value = float(value)
        with self._lock:
            self._t[self._next] = t
            self._v[self._next] = value
            self._next = (self._next + 1) % self.capacity
            self._filled = min(self._filled + 1, self.capacity)
            self.total_count += 1
            self.total_sum += value
            if value > self.total_max:
                self.total_max = value

    def count(self) -> int:
        """Exact lifetime sample count (survives ring wrap-around)."""
        with self._lock:
            return self.total_count

    def retained(self) -> int:
        """Samples currently held in the ring (<= capacity)."""
        with self._lock:
            return self._filled

    def values(self, window_s: float | None = None,
               now: float | None = None) -> np.ndarray:
        """Retained values, optionally restricted to the last
        ``window_s`` seconds (by sample timestamp)."""
        with self._lock:
            n = self._filled
            t = self._t[:n].copy() if n < self.capacity else self._t.copy()
            v = self._v[:n].copy() if n < self.capacity else self._v.copy()
        if window_s is None or v.size == 0:
            return v
        now = time.monotonic() if now is None else float(now)
        return v[t >= now - float(window_s)]

    def snapshot(self, window_s: float | None = None,
                 now: float | None = None) -> dict:
        """Summary dict over the (windowed) retained samples.

        Keys: ``count`` (samples in view), ``rate_per_s`` (count /
        window; 0 when ``window_s`` is None), ``mean``/``p50``/``p95``/
        ``p99``/``max`` in the sample's own unit, plus the lifetime
        ``total_count``.  An empty view yields zeros, never NaNs, so
        pollers can always render it.
        """
        v = self.values(window_s=window_s, now=now)
        with self._lock:
            total = self.total_count
        if v.size == 0:
            return {"count": 0, "rate_per_s": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
                    "total_count": total}
        rate = (v.size / float(window_s)) if window_s else 0.0
        return {
            "count": int(v.size),
            "rate_per_s": float(rate),
            "mean": float(v.mean()),
            "p50": float(np.percentile(v, 50)),
            "p95": float(np.percentile(v, 95)),
            "p99": float(np.percentile(v, 99)),
            "max": float(v.max()),
            "total_count": total,
        }


class ExemplarRing:
    """Bounded top-K store of slow-event exemplars.

    ``offer(score, record)`` keeps the K records with the highest score
    seen so far (a min-heap, so each offer is O(log K) and rejection of
    a fast event is O(1)).  The serving layer scores by request latency
    and records the request id, pattern, batch width, and per-phase
    breakdown — the trace of "why was this slow" with strictly bounded
    memory.
    """

    def __init__(self, k: int = 16) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self.offered = 0

    def offer(self, score: float, record: dict) -> bool:
        """Consider one event; returns True if it was retained."""
        score = float(score)
        with self._lock:
            self.offered += 1
            if len(self._heap) < self.k:
                heapq.heappush(self._heap,
                               (score, next(self._seq), record))
                return True
            if score <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap,
                              (score, next(self._seq), record))
            return True

    def threshold(self) -> float:
        """Smallest retained score (-inf while the ring is not full)."""
        with self._lock:
            if len(self._heap) < self.k:
                return float("-inf")
            return self._heap[0][0]

    def snapshot(self) -> list[dict]:
        """Retained records, slowest first, each with its ``score``."""
        with self._lock:
            items = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [{"score": score, **record} for score, _, record in items]


#: Eight-level bar glyphs, lowest to highest.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int | None = None,
              lo: float | None = None, hi: float | None = None) -> str:
    """Render a numeric series as a unicode sparkline.

    ``width`` keeps the *last* ``width`` points; ``lo``/``hi`` pin the
    scale (otherwise the series' own min/max).  Non-finite values render
    as spaces.  A flat series renders at the lowest glyph.
    """
    vals = [float(v) for v in values]
    if width is not None and width > 0:
        vals = vals[-width:]
    if not vals:
        return ""
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return " " * len(vals)
    lo = min(finite) if lo is None else float(lo)
    hi = max(finite) if hi is None else float(hi)
    span = hi - lo
    out = []
    for v in vals:
        if not math.isfinite(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_GLYPHS[0])
            continue
        idx = int((v - lo) / span * (len(_SPARK_GLYPHS) - 1) + 0.5)
        out.append(_SPARK_GLYPHS[max(0, min(idx, len(_SPARK_GLYPHS) - 1))])
    return "".join(out)


def flatten_stats(stats: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a nested stats dict into dotted-name -> scalar.

    Non-numeric leaves (strings, lists — e.g. exemplar records) are
    skipped; booleans become 0/1.  This is the bridge between a server's
    ``stats()`` dict and the flat metric space Prometheus (and the
    registry) wants.
    """
    flat: dict[str, float] = {}
    for key, value in stats.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_stats(value, name))
        elif isinstance(value, bool):
            flat[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)) and math.isfinite(value):
            flat[name] = float(value)
    return flat


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def prometheus_text(metrics: dict[str, float],
                    prefix: str = "") -> str:
    """Render flat name -> value metrics as Prometheus exposition text.

    One ``# TYPE <name> gauge`` header and one sample line per metric,
    names sanitized to ``[a-zA-Z0-9_]`` with an optional ``prefix``
    prepended.  The output ends with a newline (scrapers require it).
    """
    lines = []
    for name in sorted(metrics):
        prom = _prom_name(f"{prefix}{name}")
        lines.append(f"# TYPE {prom} gauge")
        value = metrics[name]
        lines.append(f"{prom} {value:.10g}")
    return "\n".join(lines) + "\n" if lines else ""
