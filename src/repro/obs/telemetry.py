"""Run-scoped runtime telemetry: cross-process event streams + collector.

The in-process tracer and metrics registry (PRs 1/4) explain *simulated*
cycles; this module covers *wall-clock* time across *processes* — the
regime of the solve server and process-parallel scheduling work.  It has
three parts:

**Run context** (:class:`RunContext`): a run id plus the parent span id
of the command that started the run.  :func:`start` opens telemetry in
the current process and publishes the context through environment
variables (``REPRO_TELEMETRY_DIR`` / ``_RUN`` / ``_PARENT``), so worker
processes — however they are spawned — can join the run by calling
:func:`init_worker` from a ``multiprocessing`` pool initializer.  Every
event a worker emits carries the parent run id.

**Per-process sink** (:class:`TelemetrySink`): one line-buffered JSONL
file per process (``<run_id>.<pid>.jsonl``), so a crashed worker loses at
most its final partial line.  Event types: ``meta`` (process start: pid,
role, wall/perf clock pair for alignment), ``span`` (mirrored from the
global tracer and from :func:`task_span`), ``counters`` (a registry
snapshot, dumped at shutdown), ``log`` (records from the ``repro``
logger), and ``hb`` (periodic heartbeats with RSS).

**Collector** (:func:`collect` → :class:`Timeline`): merges the
per-process streams of one run into a single clock-aligned timeline.
Each stream's ``meta`` event pairs ``time.time()`` with
``time.perf_counter()`` at sink-open; span timestamps are perf-counter
based and are rebased onto the shared wall clock, so spans from
different processes line up on one axis.  The timeline exports to the
Chrome trace-event format (one Perfetto process lane per OS process, one
thread lane per worker thread) and to the HTML report
(:func:`repro.obs.html.write_timeline_report`), and computes per-phase
wall-clock latency percentiles (p50/p95/p99) that feed the
``latency.*`` watched metrics.

Everything here is disabled by default.  While telemetry is off,
:func:`task_span` returns a shared no-op context manager and the tracer
carries no listener — the instrumented code paths cost one attribute
check.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, global_registry
from repro.obs.spans import Span, enable_tracing, get_tracer

logger = logging.getLogger(__name__)

#: Environment handshake: set by :func:`start` in the main process, read
#: by :func:`init_worker` in children (works for fork *and* spawn).
ENV_DIR = "REPRO_TELEMETRY_DIR"
ENV_RUN = "REPRO_TELEMETRY_RUN"
ENV_PARENT = "REPRO_TELEMETRY_PARENT"

#: Default heartbeat period (seconds); tests pass much smaller values.
DEFAULT_HEARTBEAT_S = 5.0


def new_run_id() -> str:
    """Unique, sortable run id: ``run-YYYYmmdd-HHMMSS-xxxxxx``."""
    return (f"run-{time.strftime('%Y%m%d-%H%M%S')}-"
            f"{uuid.uuid4().hex[:6]}")


@dataclass(frozen=True)
class RunContext:
    """Identity of one telemetry run, as seen by one process."""

    run_id: str
    telemetry_dir: str
    parent_span_id: str | None = None
    role: str = "main"            # "main" | "worker"

    def env(self) -> dict[str, str]:
        """The environment-variable form of this context."""
        env = {ENV_DIR: self.telemetry_dir, ENV_RUN: self.run_id}
        if self.parent_span_id:
            env[ENV_PARENT] = self.parent_span_id
        return env


def _rss_bytes() -> int | None:
    try:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS.
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) * (1 if peak > 1 << 32 else 1024)
    except Exception:
        return None


class TelemetrySink:
    """Crash-safe per-process JSONL event writer.

    The file is opened in append mode with line buffering and every
    event is one ``json.dumps`` line, so concurrent threads interleave
    whole lines (serialized by a lock) and an abrupt process death
    loses at most the final partial line.
    """

    def __init__(self, context: RunContext) -> None:
        self.context = context
        self.pid = os.getpid()
        root = Path(context.telemetry_dir)
        root.mkdir(parents=True, exist_ok=True)
        self.path = root / f"{context.run_id}.{self.pid}.jsonl"
        self._lock = threading.Lock()
        self._f = open(self.path, "a", buffering=1)
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.emit({
            "t": "meta", "run": context.run_id, "pid": self.pid,
            "tid": threading.get_ident(), "role": context.role,
            "parent": context.parent_span_id,
            "wall": self.wall0, "perf": self.perf0,
        })

    def emit(self, event: dict) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            if not self._f.closed:
                self._f.write(line + "\n")

    # -- typed events --------------------------------------------------------

    def span(self, span: Span, tid: int | None = None,
             attrs: dict | None = None) -> None:
        event = {
            "t": "span", "run": self.context.run_id, "pid": self.pid,
            "tid": tid if tid is not None else threading.get_ident(),
            "name": span.name, "start": span.start_s,
            "dur": span.duration_s, "depth": span.depth,
            "parent": span.parent,
        }
        if span.peak_mem_bytes is not None:
            event["peak_mem_bytes"] = span.peak_mem_bytes
        if attrs:
            event["attrs"] = attrs
        self.emit(event)

    def counters(self, registry: MetricsRegistry) -> None:
        """Dump a registry snapshot (counters/gauges split by kind, so
        the collector knows to sum the former and keep the latter)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        for name in registry.names():
            inst = registry.get(name)
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
        self.emit({"t": "counters", "run": self.context.run_id,
                   "pid": self.pid, "counters": counters,
                   "gauges": gauges})

    def log(self, record: logging.LogRecord) -> None:
        self.emit({
            "t": "log", "run": self.context.run_id, "pid": self.pid,
            "wall": record.created, "level": record.levelname,
            "logger": record.name, "msg": record.getMessage(),
        })

    def attribution(self, attr: dict) -> None:
        """Record a process-local attribution view (e.g. the numeric
        engine's factorization summary).  Worker processes publish their
        attribution through this channel instead of mutating their own
        copy of the parent's module globals — the collector hands every
        process's view back to the parent for merging."""
        self.emit({"t": "attr", "run": self.context.run_id,
                   "pid": self.pid, "wall": time.time(), "attr": attr})

    def heartbeat(self) -> None:
        event = {"t": "hb", "run": self.context.run_id, "pid": self.pid,
                 "wall": time.time()}
        rss = _rss_bytes()
        if rss is not None:
            event["rss_bytes"] = rss
        self.emit(event)

    def close(self) -> None:
        with self._lock:
            if not self._f.closed:
                self._f.close()


class _SinkLogHandler(logging.Handler):
    def __init__(self, sink: TelemetrySink) -> None:
        super().__init__(level=logging.INFO)
        self._sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._sink.log(record)
        except Exception:      # never let telemetry break the pipeline
            pass


class _NullTaskSpan:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_TASK_SPAN = _NullTaskSpan()


class _TaskSpan:
    """Direct-to-sink span that bypasses the tracer's in-memory list —
    for high-volume worker-side instrumentation (per-supernode tasks,
    per-case verify jobs) that must not bloat run artifacts."""

    __slots__ = ("_name", "_attrs", "_start")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        sink = _STATE.sink
        if sink is not None:
            duration = time.perf_counter() - self._start
            sink.span(
                Span(name=self._name, start_s=self._start,
                     duration_s=duration),
                attrs=self._attrs or None,
            )
        return False


class _State:
    """Module-level telemetry state for this process."""

    def __init__(self) -> None:
        self.sink: TelemetrySink | None = None
        self.context: RunContext | None = None
        self.log_handler: _SinkLogHandler | None = None
        self.heartbeat_stop: threading.Event | None = None
        self.heartbeat_thread: threading.Thread | None = None
        self.owns_env = False


_STATE = _State()


def active() -> bool:
    """True when this process has an open telemetry sink."""
    return _STATE.sink is not None


def current_context() -> RunContext | None:
    return _STATE.context


def current_sink() -> TelemetrySink | None:
    return _STATE.sink


def _on_tracer_span(span: Span) -> None:
    sink = _STATE.sink
    if sink is not None:
        sink.span(span)


def start(telemetry_dir: str | Path, run_id: str | None = None,
          parent_span_id: str | None = None, role: str = "main",
          heartbeat_s: float | None = DEFAULT_HEARTBEAT_S) -> RunContext:
    """Open telemetry for this process; returns the run context.

    In the main role this also publishes the context into ``os.environ``
    so any child process (fork or spawn) can join via
    :func:`init_worker`, and enables the global tracer with a listener
    that mirrors every completed span into the sink.

    Idempotent per process: a second ``start`` while active returns the
    existing context.
    """
    if _STATE.sink is not None:
        return _STATE.context
    context = RunContext(
        run_id=run_id or new_run_id(),
        telemetry_dir=str(telemetry_dir),
        parent_span_id=parent_span_id,
        role=role,
    )
    sink = TelemetrySink(context)
    _STATE.sink = sink
    _STATE.context = context
    if role == "main":
        os.environ.update(context.env())
        _STATE.owns_env = True
    enable_tracing()
    get_tracer().add_listener(_on_tracer_span)
    handler = _SinkLogHandler(sink)
    logging.getLogger("repro").addHandler(handler)
    _STATE.log_handler = handler
    if heartbeat_s is not None and heartbeat_s > 0:
        stop_event = threading.Event()

        def beat() -> None:
            while not stop_event.wait(heartbeat_s):
                sink.heartbeat()

        thread = threading.Thread(target=beat, name="repro-telemetry-hb",
                                  daemon=True)
        thread.start()
        _STATE.heartbeat_stop = stop_event
        _STATE.heartbeat_thread = thread
    logger.info("telemetry started: run %s (%s, pid %d)",
                context.run_id, role, os.getpid())
    return context


def stop(dump_registry: bool = True) -> None:
    """Close telemetry for this process (no-op when inactive).

    Dumps a final heartbeat plus a global-registry snapshot (so worker
    counters survive into the collected timeline), detaches the tracer
    listener and log handler, and clears the environment handshake when
    this process published it.
    """
    sink = _STATE.sink
    if sink is None:
        return
    if _STATE.heartbeat_stop is not None:
        _STATE.heartbeat_stop.set()
        _STATE.heartbeat_thread.join(timeout=1.0)
        _STATE.heartbeat_stop = None
        _STATE.heartbeat_thread = None
    get_tracer().remove_listener(_on_tracer_span)
    if _STATE.log_handler is not None:
        logging.getLogger("repro").removeHandler(_STATE.log_handler)
        _STATE.log_handler = None
    sink.heartbeat()
    if dump_registry:
        sink.counters(global_registry())
    sink.close()
    if _STATE.owns_env:
        for key in (ENV_DIR, ENV_RUN, ENV_PARENT):
            os.environ.pop(key, None)
        _STATE.owns_env = False
    _STATE.sink = None
    _STATE.context = None


def init_worker() -> RunContext | None:
    """Join the run published in the environment (pool initializer).

    Call as ``multiprocessing.Pool(n, initializer=telemetry.init_worker)``
    — under *fork* the child inherits the parent's module state, so any
    inherited sink reference is discarded first and a fresh per-pid sink
    is opened; under *spawn* the environment variables carry the
    context.  Returns ``None`` (and stays inactive) when no run is
    published.
    """
    dir_ = os.environ.get(ENV_DIR)
    run = os.environ.get(ENV_RUN)
    if not dir_ or not run:
        return None
    # Forked children inherit _STATE pointing at the parent's sink (and
    # its fd); drop the reference without closing the shared file.
    _STATE.sink = None
    _STATE.context = None
    _STATE.log_handler = None
    _STATE.heartbeat_stop = None
    _STATE.heartbeat_thread = None
    _STATE.owns_env = False
    get_tracer().remove_listener(_on_tracer_span)
    get_tracer().reset()
    context = start(
        dir_, run_id=run, parent_span_id=os.environ.get(ENV_PARENT),
        role="worker",
    )
    import atexit

    atexit.register(stop)
    return context


def task_span(name: str, **attrs):
    """Span written straight to the sink — no-op while telemetry is off.

    The hot-path variant of :func:`repro.obs.span` for worker-side
    instrumentation: events go to the JSONL stream only, never into the
    tracer's in-memory span list (and therefore never into run
    artifacts), so per-supernode / per-case volume is bounded by disk,
    not memory.
    """
    if _STATE.sink is None:
        return _NULL_TASK_SPAN
    return _TaskSpan(name, attrs)


# -- collector ----------------------------------------------------------------


@dataclass
class ProcessStream:
    """All events of one process in one run, clock-aligned."""

    pid: int
    role: str
    run_id: str
    parent_span_id: str | None
    path: str
    wall0: float = 0.0
    perf0: float = 0.0
    main_tid: int = 0
    spans: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    logs: list[dict] = field(default_factory=list)
    heartbeats: list[dict] = field(default_factory=list)
    attributions: list[dict] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.role} pid {self.pid}"

    def wall_time(self, perf_s: float) -> float:
        """Rebase a perf_counter timestamp onto the shared wall clock."""
        return self.wall0 + (perf_s - self.perf0)

    @property
    def last_heartbeat_wall(self) -> float | None:
        if not self.heartbeats:
            return None
        return max(h["wall"] for h in self.heartbeats)


@dataclass
class Timeline:
    """The merged, clock-aligned view of one run across processes."""

    run_id: str
    telemetry_dir: str
    streams: list[ProcessStream] = field(default_factory=list)

    @property
    def t0(self) -> float:
        """Wall-clock origin: the earliest sink-open across processes."""
        return min((s.wall0 for s in self.streams), default=0.0)

    def spans(self) -> list[dict]:
        """Every span of every process, with ``pid``/``tid`` and a
        run-relative ``wall_start_s``, ordered by start time."""
        out = []
        t0 = self.t0
        for stream in self.streams:
            for s in stream.spans:
                rec = dict(s)
                rec["pid"] = stream.pid
                rec["role"] = stream.role
                rec["wall_start_s"] = stream.wall_time(s["start"]) - t0
                out.append(rec)
        out.sort(key=lambda r: r["wall_start_s"])
        return out

    def lanes(self) -> list[tuple[int, int]]:
        """Distinct (pid, tid) pairs in first-appearance order."""
        seen: dict[tuple[int, int], None] = {}
        for s in self.spans():
            seen.setdefault((s["pid"], s.get("tid", 0)), None)
        return list(seen)

    def durations_by_phase(self) -> dict[str, list[float]]:
        """Span name -> list of wall-clock durations (seconds)."""
        by_name: dict[str, list[float]] = {}
        for stream in self.streams:
            for s in stream.spans:
                by_name.setdefault(s["name"], []).append(s["dur"])
        return by_name

    def latency_summary(self) -> dict[str, dict[str, float]]:
        return latency_percentiles(self.durations_by_phase())

    def merged_counters(self) -> dict[str, float]:
        """Counters summed across processes; gauges last-writer-wins."""
        merged: dict[str, float] = {}
        for stream in self.streams:
            for name, value in stream.counters.items():
                merged[name] = merged.get(name, 0.0) + value
        for stream in self.streams:
            for name, value in stream.gauges.items():
                merged[name] = value
        return merged

    def attributions(self) -> list[dict]:
        """Every attribution view emitted in this run, tagged with the
        emitting process's pid/role, main process first."""
        out = []
        for stream in self.streams:
            for attr in stream.attributions:
                out.append({"pid": stream.pid, "role": stream.role,
                            **attr})
        return out

    def merged_numeric_attribution(self) -> dict | None:
        """Cross-process merge of the numeric-engine attribution views.

        Worker processes (the procs scheduler, ``solve --procs`` load
        generators) publish their per-process view through the sink
        rather than clobbering the parent's module global; this folds
        them back together: seconds/busy-seconds/task totals summed,
        per-process views kept for drill-down.  ``None`` when no process
        emitted one.
        """
        views = self.attributions()
        if not views:
            return None
        merged = {
            "processes": views,
            "n_processes": len({v["pid"] for v in views}),
            "seconds": sum(v.get("seconds", 0.0) for v in views),
            "busy_seconds": sum(v.get("busy_seconds", 0.0)
                                for v in views),
            "parallel_tasks": int(sum(v.get("parallel_tasks", 0)
                                      for v in views)),
            "factorizations": len(views),
        }
        return merged

    def logs(self) -> list[dict]:
        out = []
        for stream in self.streams:
            for rec in stream.logs:
                entry = dict(rec)
                entry["pid"] = stream.pid
                out.append(entry)
        out.sort(key=lambda r: r.get("wall", 0.0))
        return out

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "telemetry_dir": self.telemetry_dir,
            "processes": [
                {"pid": s.pid, "role": s.role, "path": s.path,
                 "parent_span_id": s.parent_span_id,
                 "wall0": s.wall0, "n_spans": len(s.spans),
                 "n_heartbeats": len(s.heartbeats),
                 "last_heartbeat_wall": s.last_heartbeat_wall}
                for s in self.streams
            ],
            "latency_ms": self.latency_summary(),
            "counters": self.merged_counters(),
            "n_spans": sum(len(s.spans) for s in self.streams),
        }


def latency_percentiles(durations_by_name: dict[str, list[float]]
                        ) -> dict[str, dict[str, float]]:
    """Per-phase wall-clock latency summary in milliseconds."""
    out: dict[str, dict[str, float]] = {}
    for name, durations in sorted(durations_by_name.items()):
        if not durations:
            continue
        ms = np.asarray(durations) * 1e3
        out[name] = {
            "count": int(ms.size),
            "mean_ms": float(ms.mean()),
            "p50_ms": float(np.percentile(ms, 50)),
            "p95_ms": float(np.percentile(ms, 95)),
            "p99_ms": float(np.percentile(ms, 99)),
            "max_ms": float(ms.max()),
        }
    return out


def export_latency_metrics(summary: dict[str, dict[str, float]],
                           registry: MetricsRegistry | None = None,
                           phases: tuple[str, ...] | None = None) -> None:
    """Export per-phase percentiles as ``latency.<phase>.pXX_ms`` gauges
    (the watched wall-clock metrics of the trend gate)."""
    registry = registry if registry is not None else global_registry()
    for name, stats in summary.items():
        if phases is not None and name not in phases:
            continue
        for stat in ("p50_ms", "p95_ms", "p99_ms"):
            registry.gauge(f"latency.{name}.{stat}").set(stats[stat])


def list_runs(telemetry_dir: str | Path) -> list[str]:
    """Run ids with at least one stream in ``telemetry_dir``, oldest
    first (ids embed their start timestamp, so sorting is chronology)."""
    root = Path(telemetry_dir)
    if not root.is_dir():
        return []
    runs = {p.name.rsplit(".", 2)[0] for p in root.glob("*.jsonl")
            if len(p.name.split(".")) >= 3}
    return sorted(runs)


def collect(telemetry_dir: str | Path,
            run_id: str | None = None) -> Timeline:
    """Merge the per-process JSONL streams of one run into a timeline.

    Args:
        telemetry_dir: directory the sinks wrote into.
        run_id: which run to collect; defaults to the latest one.

    Truncated trailing lines (a crashed writer) are skipped, not fatal.
    """
    root = Path(telemetry_dir)
    if run_id is None:
        runs = list_runs(root)
        if not runs:
            raise FileNotFoundError(
                f"no telemetry streams under {root}")
        run_id = runs[-1]
    timeline = Timeline(run_id=run_id, telemetry_dir=str(root))
    for path in sorted(root.glob(f"{run_id}.*.jsonl")):
        stream: ProcessStream | None = None
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue       # crash-truncated final line
                kind = event.get("t")
                if kind == "meta":
                    stream = ProcessStream(
                        pid=event["pid"], role=event.get("role", "main"),
                        run_id=event["run"],
                        parent_span_id=event.get("parent"),
                        path=str(path), wall0=event["wall"],
                        perf0=event["perf"],
                        main_tid=event.get("tid", 0),
                    )
                elif stream is None:
                    continue       # never saw the meta line
                elif kind == "span":
                    stream.spans.append(event)
                elif kind == "counters":
                    for k, v in event.get("counters", {}).items():
                        stream.counters[k] = (
                            stream.counters.get(k, 0.0) + v)
                    stream.gauges.update(event.get("gauges", {}))
                elif kind == "log":
                    stream.logs.append(event)
                elif kind == "hb":
                    stream.heartbeats.append(event)
                elif kind == "attr":
                    stream.attributions.append(event.get("attr", {}))
        if stream is not None:
            timeline.streams.append(stream)
    if not timeline.streams:
        raise FileNotFoundError(
            f"no telemetry streams for run {run_id!r} under {root}")
    timeline.streams.sort(key=lambda s: (s.role != "main", s.wall0,
                                         s.pid))
    return timeline


def timeline_chrome_trace(timeline: Timeline, path: str | Path) -> None:
    """Export a merged timeline as Chrome trace-event JSON.

    One trace process per OS process (named with role + pid + run id),
    one trace thread per worker thread, all on the shared wall clock in
    microseconds since the run started.  Heartbeats and log records
    become instant events.
    """
    t0 = timeline.t0
    records: list[dict] = []
    tid_index: dict[tuple[int, int], int] = {}
    for stream in timeline.streams:
        records.append({
            "name": "process_name", "ph": "M", "pid": stream.pid,
            "args": {"name": f"{stream.label} [{timeline.run_id}]"},
        })
        tid_index[(stream.pid, stream.main_tid)] = 0
        records.append({
            "name": "thread_name", "ph": "M", "pid": stream.pid,
            "tid": 0, "args": {"name": "main thread"},
        })
        for s in stream.spans:
            key = (stream.pid, s.get("tid", 0))
            if key not in tid_index:
                lane = len([k for k in tid_index if k[0] == stream.pid])
                tid_index[key] = lane
                records.append({
                    "name": "thread_name", "ph": "M", "pid": stream.pid,
                    "tid": lane, "args": {"name": f"worker-{lane}"},
                })
            records.append({
                "name": s["name"],
                "cat": "telemetry",
                "ph": "X",
                "ts": (stream.wall_time(s["start"]) - t0) * 1e6,
                "dur": max(s["dur"] * 1e6, 0.001),
                "pid": stream.pid,
                "tid": tid_index[key],
                "args": {
                    "run": stream.run_id,
                    "parent": s.get("parent"),
                    **(s.get("attrs") or {}),
                },
            })
        for hb in stream.heartbeats:
            records.append({
                "name": "heartbeat", "cat": "telemetry", "ph": "i",
                "s": "p", "ts": (hb["wall"] - t0) * 1e6,
                "pid": stream.pid, "tid": 0,
                "args": {"rss_bytes": hb.get("rss_bytes")},
            })
        for rec in stream.logs:
            records.append({
                "name": f"log:{rec.get('level', '?')}",
                "cat": "telemetry", "ph": "i", "s": "t",
                "ts": (rec.get("wall", t0) - t0) * 1e6,
                "pid": stream.pid, "tid": 0,
                "args": {"msg": rec.get("msg", "")},
            })
    payload = {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro telemetry",
                      "run_id": timeline.run_id},
    }
    with open(path, "w") as f:
        json.dump(payload, f)
