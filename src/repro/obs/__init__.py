"""repro.obs — the unified instrumentation layer.

Dependency-free observability primitives used across the whole stack:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and log-scale histograms keyed by hierarchical name
  (``sim.cache.hits``, ``noc.port.stall_cycles``, ``hbm.chan3.bytes``);
* :mod:`repro.obs.spans` — a span tracer (``with span("symbolic.etree")``)
  with wall-clock and optional :mod:`tracemalloc` peak-memory capture,
  threaded through ordering → symbolic → planning → simulation → solve →
  baselines;
* :mod:`repro.obs.artifact` — versioned JSON run artifacts
  (config + report + metrics + spans) with diffing and a regression gate
  (``repro report --diff``);
* :mod:`repro.obs.log` — stdlib-logging setup behind the CLI's
  ``-v`` / ``--log-level`` flags.

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from repro.obs.artifact import (
    SCHEMA_VERSION,
    WATCHED_METRICS,
    DiffResult,
    MetricDelta,
    RunArtifact,
    diff_artifacts,
    render_artifact,
    render_diff,
)
from repro.obs.log import setup_logging, verbosity_to_level
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.spans import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "reset_global_registry",
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "RunArtifact",
    "MetricDelta",
    "DiffResult",
    "diff_artifacts",
    "render_artifact",
    "render_diff",
    "SCHEMA_VERSION",
    "WATCHED_METRICS",
    "setup_logging",
    "verbosity_to_level",
]
