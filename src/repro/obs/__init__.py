"""repro.obs — the unified instrumentation layer.

Dependency-free observability primitives used across the whole stack:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and log-scale histograms keyed by hierarchical name
  (``sim.cache.hits``, ``noc.port.stall_cycles``, ``hbm.chan3.bytes``);
* :mod:`repro.obs.spans` — a span tracer (``with span("symbolic.etree")``)
  with wall-clock and optional :mod:`tracemalloc` peak-memory capture,
  threaded through ordering → symbolic → planning → simulation → solve →
  baselines;
* :mod:`repro.obs.artifact` — versioned JSON run artifacts
  (config + report + metrics + spans + attribution) with diffing and a
  regression gate (``repro report --diff``);
* :mod:`repro.obs.attribution` — cycle accounting (per-PE bucket
  decomposition of ``sim.cycles`` with what-if estimates) and
  critical-path extraction over the executed trace;
* :mod:`repro.obs.history` — append-only artifact history store with
  trend-based regression checking (``repro history add/list/trend/check``);
* :mod:`repro.obs.html` — self-contained HTML report
  (``repro report --html``);
* :mod:`repro.obs.telemetry` — run-scoped runtime telemetry: a run
  context propagated to ``multiprocessing`` workers via an
  env/initializer handshake, crash-safe per-process JSONL event sinks
  (spans, counters, logs, heartbeats), and a collector merging the
  streams into one clock-aligned :class:`Timeline` with wall-clock
  latency percentiles (``repro <cmd> --telemetry-dir`` /
  ``repro telemetry collect``);
* :mod:`repro.obs.profile` — opt-in wall-clock profiling (cProfile +
  a sampling signal profiler) with top-function tables and
  self-contained SVG flamegraphs (``--profile``);
* :mod:`repro.obs.log` — stdlib-logging setup behind the CLI's
  ``-v`` / ``--log-level`` flags;
* :mod:`repro.obs.live` — *live* (windowed, memory-bounded) primitives
  for long-lived processes: rolling-window percentile rings, top-K
  slow-event exemplars, sparklines, and Prometheus text rendering —
  the building blocks of the serve layer's ``stats``/``health`` ops
  and ``repro serve-top``.

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from repro.obs.artifact import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    WATCHED_METRICS,
    DiffResult,
    MetricDelta,
    RunArtifact,
    diff_artifacts,
    render_artifact,
    render_diff,
)
from repro.obs.attribution import (
    BUCKETS,
    CriticalPath,
    CycleAttribution,
    attribute_cycles,
    critical_path,
)
from repro.obs.history import (
    HistoryStore,
    TrendReport,
    check_trend,
    render_history,
    render_trend_series,
    run_key,
)
from repro.obs.html import (
    render_html_report,
    render_timeline_html,
    write_html_report,
    write_timeline_report,
)
from repro.obs.live import (
    ExemplarRing,
    RollingWindow,
    flatten_stats,
    prometheus_text,
    sparkline,
)
from repro.obs.log import setup_logging, verbosity_to_level
from repro.obs.profile import Profiler, ProfileResult, flamegraph_svg
from repro.obs.telemetry import (
    RunContext,
    TelemetrySink,
    Timeline,
    collect,
    latency_percentiles,
    task_span,
    timeline_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.spans import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "reset_global_registry",
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "RunArtifact",
    "MetricDelta",
    "DiffResult",
    "diff_artifacts",
    "render_artifact",
    "render_diff",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "WATCHED_METRICS",
    "BUCKETS",
    "CycleAttribution",
    "CriticalPath",
    "attribute_cycles",
    "critical_path",
    "HistoryStore",
    "TrendReport",
    "check_trend",
    "run_key",
    "render_history",
    "render_trend_series",
    "render_html_report",
    "write_html_report",
    "render_timeline_html",
    "write_timeline_report",
    "RunContext",
    "TelemetrySink",
    "Timeline",
    "collect",
    "latency_percentiles",
    "task_span",
    "timeline_chrome_trace",
    "Profiler",
    "ProfileResult",
    "flamegraph_svg",
    "setup_logging",
    "verbosity_to_level",
    "RollingWindow",
    "ExemplarRing",
    "sparkline",
    "flatten_stats",
    "prometheus_text",
]
