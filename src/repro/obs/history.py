"""Artifact history store: append-only runs + trend-based regression gate.

A :class:`HistoryStore` is a directory of :class:`~repro.obs.artifact
.RunArtifact` JSON files plus an append-only ``index.jsonl`` — one line
per recorded run with the fields needed to query without opening every
artifact (key, created_at, watched-metric values).  Runs are grouped by
*key*: ``matrix|kind|config-digest``, so different matrices or hardware
configs never contaminate each other's trends.

Regression checking is *trend-based*: instead of a single pairwise diff
(noisy — one lucky baseline hides a drift, one unlucky one cries wolf),
:func:`check_trend` compares a new artifact's watched metrics against the
**median of the last N recorded runs with the same key**, flagging any
metric that moved in its bad direction by more than a relative tolerance.
The CLI surface::

    repro history add    run.json --dir .history   # record a run
    repro history list   --dir .history            # what is recorded
    repro history trend  --dir .history --metric report.cycles
    repro history check  run.json --dir .history   # exit 1 on regression

``history check`` also *records* the artifact after judging it (pass
``--no-add`` to only judge), so a CI job that runs it on every build
maintains the rolling window automatically.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.artifact import WATCHED_METRICS, RunArtifact

logger = logging.getLogger(__name__)

INDEX_NAME = "index.jsonl"

#: Autotuner experience database: one JSON line per measured trial (see
#: :mod:`repro.ordering.autotune`), keyed by matrix-family fingerprint.
TRIALS_NAME = "trials.jsonl"

#: Default rolling-window length for trend statistics.
DEFAULT_WINDOW = 8

#: Default relative tolerance before a bad-direction move counts as a
#: regression (cycle counts are deterministic; wall-clock metrics are
#: not, hence the generous default).
DEFAULT_TOLERANCE = 0.05


def config_digest(config: dict) -> str:
    """Short stable digest of a config dict (key component of run keys)."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode()).hexdigest()[:10]


def run_key(artifact: RunArtifact) -> str:
    """Trend-grouping key: same matrix + kind + hardware config."""
    return f"{artifact.matrix}|{artifact.kind}|" \
        f"{config_digest(artifact.config)}"


@dataclass
class HistoryEntry:
    """One recorded run, as indexed in ``index.jsonl``."""

    key: str
    path: str                     # artifact file, relative to the store dir
    created_at: str
    recorded_at: str
    metrics: dict[str, float]     # watched metrics only

    def to_dict(self) -> dict:
        return {
            "key": self.key, "path": self.path,
            "created_at": self.created_at,
            "recorded_at": self.recorded_at, "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryEntry":
        return cls(
            key=data["key"], path=data["path"],
            created_at=data.get("created_at", ""),
            recorded_at=data.get("recorded_at", ""),
            metrics={k: float(v)
                     for k, v in data.get("metrics", {}).items()},
        )


class HistoryStore:
    """Append-only artifact directory with a JSONL index."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    # -- recording ----------------------------------------------------------

    def add(self, artifact: RunArtifact,
            source: str | Path | None = None) -> HistoryEntry:
        """Record one artifact: copy its JSON into the store and append
        an index line.  Returns the new entry."""
        self.root.mkdir(parents=True, exist_ok=True)
        key = run_key(artifact)
        seq = sum(1 for _ in self.entries())
        digest = hashlib.sha1(
            f"{key}|{artifact.created_at}|{seq}".encode()
        ).hexdigest()[:8]
        name = f"run-{seq:05d}-{digest}.json"
        artifact.save(self.root / name)
        entry = HistoryEntry(
            key=key,
            path=name,
            created_at=artifact.created_at,
            recorded_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
            metrics={
                k: v for k, v in artifact.flat_metrics().items()
                if k in WATCHED_METRICS
            },
        )
        with open(self.index_path, "a") as f:
            f.write(json.dumps(entry.to_dict()) + "\n")
        return entry

    # -- autotuner trials -----------------------------------------------------

    @property
    def trials_path(self) -> Path:
        return self.root / TRIALS_NAME

    def add_trial(self, record: dict) -> None:
        """Append one autotuner trial record (a JSON-serializable dict
        carrying at least a ``fingerprint`` key) to ``trials.jsonl``."""
        if "fingerprint" not in record:
            raise ValueError("trial record must carry a 'fingerprint'")
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.trials_path, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    def trials(self, fingerprint: str | None = None) -> list[dict]:
        """Recorded trial records, in recording order, optionally
        filtered to one matrix-family fingerprint.

        Corrupted lines (truncated writes, merge damage) are skipped
        with a warning rather than poisoning the whole store — the
        autotuner must keep working on a partially damaged experience
        database.
        """
        if not self.trials_path.exists():
            return []
        out: list[dict] = []
        with open(self.trials_path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    logger.warning(
                        "skipping corrupted trial line %s:%d (%s)",
                        self.trials_path, lineno, exc)
                    continue
                if not isinstance(record, dict) or "fingerprint" not in record:
                    logger.warning(
                        "skipping malformed trial line %s:%d "
                        "(not a fingerprinted record)",
                        self.trials_path, lineno)
                    continue
                if fingerprint is None or record["fingerprint"] == fingerprint:
                    out.append(record)
        return out

    # -- querying -----------------------------------------------------------

    def entries(self, key: str | None = None) -> list[HistoryEntry]:
        """All recorded entries, in recording order (optionally filtered
        to one run key)."""
        if not self.index_path.exists():
            return []
        out: list[HistoryEntry] = []
        with open(self.index_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                entry = HistoryEntry.from_dict(json.loads(line))
                if key is None or entry.key == key:
                    out.append(entry)
        return out

    def keys(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self.entries():
            seen.setdefault(entry.key, None)
        return list(seen)

    def load_artifact(self, entry: HistoryEntry) -> RunArtifact:
        return RunArtifact.load(self.root / entry.path)

    def series(self, metric: str,
               key: str | None = None) -> list[tuple[str, float]]:
        """(recorded_at, value) series of one watched metric."""
        return [
            (e.recorded_at, e.metrics[metric])
            for e in self.entries(key)
            if metric in e.metrics
        ]


# -- trend check ---------------------------------------------------------------


@dataclass
class TrendVerdict:
    """One watched metric judged against its rolling-window median."""

    name: str
    direction: str          # "lower" | "higher"
    value: float
    median: float
    n_samples: int
    regressed: bool

    @property
    def rel_change(self) -> float:
        denom = abs(self.median)
        if denom == 0.0:
            return 0.0 if self.value == self.median else float("inf")
        return (self.value - self.median) / denom


@dataclass
class TrendReport:
    """Outcome of checking one artifact against its history."""

    key: str
    window: int
    tolerance: float
    n_history: int
    verdicts: list[TrendVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendVerdict]:
        return [v for v in self.verdicts if v.regressed]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        if self.n_history == 0:
            return (f"no history for key {self.key!r} — nothing to "
                    "check against (recording as first sample)")
        lines = [
            f"trend check vs median of last {self.n_history} run(s) "
            f"(window {self.window}, tolerance "
            f"{100 * self.tolerance:.0f}%)",
            f"{'metric':<36}{'median':>14}{'new':>14}{'change':>10}",
            "-" * 74,
        ]
        for v in self.verdicts:
            change = v.rel_change
            change_s = "   inf" if change == float("inf") \
                else f"{100 * change:>+8.1f}%"
            mark = "  << REGRESSION" if v.regressed else ""
            lines.append(f"{v.name:<36}{v.median:>14.6g}"
                         f"{v.value:>14.6g}{change_s:>10}{mark}")
        lines.append("-" * 74)
        n = len(self.regressions)
        lines.append(
            f"{n} watched metric(s) regressed vs trend" if n else
            "no watched metric regressed vs trend"
        )
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_trend(store: HistoryStore, artifact: RunArtifact,
                window: int = DEFAULT_WINDOW,
                tolerance: float = DEFAULT_TOLERANCE) -> TrendReport:
    """Judge ``artifact`` against the median of its last ``window``
    same-key runs.  A watched metric regresses when it moves in its bad
    direction by more than ``tolerance`` relative to the median."""
    key = run_key(artifact)
    history = store.entries(key)[-window:]
    flat = artifact.flat_metrics()
    report = TrendReport(key=key, window=window, tolerance=tolerance,
                         n_history=len(history))
    if not history:
        return report
    for name, direction in sorted(WATCHED_METRICS.items()):
        if name not in flat:
            continue
        samples = [e.metrics[name] for e in history if name in e.metrics]
        if not samples:
            continue
        median = _median(samples)
        value = flat[name]
        regressed = False
        if value != median:
            denom = abs(median)
            rel = ((value - median) / denom) if denom else float("inf")
            bad = rel if direction == "lower" else -rel
            regressed = bad > tolerance
        report.verdicts.append(TrendVerdict(
            name=name, direction=direction, value=value, median=median,
            n_samples=len(samples), regressed=regressed,
        ))
    return report


def render_history(store: HistoryStore) -> str:
    """Tabular listing of everything in the store, grouped by key."""
    entries = store.entries()
    if not entries:
        return f"(empty history at {store.root})"
    lines = [f"history at {store.root}: {len(entries)} run(s), "
             f"{len(store.keys())} key(s)"]
    for key in store.keys():
        group = store.entries(key)
        lines.append(f"  {key}  ({len(group)} run(s))")
        for e in group[-5:]:
            cycles = e.metrics.get("report.cycles")
            cyc = f"  cycles={cycles:.0f}" if cycles is not None else ""
            lines.append(f"    {e.recorded_at}  {e.path}{cyc}")
        if len(group) > 5:
            lines.insert(-5, "    ...")
    return "\n".join(lines)


def render_trend_series(store: HistoryStore, metric: str,
                        key: str | None = None,
                        width: int = 48) -> str:
    """ASCII sparkline + values of one metric over recorded runs."""
    keys = [key] if key else store.keys()
    lines = []
    for k in keys:
        series = store.series(metric, key=k)
        if not series:
            continue
        values = [v for _, v in series]
        lo, hi = min(values), max(values)
        glyphs = "▁▂▃▄▅▆▇█"
        if hi == lo:
            spark = glyphs[0] * len(values)
        else:
            spark = "".join(
                glyphs[int((v - lo) / (hi - lo) * (len(glyphs) - 1))]
                for v in values
            )
        lines.append(f"{k}")
        lines.append(f"  {metric}: {spark[-width:]}  "
                     f"last={values[-1]:.6g}  min={lo:.6g}  max={hi:.6g}")
    if not lines:
        return f"(no recorded values for {metric!r})"
    return "\n".join(lines)
