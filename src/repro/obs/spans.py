"""Span-based pipeline tracing (wall-clock + optional peak memory).

Usage::

    from repro.obs import enable_tracing, get_tracer, span

    enable_tracing(trace_memory=True)
    with span("symbolic.factorize"):
        ...
    for s in get_tracer().spans:
        print(s.name, s.duration_s)

The global tracer is *disabled* by default and ``span()`` then costs one
dict-free function call returning a shared no-op context manager, so
library code can be instrumented unconditionally.  Spans nest; each span
records its depth and parent name so exporters can rebuild the hierarchy.

The tracer is thread-safe: the open-span stack is thread-local (so spans
opened concurrently from worker threads — e.g. the level-scheduled
numeric pool — nest within their own thread, not each other), completed
spans are appended under a lock, and registered completion listeners
(:meth:`Tracer.add_listener`, used by :mod:`repro.obs.telemetry` to
mirror spans into the per-process event sink) are invoked in the
completing thread.

With ``trace_memory=True`` the tracer also samples :mod:`tracemalloc` and
records the peak traced allocation observed while the span was open (the
peak is reset as each span starts, so with *nested* spans an outer span
reports the peak since its most recent child closed; top-level phase
spans — the intended granularity — report true per-phase peaks).
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable


@dataclass
class Span:
    """One completed pipeline phase."""

    name: str
    start_s: float          # perf_counter timestamp at entry
    duration_s: float
    depth: int = 0
    parent: str | None = None
    peak_mem_bytes: int | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "peak_mem_bytes": self.peak_mem_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"], start_s=d["start_s"],
            duration_s=d["duration_s"], depth=d.get("depth", 0),
            parent=d.get("parent"),
            peak_mem_bytes=d.get("peak_mem_bytes"),
        )


class _NullContext:
    """Reusable no-op context manager (zero-allocation disabled path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects :class:`Span` records from ``span(...)`` blocks."""

    def __init__(self) -> None:
        self.enabled = False
        self.trace_memory = False
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._listeners: list[Callable[[Span], None]] = []
        self._started_tracemalloc = False

    @property
    def _stack(self) -> list[str]:
        # Per-thread open-span stack: concurrent spans from worker
        # threads must not corrupt each other's parent/depth chains.
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- lifecycle ----------------------------------------------------------

    def enable(self, trace_memory: bool = False) -> None:
        self.enabled = True
        self.trace_memory = trace_memory
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def disable(self) -> None:
        self.enabled = False
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    def reset(self) -> None:
        with self._lock:
            self.spans = []
        self._local = threading.local()

    # -- listeners -----------------------------------------------------------

    def add_listener(self, fn: Callable[[Span], None]) -> None:
        """Call ``fn(span)`` in the completing thread for every span."""
        with self._lock:
            if fn not in self._listeners:
                self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Span], None]) -> None:
        with self._lock:
            if fn in self._listeners:
                self._listeners.remove(fn)

    # -- recording ----------------------------------------------------------

    def span(self, name: str):
        if not self.enabled:
            return _NULL_CONTEXT
        return self._record(name)

    @contextmanager
    def _record(self, name: str):
        stack = self._stack
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        sample_mem = self.trace_memory and tracemalloc.is_tracing()
        if sample_mem:
            tracemalloc.reset_peak()
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            peak = (tracemalloc.get_traced_memory()[1]
                    if sample_mem else None)
            stack.pop()
            completed = Span(
                name=name, start_s=start, duration_s=duration,
                depth=depth, parent=parent, peak_mem_bytes=peak,
            )
            with self._lock:
                self.spans.append(completed)
                listeners = list(self._listeners)
            for fn in listeners:
                fn(completed)

    # -- queries ------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        return sum(s.duration_s for s in self.find(name))

    def export(self) -> list[dict]:
        """Spans as JSON-ready dicts, in completion order."""
        return [s.to_dict() for s in self.spans]


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer used by :func:`span`."""
    return _TRACER


def enable_tracing(trace_memory: bool = False) -> Tracer:
    """Enable the global tracer (idempotent); returns it."""
    _TRACER.enable(trace_memory=trace_memory)
    return _TRACER


def disable_tracing() -> None:
    _TRACER.disable()


def span(name: str):
    """Context manager timing one pipeline phase on the global tracer.

    No-op (and allocation-free) while tracing is disabled.
    """
    return _TRACER.span(name)
