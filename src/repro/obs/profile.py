"""Opt-in wall-clock profiling: cProfile + a sampling signal profiler.

Behind the CLI's ``--profile`` flag.  Two complementary collectors run
under one :class:`Profiler`:

* **cProfile** (deterministic, per-call): exact call counts and
  cumulative times — the source of the top-function table.  Its
  tracing overhead is significant, which is why profiling is opt-in;
  with ``--profile`` absent nothing here is ever constructed.
* **Sampling profiler** (statistical): a ``SIGPROF``/``ITIMER_PROF``
  timer samples the stacks of *all* threads (``sys._current_frames``)
  on process CPU time, folding them into ``a;b;c count`` stacks — the
  source of the flamegraph.  BLAS worker threads show up here even
  though cProfile (which traces only the calling thread's bytecode)
  cannot see them.  Requires the main thread and a Unix signal
  machinery; it degrades to "no samples" silently elsewhere.

The result (:class:`ProfileResult`) serializes into the run artifact's
``profile`` section (schema v3) as plain data — top rows + folded
stacks — and :func:`flamegraph_svg` renders the folded stacks into a
self-contained SVG at report time, so artifacts stay compact while the
HTML report gets a real flamegraph.
"""

from __future__ import annotations

import cProfile
import logging
import pstats
import sys
import threading
import time
from dataclasses import dataclass, field

logger = logging.getLogger(__name__)

#: Default sampling period (seconds of process CPU time).
DEFAULT_INTERVAL_S = 0.005

#: Frames deeper than this are truncated when folding stacks.
MAX_STACK_DEPTH = 64

PROFILE_MODES = ("both", "cprofile", "sample")


@dataclass
class ProfileResult:
    """One profiling session, ready for artifact embedding."""

    mode: str
    seconds: float
    top: list[dict] = field(default_factory=list)
    folded: dict[str, int] = field(default_factory=dict)
    samples: int = 0
    interval_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode, "seconds": self.seconds, "top": self.top,
            "folded": self.folded, "samples": self.samples,
            "interval_s": self.interval_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileResult":
        return cls(
            mode=data.get("mode", "both"),
            seconds=float(data.get("seconds", 0.0)),
            top=list(data.get("top", [])),
            folded={k: int(v)
                    for k, v in data.get("folded", {}).items()},
            samples=int(data.get("samples", 0)),
            interval_s=float(data.get("interval_s", 0.0)),
        )

    def render_top(self, limit: int = 20) -> str:
        """Plain-text top-function table (by cumulative time)."""
        if not self.top:
            return ("(no deterministic profile; sampling-only session: "
                    f"{self.samples} samples)")
        lines = [
            f"top {min(limit, len(self.top))} functions by cumulative "
            f"time ({self.seconds:.2f}s profiled)",
            f"{'cumtime':>9}{'tottime':>9}{'ncalls':>9}  function",
            "-" * 72,
        ]
        for row in self.top[:limit]:
            lines.append(
                f"{row['cumtime_s']:>8.3f}s{row['tottime_s']:>8.3f}s"
                f"{row['ncalls']:>9}  {row['func']} "
                f"({row['file']}:{row['line']})"
            )
        return "\n".join(lines)


class SamplingProfiler:
    """Signal-driven stack sampler over all threads.

    ``ITIMER_PROF`` fires ``SIGPROF`` every ``interval`` seconds of
    process CPU time; the handler (which runs on the main thread) folds
    the current stack of every live thread.  Start/stop must both happen
    on the main thread.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL_S) -> None:
        self.interval = interval
        self.counts: dict[str, int] = {}
        self.samples = 0
        self._prev_handler = None
        self._active = False

    @staticmethod
    def available() -> bool:
        import signal

        return (hasattr(signal, "setitimer")
                and hasattr(signal, "SIGPROF")
                and threading.current_thread()
                is threading.main_thread())

    def _handler(self, signum, frame) -> None:
        self.samples += 1
        for tid, top in sys._current_frames().items():
            stack: list[str] = []
            f = top
            while f is not None and len(stack) < MAX_STACK_DEPTH:
                code = f.f_code
                stack.append(f"{code.co_name} "
                             f"({code.co_filename.rsplit('/', 1)[-1]}"
                             f":{code.co_firstlineno})")
                f = f.f_back
            if not stack:
                continue
            key = ";".join(reversed(stack))
            self.counts[key] = self.counts.get(key, 0) + 1

    def start(self) -> bool:
        import signal

        if not self.available():
            return False
        self._prev_handler = signal.signal(signal.SIGPROF, self._handler)
        signal.setitimer(signal.ITIMER_PROF, self.interval,
                         self.interval)
        self._active = True
        return True

    def stop(self) -> None:
        import signal

        if not self._active:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        signal.signal(signal.SIGPROF, self._prev_handler)
        self._active = False


class Profiler:
    """One profiling session combining both collectors.

    Args:
        mode: ``"both"`` (default), ``"cprofile"``, or ``"sample"``.
        interval: sampling period for the statistical collector.
    """

    def __init__(self, mode: str = "both",
                 interval: float = DEFAULT_INTERVAL_S) -> None:
        if mode not in PROFILE_MODES:
            raise ValueError(
                f"profile mode must be one of {PROFILE_MODES}")
        self.mode = mode
        self._cprofile: cProfile.Profile | None = None
        self._sampler: SamplingProfiler | None = None
        if mode in ("both", "cprofile"):
            self._cprofile = cProfile.Profile()
        if mode in ("both", "sample"):
            self._sampler = SamplingProfiler(interval=interval)
        self._t0 = 0.0
        self._result: ProfileResult | None = None

    def start(self) -> "Profiler":
        self._t0 = time.perf_counter()
        if self._sampler is not None and not self._sampler.start():
            logger.info("sampling profiler unavailable here "
                        "(needs Unix signals + main thread); "
                        "continuing without samples")
            self._sampler = None
        if self._cprofile is not None:
            self._cprofile.enable()
        return self

    def stop(self) -> ProfileResult:
        """Stop both collectors (idempotent) and return the result."""
        if self._result is not None:
            return self._result
        seconds = time.perf_counter() - self._t0
        if self._cprofile is not None:
            self._cprofile.disable()
        if self._sampler is not None:
            self._sampler.stop()
        top: list[dict] = []
        if self._cprofile is not None:
            stats = pstats.Stats(self._cprofile)
            rows = []
            for (file, line, func), (cc, nc, tottime, cumtime, _callers) \
                    in stats.stats.items():
                rows.append({
                    "func": func,
                    "file": file.rsplit("/", 1)[-1],
                    "line": line,
                    "ncalls": nc,
                    "tottime_s": round(tottime, 6),
                    "cumtime_s": round(cumtime, 6),
                })
            rows.sort(key=lambda r: -r["cumtime_s"])
            top = rows[:60]
        self._result = ProfileResult(
            mode=self.mode,
            seconds=seconds,
            top=top,
            folded=dict(self._sampler.counts) if self._sampler else {},
            samples=self._sampler.samples if self._sampler else 0,
            interval_s=self._sampler.interval if self._sampler else 0.0,
        )
        return self._result


# -- flamegraph ---------------------------------------------------------------

_FLAME_COLORS = ("#d9534f", "#e8793a", "#f0a433", "#c44e52", "#dd6b4d")


def _flame_tree(folded: dict[str, int]) -> dict:
    """Fold ``a;b;c -> count`` stacks into a nested {name, total,
    children} tree rooted at "all"."""
    root = {"name": "all", "total": 0, "children": {}}
    for stack, count in folded.items():
        root["total"] += count
        node = root
        for frame in stack.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = {"name": frame, "total": 0, "children": {}}
                node["children"][frame] = child
            child["total"] += count
            node = child
    return root


def flamegraph_svg(folded: dict[str, int], width: int = 960,
                   row_height: int = 17, max_depth: int = 32) -> str:
    """Self-contained SVG flamegraph from folded stacks.

    Frame widths are proportional to sample counts; hover titles carry
    the full frame name, count, and percentage.  Pure inline SVG — no
    scripts, safe to embed in the archived HTML report.
    """
    if not folded:
        return ("<p class='muted'>(no stack samples — sampling profiler "
                "was unavailable or nothing ran long enough)</p>")
    root = _flame_tree(folded)
    total = root["total"] or 1
    rects: list[str] = []

    def emit(node: dict, x: float, depth: int) -> None:
        w = width * node["total"] / total
        if w < 0.5 or depth > max_depth:
            return
        y = depth * row_height
        color = _FLAME_COLORS[hash(node["name"]) % len(_FLAME_COLORS)]
        import html as _html

        name = _html.escape(node["name"])
        pct = 100.0 * node["total"] / total
        rects.append(
            f'<g><title>{name} — {node["total"]} samples '
            f'({pct:.1f}%)</title>'
            f'<rect x="{x:.1f}" y="{y}" width="{max(w, 1):.1f}" '
            f'height="{row_height - 1}" fill="{color}" rx="1"/>'
            + (f'<text x="{x + 3:.1f}" y="{y + row_height - 5}" '
               f'font-size="10" fill="#fff">'
               f'{name[: max(1, int(w / 6.5))]}</text>'
               if w > 30 else "")
            + "</g>"
        )
        cx = x
        for child in sorted(node["children"].values(),
                            key=lambda c: -c["total"]):
            emit(child, cx, depth + 1)
            cx += width * child["total"] / total

    emit(root, 0.0, 0)
    depth_used = min(max_depth + 1, _tree_depth(root))
    height = depth_used * row_height + 4
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'font-family="monospace">' + "".join(rects) + "</svg>"
    )


def _tree_depth(node: dict) -> int:
    if not node["children"]:
        return 1
    return 1 + max(_tree_depth(c) for c in node["children"].values())
