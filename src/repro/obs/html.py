"""Self-contained HTML performance report (``repro report --html``).

Renders one :class:`~repro.obs.artifact.RunArtifact` — and, when a
history store is given, the trend series of every watched metric — into a
single HTML file with zero external assets (inline CSS + SVG), so the
page survives being archived as a CI build artifact or mailed around.

Sections: run header, headline report table, top-down cycle-attribution
tree (nested horizontal bars), what-if estimates, critical-path summary,
PE-utilization timeline (SVG area chart), watched-metric trend sparklines
(SVG polylines), the span waterfall, and — for schema-v3 artifacts — the
wall-clock latency percentiles and profile (top functions + flamegraph).

:func:`write_timeline_report` renders a *collected telemetry timeline*
(:class:`repro.obs.telemetry.Timeline`) instead: process table with
heartbeat liveness, a per-process/per-thread span lane view (SVG
swimlanes on the shared wall clock), phase latency percentiles, merged
counters, and the log tail.
"""

from __future__ import annotations

import html as _html
from pathlib import Path

from repro.obs.artifact import WATCHED_METRICS, RunArtifact

_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 60em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; }
td, th { padding: .15em .8em .15em 0; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { height: 1.15em; background: #4c72b0; display: inline-block;
       vertical-align: middle; border-radius: 2px; }
.bar.l1 { background: #55a868; } .bar.l2 { background: #c44e52; }
.tree .row { white-space: nowrap; font-variant-numeric: tabular-nums; }
.tree .name { display: inline-block; width: 16em; }
.tree .pct { display: inline-block; width: 4.5em; text-align: right;
             padding-right: .6em; color: #555; }
.muted { color: #777; } code { background: #f4f4f6; padding: 0 .25em; }
svg { background: #fafafc; border: 1px solid #e5e5ea; }
.regressed { color: #c0392b; font-weight: 600; }
"""

_BAR_CLASS = {0: "", 1: "l1", 2: "l2"}


def _esc(text) -> str:
    return _html.escape(str(text))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return f"{value:,}" if isinstance(value, int) else str(value)


def _tree_rows(node: dict, denom: int, depth: int = 0) -> list[str]:
    pct = 100.0 * node["cycles"] / (denom or 1)
    bar = max(1, round(pct * 3))
    rows = [
        f'<div class="row" style="padding-left:{depth * 1.4}em">'
        f'<span class="name">{_esc(node["name"])}</span>'
        f'<span class="pct">{pct:.1f}%</span>'
        f'<span class="bar {_BAR_CLASS.get(depth, "l2")}" '
        f'style="width:{bar}px"></span> '
        f'<span class="muted">{node["cycles"]:,}</span></div>'
    ]
    for child in node.get("children", []):
        rows.extend(_tree_rows(child, denom, depth + 1))
    return rows


def _svg_area(values: list[float], width: int = 640, height: int = 120,
              y_max: float = 1.0) -> str:
    """Filled area chart of a 0..y_max series (utilization timeline)."""
    if not values:
        return '<p class="muted">(no data)</p>'
    n = len(values)
    step = width / max(n, 1)
    points = [f"0,{height}"]
    for i, v in enumerate(values):
        y = height - (min(v, y_max) / y_max) * (height - 4)
        points.append(f"{(i + 0.5) * step:.1f},{y:.1f}")
    points.append(f"{width},{height}")
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polygon points="{" ".join(points)}" fill="#4c72b0" '
        f'fill-opacity="0.55" stroke="#4c72b0"/></svg>'
    )


def _svg_trend(values: list[float], width: int = 280,
               height: int = 56) -> str:
    """Polyline sparkline of a metric series, last point marked."""
    if len(values) < 2:
        return '<span class="muted">(needs &ge; 2 runs)</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = (width - 10) / (len(values) - 1)
    pts = [
        (5 + i * step, height - 6 - (v - lo) / span * (height - 12))
        for i, v in enumerate(values)
    ]
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
    lx, ly = pts[-1]
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{poly}" fill="none" stroke="#4c72b0" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="3" fill="#c44e52"/>'
        "</svg>"
    )


def render_html_report(artifact: RunArtifact, history=None,
                       trend=None) -> str:
    """Render one artifact (and optional history/trend context) to HTML.

    Args:
        artifact: the run to report on.
        history: optional :class:`~repro.obs.history.HistoryStore`; adds
            a watched-metric trend section scoped to the artifact's key.
        trend: optional :class:`~repro.obs.history.TrendReport` from
            ``check_trend`` — its verdicts annotate the trend section.
    """
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>repro report: {_esc(artifact.matrix)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(artifact.matrix)} <span class='muted'>"
        f"[{_esc(artifact.kind)}] n={artifact.n}</span></h1>",
        f"<p class='muted'>schema v{artifact.schema_version} &middot; "
        f"created {_esc(artifact.created_at)}</p>",
    ]

    # headline report table
    parts.append("<h2>Report</h2><table>")
    for key, value in sorted(artifact.report.items()):
        if isinstance(value, (int, float)):
            parts.append(f"<tr><td><code>{_esc(key)}</code></td>"
                         f"<td class='num'>{_fmt(value)}</td></tr>")
    parts.append("</table>")

    att = artifact.attribution or {}
    cycles = att.get("cycles")
    if cycles:
        parts.append("<h2>Cycle attribution</h2><div class='tree'>")
        denom = cycles["total_cycles"] * cycles["n_pes"]
        parts.extend(_tree_rows(cycles["tree"], denom))
        parts.append("</div>")
        what_if = cycles.get("what_if", {})
        if what_if:
            parts.append("<h2>What-if estimates "
                         "<span class='muted'>(first-order)</span></h2>"
                         "<table>")
            actual = cycles["total_cycles"] or 1
            for name, est in sorted(what_if.items()):
                delta = 100.0 * (est - actual) / actual
                parts.append(
                    f"<tr><td><code>{_esc(name)}</code></td>"
                    f"<td class='num'>~{est:,}</td>"
                    f"<td class='num muted'>{delta:+.1f}%</td></tr>"
                )
            parts.append("</table>")

    cp = att.get("critical_path")
    if cp:
        parts.append("<h2>Critical path</h2>")
        pct = 100.0 * cp["cp_cycles"] / (cp["total_cycles"] or 1)
        parts.append(
            f"<p><b>{cp['cp_cycles']:,}</b> of {cp['total_cycles']:,} "
            f"cycles ({pct:.0f}%) on the longest dependence chain, "
            f"{cp['n_steps']} tasks.</p><table>"
        )
        parts.append("<tr><th>task type</th><th>cycles on path</th></tr>")
        for ttype, c in sorted(cp.get("by_task_type", {}).items(),
                               key=lambda kv: -kv[1]):
            parts.append(f"<tr><td><code>{_esc(ttype)}</code></td>"
                         f"<td class='num'>{c:,}</td></tr>")
        gaps = cp.get("gaps", {})
        for cause, c in sorted(gaps.items()):
            parts.append(f"<tr><td class='muted'>wait: {_esc(cause)}"
                         f"</td><td class='num'>{c:,}</td></tr>")
        parts.append("</table>")
        top = cp.get("top_supernodes", [])
        if top:
            parts.append("<p class='muted'>top supernodes on path: "
                         + ", ".join(f"S{t['sn']} ({t['cycles']:,})"
                                     for t in top) + "</p>")

    timeline = att.get("utilization_timeline")
    if timeline:
        parts.append("<h2>PE utilization over time</h2>")
        parts.append(_svg_area([float(v) for v in timeline]))

    if history is not None:
        from repro.obs.history import run_key

        key = run_key(artifact)
        regressed = {v.name for v in trend.regressions} if trend else set()
        rows = []
        for name in sorted(WATCHED_METRICS):
            values = [v for _, v in history.series(name, key=key)]
            if not values:
                continue
            cls = " class='regressed'" if name in regressed else ""
            rows.append(
                f"<tr><td{cls}><code>{_esc(name)}</code></td>"
                f"<td>{_svg_trend(values)}</td>"
                f"<td class='num'>{values[-1]:.6g}</td></tr>"
            )
        if rows:
            parts.append(f"<h2>Trends <span class='muted'>({len(rows)} "
                         "watched metrics, this run key)</span></h2>")
            parts.append("<table>" + "".join(rows) + "</table>")
        if trend is not None and trend.n_history:
            parts.append(f"<pre>{_esc(trend.render())}</pre>")

    if artifact.telemetry:
        tel = artifact.telemetry
        parts.append(
            "<h2>Runtime telemetry</h2>"
            f"<p>run <code>{_esc(tel.get('run_id', '?'))}</code> &middot; "
            f"{tel.get('n_processes', 1)} process(es) &middot; dir "
            f"<code>{_esc(tel.get('dir', ''))}</code></p>"
        )
        parts.append(_latency_table(tel.get("latency_ms", {})))

    if artifact.profile:
        from repro.obs.profile import ProfileResult, flamegraph_svg

        prof = ProfileResult.from_dict(artifact.profile)
        parts.append(
            f"<h2>Wall-clock profile <span class='muted'>({_esc(prof.mode)}"
            f", {prof.seconds:.2f}s, {prof.samples} samples)</span></h2>"
        )
        if prof.top:
            parts.append("<table><tr><th>cumtime</th><th>tottime</th>"
                         "<th>ncalls</th><th>function</th></tr>")
            for row in prof.top[:20]:
                parts.append(
                    f"<tr><td class='num'>{row['cumtime_s']:.3f}s</td>"
                    f"<td class='num'>{row['tottime_s']:.3f}s</td>"
                    f"<td class='num'>{row['ncalls']}</td>"
                    f"<td><code>{_esc(row['func'])}</code> "
                    f"<span class='muted'>{_esc(row['file'])}:"
                    f"{row['line']}</span></td></tr>"
                )
            parts.append("</table>")
        parts.append("<h2>Flamegraph <span class='muted'>(sampled, all "
                     "threads)</span></h2>")
        parts.append(flamegraph_svg(prof.folded))

    if artifact.spans:
        parts.append("<h2>Pipeline spans</h2><table>")
        total = max(s["duration_s"] for s in artifact.spans) or 1.0
        for s in sorted(artifact.spans, key=lambda d: d["start_s"]):
            bar = max(1, round(240 * s["duration_s"] / total))
            indent = 1.2 * s.get("depth", 0)
            parts.append(
                f"<tr><td style='padding-left:{indent}em'>"
                f"<code>{_esc(s['name'])}</code></td>"
                f"<td class='num'>{1e3 * s['duration_s']:.2f} ms</td>"
                f"<td><span class='bar' style='width:{bar}px'></span>"
                "</td></tr>"
            )
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(artifact: RunArtifact, path: str | Path,
                      history=None, trend=None) -> None:
    Path(path).write_text(render_html_report(artifact, history=history,
                                             trend=trend))


# -- telemetry timeline report ------------------------------------------------

_LANE_COLORS = ("#4c72b0", "#55a868", "#c44e52", "#8172b2", "#ccb974",
                "#64b5cd", "#937860", "#da8bc3")


def _latency_table(latency_ms: dict) -> str:
    if not latency_ms:
        return "<p class='muted'>(no phase latency samples)</p>"
    rows = ["<table><tr><th>phase</th><th>count</th><th>p50</th>"
            "<th>p95</th><th>p99</th><th>max</th></tr>"]
    for phase, st in sorted(latency_ms.items()):
        rows.append(
            f"<tr><td><code>{_esc(phase)}</code></td>"
            f"<td class='num'>{st['count']}</td>"
            f"<td class='num'>{st['p50_ms']:.3f} ms</td>"
            f"<td class='num'>{st['p95_ms']:.3f} ms</td>"
            f"<td class='num'>{st['p99_ms']:.3f} ms</td>"
            f"<td class='num'>{st['max_ms']:.3f} ms</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _svg_span_lanes(timeline, width: int = 960, lane_h: int = 18,
                    max_rects: int = 2500) -> str:
    """Swimlane view: one lane per (process, thread), spans as rects on
    the shared wall clock.  When a run has more spans than ``max_rects``
    the shortest ones are dropped (noted in the caption) so the report
    stays loadable."""
    spans = timeline.spans()
    if not spans:
        return "<p class='muted'>(no spans recorded)</p>"
    lanes = timeline.lanes()
    lane_of = {lane: i for i, lane in enumerate(lanes)}
    # Label lanes p<pid>/w<thread-ordinal-within-pid> (w0 = first seen).
    ordinal: dict[tuple, int] = {}
    per_pid: dict[int, int] = {}
    for pid, tid in lanes:
        ordinal[(pid, tid)] = per_pid.get(pid, 0)
        per_pid[pid] = per_pid.get(pid, 0) + 1
    t_end = max(s["wall_start_s"] + s["dur"] for s in spans) or 1e-9
    dropped = 0
    if len(spans) > max_rects:
        dropped = len(spans) - max_rects
        spans = sorted(spans, key=lambda s: -s["dur"])[:max_rects]
    label_w = 110
    scale = (width - label_w) / t_end
    height = len(lanes) * lane_h + 18
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" font-family="monospace">']
    for (pid, tid), i in lane_of.items():
        y = i * lane_h
        fill = "#f4f4f6" if i % 2 else "#fafafc"
        parts.append(f'<rect x="0" y="{y}" width="{width}" '
                     f'height="{lane_h}" fill="{fill}"/>')
        parts.append(f'<text x="4" y="{y + lane_h - 5}" font-size="10" '
                     f'fill="#555">p{pid}/w{ordinal[(pid, tid)]}</text>')
    for s in spans:
        i = lane_of[(s["pid"], s.get("tid", 0))]
        x = label_w + s["wall_start_s"] * scale
        w = max(s["dur"] * scale, 0.8)
        color = _LANE_COLORS[hash(s["name"]) % len(_LANE_COLORS)]
        parts.append(
            f'<g><title>{_esc(s["name"])} — {1e3 * s["dur"]:.3f} ms '
            f'(pid {s["pid"]})</title>'
            f'<rect x="{x:.1f}" y="{i * lane_h + 2}" width="{w:.1f}" '
            f'height="{lane_h - 4}" fill="{color}" fill-opacity="0.85" '
            'rx="1"/></g>'
        )
    axis_y = len(lanes) * lane_h + 12
    parts.append(f'<text x="{label_w}" y="{axis_y}" font-size="10" '
                 'fill="#555">0 s</text>')
    parts.append(f'<text x="{width - 60}" y="{axis_y}" font-size="10" '
                 f'fill="#555">{t_end:.3f} s</text>')
    parts.append("</svg>")
    caption = (f"<p class='muted'>{dropped} shortest span(s) not drawn "
               "(cap for report size)</p>" if dropped else "")
    return "".join(parts) + caption


def render_timeline_html(timeline, profile: dict | None = None) -> str:
    """Render a collected telemetry timeline (and optional profile dict
    from :class:`repro.obs.profile.ProfileResult`) to HTML."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>telemetry: {_esc(timeline.run_id)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Telemetry run <code>{_esc(timeline.run_id)}</code></h1>",
        f"<p class='muted'>{len(timeline.streams)} process stream(s) "
        f"from <code>{_esc(timeline.telemetry_dir)}</code></p>",
        "<h2>Processes</h2>",
        "<table><tr><th>pid</th><th>role</th><th>spans</th>"
        "<th>heartbeats</th><th>last heartbeat</th><th>stream</th></tr>",
    ]
    t0 = timeline.t0
    for s in timeline.streams:
        last = s.last_heartbeat_wall
        last_s = f"+{last - t0:.2f}s" if last is not None else "—"
        parts.append(
            f"<tr><td class='num'>{s.pid}</td><td>{_esc(s.role)}</td>"
            f"<td class='num'>{len(s.spans)}</td>"
            f"<td class='num'>{len(s.heartbeats)}</td>"
            f"<td class='num'>{last_s}</td>"
            f"<td><code>{_esc(Path(s.path).name)}</code></td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Worker lanes <span class='muted'>(wall clock)"
                 "</span></h2>")
    parts.append(_svg_span_lanes(timeline))

    parts.append("<h2>Phase latency percentiles</h2>")
    parts.append(_latency_table(timeline.latency_summary()))

    counters = timeline.merged_counters()
    if counters:
        parts.append("<h2>Merged counters <span class='muted'>(summed "
                     "across processes)</span></h2><table>")
        for name, value in sorted(counters.items()):
            parts.append(f"<tr><td><code>{_esc(name)}</code></td>"
                         f"<td class='num'>{_fmt(value)}</td></tr>")
        parts.append("</table>")

    if profile:
        from repro.obs.profile import ProfileResult, flamegraph_svg

        prof = profile if isinstance(profile, ProfileResult) \
            else ProfileResult.from_dict(profile)
        parts.append(
            f"<h2>Wall-clock profile <span class='muted'>({_esc(prof.mode)}"
            f", {prof.seconds:.2f}s, {prof.samples} samples)</span></h2>"
            f"<pre>{_esc(prof.render_top(limit=15))}</pre>"
        )
        parts.append(flamegraph_svg(prof.folded))

    logs = timeline.logs()
    if logs:
        parts.append(f"<h2>Log tail <span class='muted'>(last "
                     f"{min(len(logs), 40)} of {len(logs)})</span></h2>"
                     "<table>")
        for rec in logs[-40:]:
            offset = rec.get("wall", t0) - t0
            parts.append(
                f"<tr><td class='num muted'>+{offset:.3f}s</td>"
                f"<td>{_esc(rec.get('level', ''))}</td>"
                f"<td class='muted'>pid {rec.get('pid')}</td>"
                f"<td><code>{_esc(rec.get('msg', ''))}</code></td></tr>"
            )
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_timeline_report(timeline, path: str | Path,
                          profile=None) -> None:
    """Write the timeline HTML; ``profile`` is a ProfileResult or its
    dict form, or None."""
    Path(path).write_text(render_timeline_html(timeline,
                                               profile=profile))
