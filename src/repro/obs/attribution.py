"""Cycle accounting and critical-path analysis (the "why is it slow" layer).

The simulator's counters say *what* happened (misses, stall cycles,
traffic); this module says *where the time went* and *what fixing each
limiter would buy* — the top-down attribution story behind the paper's
evaluation (Section 7, Figures 16-19).

Cycle accounting
----------------
:func:`attribute_cycles` decomposes every PE's ``sim.cycles`` into seven
disjoint buckets:

* ``compute``         — the array is executing a task;
* ``cache_stall``     — exposed operand wait apportioned to the cache
                        (MSHR occupancy + bank-port conflicts);
* ``noc_stall``       — exposed operand wait apportioned to crossbar-port
                        contention;
* ``hbm_wait``        — exposed operand wait apportioned to HBM channel
                        occupancy;
* ``dependency_wait`` — the PE is idle with no dispatched work while at
                        least one supernode is in flight (tasks exist but
                        their dependences are unresolved);
* ``scheduler_idle``  — the PE is idle and *no* supernode is in flight
                        (tree-level serialization / activation throttling);
* ``load_imbalance``  — the tail after the PE's last task retires, while
                        the rest of the machine finishes.

The decomposition is *conservative and complete*: all arithmetic is
integer, every idle cycle lands in exactly one bucket, and per-PE bucket
sums equal ``sim.cycles`` exactly (checked by
:meth:`CycleAttribution.check_conservation`, asserted in tests).

The split of exposed operand wait across cache/NoC/HBM uses the
components' own stall counters as proportions (``cache.mshr_stall_cycles``
+ ``cache.bank_wait_cycles`` vs ``noc.*.stall_cycles`` vs
``hbm.channel_wait_cycles``); when all three are zero the wait is the
baseline transfer pipeline and is charged to ``cache_stall``.

What-if estimates are first-order: "removing bucket B saves its mean
per-PE cycles" — a useful ranking of limiters, not a re-simulation (the
test suite validates the infinite-HBM prediction against actual sims with
``hbm_gbs_per_phy`` effectively infinite; see docs/OBSERVABILITY.md for
caveats).

Critical path
-------------
:func:`critical_path` joins the executed :class:`~repro.arch.trace
.TraceEvent` timeline with the task-graph dependence structure and
extracts the longest duration-weighted dependence chain.  Because every
successor starts at or after its dependences end, the chain's summed
duration *lower-bounds* the observed makespan (``cp_cycles <=
sim.cycles``, asserted in tests).  Each inter-task gap on the path is
split into dependency/scheduling wait (before the successor's dispatch)
and resource wait (dispatch to execution start).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: Bucket names, in the order render() and the HTML report display them.
BUCKETS = (
    "compute",
    "cache_stall",
    "noc_stall",
    "hbm_wait",
    "dependency_wait",
    "scheduler_idle",
    "load_imbalance",
)


class _Coverage:
    """Integer-interval coverage queries over merged [start, end) spans."""

    def __init__(self, intervals: list[tuple[int, int]]) -> None:
        merged: list[list[int]] = []
        for start, end in sorted(intervals):
            if end <= start:
                continue
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self._starts = [m[0] for m in merged]
        self._ends = [m[1] for m in merged]
        self._prefix = [0]
        for start, end in merged:
            self._prefix.append(self._prefix[-1] + (end - start))

    def covered(self, a: int, b: int) -> int:
        """Cycles of [a, b) lying inside any interval."""
        if b <= a or not self._starts:
            return 0
        lo = bisect.bisect_right(self._ends, a)
        hi = bisect.bisect_left(self._starts, b)
        total = 0
        for i in range(lo, hi):
            total += min(b, self._ends[i]) - max(a, self._starts[i])
        return total


@dataclass
class CycleAttribution:
    """Per-PE cycle-bucket decomposition of one simulation run."""

    total_cycles: int
    n_pes: int
    per_pe: list[dict[str, int]]
    compute_by_type: dict[str, int] = field(default_factory=dict)
    what_if: dict[str, int] = field(default_factory=dict)

    # -- aggregate views ----------------------------------------------------

    def totals(self) -> dict[str, int]:
        """Machine-wide bucket sums (in PE-cycles)."""
        out = {b: 0 for b in BUCKETS}
        for buckets in self.per_pe:
            for b in BUCKETS:
                out[b] += buckets.get(b, 0)
        return out

    def fractions(self) -> dict[str, float]:
        """Bucket fractions of total PE-cycles (sums to 1.0)."""
        denom = self.total_cycles * self.n_pes or 1
        return {b: v / denom for b, v in self.totals().items()}

    def check_conservation(self) -> None:
        """Raise AssertionError unless every PE's buckets sum exactly to
        ``total_cycles`` — the accounting's correctness invariant."""
        for pe, buckets in enumerate(self.per_pe):
            got = sum(buckets.values())
            if got != self.total_cycles:
                raise AssertionError(
                    f"PE {pe}: buckets sum to {got}, not "
                    f"{self.total_cycles}"
                )

    def tree(self) -> dict:
        """Top-down attribution tree (PE-cycles at every node).

        ``sim.cycles`` -> {compute by task type} | {memory stalls by
        component} | {idle by cause}.
        """
        totals = self.totals()
        compute_children = [
            {"name": ttype, "cycles": cycles}
            for ttype, cycles in sorted(self.compute_by_type.items(),
                                        key=lambda kv: -kv[1])
            if cycles > 0
        ]
        memory = {
            "name": "memory_stall",
            "cycles": (totals["cache_stall"] + totals["noc_stall"]
                       + totals["hbm_wait"]),
            "children": [
                {"name": b, "cycles": totals[b]}
                for b in ("cache_stall", "noc_stall", "hbm_wait")
            ],
        }
        idle = {
            "name": "idle",
            "cycles": (totals["dependency_wait"] + totals["scheduler_idle"]
                       + totals["load_imbalance"]),
            "children": [
                {"name": b, "cycles": totals[b]}
                for b in ("dependency_wait", "scheduler_idle",
                          "load_imbalance")
            ],
        }
        return {
            "name": "sim.cycles",
            "cycles": self.total_cycles * self.n_pes,
            "children": [
                {"name": "compute", "cycles": totals["compute"],
                 "children": compute_children},
                memory,
                idle,
            ],
        }

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "n_pes": self.n_pes,
            "per_pe": [dict(b) for b in self.per_pe],
            "compute_by_type": dict(self.compute_by_type),
            "what_if": dict(self.what_if),
            "tree": self.tree(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CycleAttribution":
        return cls(
            total_cycles=data["total_cycles"],
            n_pes=data["n_pes"],
            per_pe=[{k: int(v) for k, v in b.items()}
                    for b in data["per_pe"]],
            compute_by_type={k: int(v) for k, v in
                             data.get("compute_by_type", {}).items()},
            what_if={k: int(v) for k, v in
                     data.get("what_if", {}).items()},
        )

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """ASCII top-down attribution tree with percentages."""
        denom = self.total_cycles * self.n_pes or 1
        lines = [f"cycle attribution over {self.total_cycles} cycles x "
                 f"{self.n_pes} PEs"]

        def walk(node: dict, depth: int) -> None:
            pct = 100.0 * node["cycles"] / denom
            lines.append(f"{'  ' * depth}{node['name']:<24}"
                         f"{node['cycles']:>14}  {pct:>5.1f}%")
            for child in node.get("children", []):
                walk(child, depth + 1)

        walk(self.tree(), 0)
        if self.what_if:
            lines.append("what-if (first-order estimates):")
            for name, cycles in sorted(self.what_if.items()):
                delta = 100.0 * (cycles - self.total_cycles) \
                    / (self.total_cycles or 1)
                lines.append(f"  {name:<28}~{cycles:>12} cycles "
                             f"({delta:+.1f}% vs actual)")
        return "\n".join(lines)


def _split_memory_wait(wait: int, cache_w: int, noc_w: int,
                       hbm_w: int) -> tuple[int, int, int]:
    """Apportion one PE's exposed operand wait across the memory system.

    Integer-exact: the three parts always sum to ``wait``.  With no stall
    evidence at all, the wait is the baseline cache-pipeline transfer time
    and is charged entirely to the cache.
    """
    total = cache_w + noc_w + hbm_w
    if wait <= 0:
        return 0, 0, 0
    if total == 0:
        return wait, 0, 0
    cache = wait * cache_w // total
    noc = wait * noc_w // total
    hbm = wait - cache - noc
    return cache, noc, hbm


def attribute_cycles(
    events: list,
    total_cycles: int,
    n_pes: int,
    sn_intervals: list[tuple[int, int]],
    registry,
) -> CycleAttribution:
    """Decompose a run's cycles into the :data:`BUCKETS` per PE.

    Args:
        events: executed :class:`~repro.arch.trace.TraceEvent` records
            (``SpatulaSim(..., trace=True)``).
        total_cycles: the run's ``sim.cycles``.
        n_pes: number of PEs in the configuration.
        sn_intervals: (start, end) in-flight interval of every supernode —
            distinguishes dependency wait (some supernode active) from
            scheduler idle (none active).
        registry: the run's :class:`~repro.obs.MetricsRegistry`; supplies
            the component stall counters used to apportion operand wait.
    """
    coverage = _Coverage(list(sn_intervals))
    cache_w = int(registry.value("cache.mshr_stall_cycles")
                  + registry.value("cache.bank_wait_cycles"))
    noc_w = int(registry.value("noc.port.stall_cycles")
                + registry.value("noc.wport.stall_cycles"))
    hbm_w = int(registry.value("hbm.channel_wait_cycles"))

    by_pe: list[list] = [[] for _ in range(n_pes)]
    for e in events:
        by_pe[e.pe].append(e)
    compute_by_type: dict[str, int] = {}

    per_pe: list[dict[str, int]] = []
    for pe_events in by_pe:
        pe_events.sort(key=lambda e: (e.start, e.end))
        buckets = {b: 0 for b in BUCKETS}
        operand_wait = 0
        prev_end = 0
        for e in pe_events:
            gap_start, gap_end = prev_end, e.start
            if gap_end > gap_start:
                # The gap splits at the next task's dispatch and operand
                # arrival: [gap_start, dispatch) nothing was in the slot;
                # [dispatch, op_ready) exposed memory wait; [op_ready,
                # gap_end) event-ordering residue, treated like the
                # pre-dispatch segment.
                d = min(max(e.dispatch, gap_start), gap_end) \
                    if e.dispatch >= 0 else gap_end
                r = min(max(e.op_ready, d), gap_end) \
                    if e.op_ready >= 0 else d
                operand_wait += r - d
                for a, b in ((gap_start, d), (r, gap_end)):
                    if b > a:
                        inflight = coverage.covered(a, b)
                        buckets["dependency_wait"] += inflight
                        buckets["scheduler_idle"] += (b - a) - inflight
            buckets["compute"] += e.end - e.start
            compute_by_type[e.ttype] = (
                compute_by_type.get(e.ttype, 0) + e.end - e.start
            )
            prev_end = e.end
        # The tail after the last retire is the classic imbalance bucket:
        # this PE has run dry while the machine finishes elsewhere.  A PE
        # that never ran anything is pure imbalance too.
        buckets["load_imbalance"] += max(0, total_cycles - prev_end)
        cache, noc, hbm = _split_memory_wait(operand_wait, cache_w,
                                             noc_w, hbm_w)
        buckets["cache_stall"] += cache
        buckets["noc_stall"] += noc
        buckets["hbm_wait"] += hbm
        per_pe.append(buckets)

    attribution = CycleAttribution(
        total_cycles=int(total_cycles),
        n_pes=n_pes,
        per_pe=per_pe,
        compute_by_type=compute_by_type,
    )
    attribution.what_if = _what_if(attribution)
    attribution.check_conservation()
    return attribution


def _what_if(attribution: CycleAttribution) -> dict[str, int]:
    """First-order limiter estimates: removing a bucket saves its mean
    per-PE cycles off the makespan (never below the compute bound)."""
    n = attribution.n_pes or 1
    totals = attribution.totals()
    floor = max((b["compute"] for b in attribution.per_pe), default=0)

    def minus(*names: str) -> int:
        saved = sum(totals[b] for b in names) // n
        return max(floor, attribution.total_cycles - saved)

    return {
        "infinite_hbm_bw_cycles": minus("hbm_wait"),
        "perfect_cache_cycles": minus("cache_stall"),
        "zero_noc_stall_cycles": minus("noc_stall"),
        "perfect_balance_cycles": minus("load_imbalance"),
        "infinite_memory_cycles": minus("cache_stall", "noc_stall",
                                        "hbm_wait"),
    }


# -- critical path -------------------------------------------------------------


@dataclass
class PathStep:
    """One executed task on the critical path, with its leading gap."""

    sn: int
    task_index: int
    ttype: str
    pe: int
    start: int
    end: int
    gap_dependency: int = 0   # pre-dispatch wait since the previous step
    gap_resource: int = 0     # dispatch -> execution-start wait

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "sn": self.sn, "task_index": self.task_index,
            "ttype": self.ttype, "pe": self.pe,
            "start": self.start, "end": self.end,
            "gap_dependency": self.gap_dependency,
            "gap_resource": self.gap_resource,
        }


@dataclass
class CriticalPath:
    """The longest duration-weighted dependence chain of one run."""

    cp_cycles: int
    total_cycles: int
    steps: list[PathStep]

    @property
    def slack_cycles(self) -> int:
        """Observed cycles not explained by the chain's task durations
        (gaps on the path + start-up/drain outside it)."""
        return self.total_cycles - self.cp_cycles

    def by_task_type(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.steps:
            out[s.ttype] = out.get(s.ttype, 0) + s.duration
        return out

    def by_supernode(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for s in self.steps:
            out[s.sn] = out.get(s.sn, 0) + s.duration
        return out

    def top_supernodes(self, k: int = 5) -> list[tuple[int, int]]:
        """The k supernodes carrying the most critical-path cycles."""
        return sorted(self.by_supernode().items(),
                      key=lambda kv: -kv[1])[:k]

    def top_task_types(self, k: int = 5) -> list[tuple[str, int]]:
        return sorted(self.by_task_type().items(),
                      key=lambda kv: -kv[1])[:k]

    def gap_breakdown(self) -> dict[str, int]:
        """Total inter-step wait on the path, by cause."""
        return {
            "dependency": sum(s.gap_dependency for s in self.steps),
            "resource": sum(s.gap_resource for s in self.steps),
        }

    def to_dict(self) -> dict:
        return {
            "cp_cycles": self.cp_cycles,
            "total_cycles": self.total_cycles,
            "n_steps": len(self.steps),
            "by_task_type": self.by_task_type(),
            "top_supernodes": [
                {"sn": sn, "cycles": cycles}
                for sn, cycles in self.top_supernodes()
            ],
            "gaps": self.gap_breakdown(),
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CriticalPath":
        return cls(
            cp_cycles=data["cp_cycles"],
            total_cycles=data["total_cycles"],
            steps=[PathStep(
                sn=s["sn"], task_index=s["task_index"], ttype=s["ttype"],
                pe=s["pe"], start=s["start"], end=s["end"],
                gap_dependency=s.get("gap_dependency", 0),
                gap_resource=s.get("gap_resource", 0),
            ) for s in data.get("steps", [])],
        )

    def render(self, max_steps: int = 12) -> str:
        pct = 100.0 * self.cp_cycles / (self.total_cycles or 1)
        lines = [
            f"critical path: {self.cp_cycles} of {self.total_cycles} "
            f"cycles ({pct:.0f}%), {len(self.steps)} tasks",
            "top task types: " + ", ".join(
                f"{t} {c}" for t, c in self.top_task_types()),
            "top supernodes: " + ", ".join(
                f"S{sn} {c}" for sn, c in self.top_supernodes()),
            "path waits: " + ", ".join(
                f"{k} {v}" for k, v in self.gap_breakdown().items()),
        ]
        shown = self.steps[-max_steps:]
        if len(self.steps) > len(shown):
            lines.append(f"  ... {len(self.steps) - len(shown)} earlier "
                         "steps elided ...")
        for s in shown:
            waits = ""
            if s.gap_dependency or s.gap_resource:
                waits = (f"  (+{s.gap_dependency} dep, "
                         f"+{s.gap_resource} res)")
            lines.append(
                f"  S{s.sn:<5}#{s.task_index:<5}{s.ttype:<16}"
                f"[{s.start}, {s.end}) on PE{s.pe}{waits}"
            )
        return "\n".join(lines)


def critical_path(events: list, plan, order: str = "bf") -> CriticalPath:
    """Extract the longest weighted dependence chain of an executed run.

    Dependences joined per event: the intra-supernode edges of
    ``plan.task_graph(sn)``, plus — for a supernode's entry tasks (no
    intra deps) — the last-retiring event of each child supernode (the
    scheduler launches a supernode only after its children fully factor,
    so the edge is always respected by the executed timeline).

    The returned ``cp_cycles`` is a guaranteed lower bound on the
    observed makespan: every successor's start is >= all its
    dependences' ends, so summed durations along any chain fit inside
    the final event's end cycle.
    """
    if not events:
        return CriticalPath(cp_cycles=0, total_cycles=0, steps=[])
    by_key = {(e.sn, e.task_index): e for e in events}
    sns = sorted({e.sn for e in events})
    deps_of: dict[int, list[list[int]]] = {
        sn: plan.task_graph(sn, order=order).deps for sn in sns
    }
    last_of_sn: dict[int, object] = {}
    for e in events:
        last = last_of_sn.get(e.sn)
        if last is None or e.end > last.end:
            last_of_sn[e.sn] = e
    children_of = {
        sn: [c for c in plan.symbolic.tree.supernodes[sn].children
             if c in last_of_sn]
        for sn in sns
    }

    def deps(e) -> list:
        intra = [by_key[(e.sn, d)] for d in deps_of[e.sn][e.task_index]
                 if (e.sn, d) in by_key]
        if intra:
            return intra
        return [last_of_sn[c] for c in children_of[e.sn]]

    # Dependences always end at or before a successor starts, so ascending
    # start order is a topological order of the executed DAG.
    ordered = sorted(events, key=lambda e: (e.start, e.end, e.pe))
    dp: dict[tuple[int, int], int] = {}
    pred: dict[tuple[int, int], tuple[int, int] | None] = {}
    for e in ordered:
        best, best_key = 0, None
        for d in deps(e):
            key = (d.sn, d.task_index)
            if dp[key] > best:
                best, best_key = dp[key], key
        dp[(e.sn, e.task_index)] = best + e.duration
        pred[(e.sn, e.task_index)] = best_key

    tail_key = max(dp, key=lambda k: dp[k])
    chain: list = []
    key: tuple[int, int] | None = tail_key
    while key is not None:
        chain.append(by_key[key])
        key = pred[key]
    chain.reverse()

    steps: list[PathStep] = []
    prev_end = None
    for e in chain:
        gap_dep = gap_res = 0
        if prev_end is not None and e.start > prev_end:
            gap = e.start - prev_end
            if e.dispatch >= 0:
                gap_dep = min(max(e.dispatch - prev_end, 0), gap)
            gap_res = gap - gap_dep
        steps.append(PathStep(
            sn=e.sn, task_index=e.task_index, ttype=e.ttype, pe=e.pe,
            start=e.start, end=e.end,
            gap_dependency=gap_dep, gap_resource=gap_res,
        ))
        prev_end = e.end
    total = max(e.end for e in events)
    return CriticalPath(cp_cycles=dp[tail_key], total_cycles=total,
                        steps=steps)
