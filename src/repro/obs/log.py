"""Stdlib-logging setup for the ``repro`` package.

Every module logs through ``logging.getLogger("repro.<module>")``; this
helper attaches one stderr handler to the package root logger so the CLI's
``-v`` / ``--log-level`` flags (and library users) can turn output on with
one call.  Calling it again just updates the level (idempotent — no
duplicate handlers)."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def setup_logging(level: int | str = logging.WARNING) -> logging.Logger:
    """Configure the ``repro`` root logger; returns it.

    Args:
        level: a logging level name ("debug", "INFO", ...) or constant.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
        level = numeric
    logger = logging.getLogger("repro")
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def verbosity_to_level(verbosity: int) -> int:
    """Map ``-v`` count to a logging level (0 -> WARNING, 1 -> INFO,
    2+ -> DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG
