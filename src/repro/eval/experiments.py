"""Experiment drivers: one function per table/figure of the paper.

All drivers share :class:`EvalSettings` (matrix scale + hardware config +
amalgamation knobs) and a per-process symbolic-analysis cache, because the
symbolic factorization of a pattern is reused across experiments exactly
as the paper's own methodology reuses it across runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.arch.config import SpatulaConfig
from repro.arch.energy import area_breakdown, power_breakdown
from repro.arch.sim import SpatulaSim
from repro.arch.stats import SimReport
from repro.baselines.cpu import CPUModel, CPUResult
from repro.baselines.gpu import GPU_A100, GPU_H100, GPU_V100, GPUModel, GPUResult
from repro.baselines.roofline import gpu_dense_roofline
from repro.sparse.suite import cholesky_suite, get_spec, lu_suite
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize
from repro.tasks.plan import FactorizationPlan, build_plan


@dataclass(frozen=True)
class EvalSettings:
    """Shared experiment settings.

    Attributes:
        scale: suite matrix scale (1.0 = default scaled-down sizes; smaller
            values shrink matrices further for quick benches).
        config: the Spatula instance to simulate.
        relax_small / relax_ratio / force_small: supernode amalgamation
            (defaults tuned for T=16 fronts; see DESIGN.md).
    """

    scale: float = 1.0
    config: SpatulaConfig = field(default_factory=SpatulaConfig.paper)
    relax_small: int = 32
    relax_ratio: float = 0.5
    force_small: int = 64

    @classmethod
    def quick(cls, **overrides) -> "EvalSettings":
        """Fast settings for benches/CI: smaller matrices, same machine."""
        base = cls(scale=0.4)
        return replace(base, **overrides) if overrides else base


@dataclass
class SuiteRow:
    """One row of Table 3 / Table 4."""

    name: str
    kind: str
    n: int
    flops: int
    report: SimReport
    gpu: GPUResult
    cpu: CPUResult

    @property
    def spatula_tflops(self) -> float:
        return self.report.achieved_tflops

    @property
    def speedup_vs_gpu(self) -> float:
        return self.gpu.seconds / self.report.seconds

    @property
    def speedup_vs_cpu(self) -> float:
        return self.cpu.seconds / self.report.seconds


_SYMBOLIC_CACHE: dict[tuple, SymbolicFactorization] = {}
_PLAN_CACHE: dict[tuple, FactorizationPlan] = {}


def analyze_suite_matrix(
    name: str, settings: EvalSettings
) -> SymbolicFactorization:
    """Build + symbolically factor a suite matrix (cached per process)."""
    key = (name, settings.scale, settings.relax_small,
           settings.relax_ratio, settings.force_small)
    if key not in _SYMBOLIC_CACHE:
        spec = get_spec(name)
        matrix = spec.build(settings.scale)
        kind = "cholesky" if spec.kind == "spd" else "lu"
        _SYMBOLIC_CACHE[key] = symbolic_factorize(
            matrix, kind=kind, ordering=spec.ordering,
            relax_small=settings.relax_small,
            relax_ratio=settings.relax_ratio,
            force_small=settings.force_small,
        )
    return _SYMBOLIC_CACHE[key]


def _plan_for(name: str, settings: EvalSettings) -> FactorizationPlan:
    key = (name, settings.scale, settings.relax_small,
           settings.relax_ratio, settings.force_small,
           settings.config.tile, settings.config.supertile)
    if key not in _PLAN_CACHE:
        symbolic = analyze_suite_matrix(name, settings)
        _PLAN_CACHE[key] = build_plan(
            symbolic, tile=settings.config.tile,
            supertile=settings.config.supertile,
        )
    return _PLAN_CACHE[key]


def run_suite_matrix(name: str, settings: EvalSettings | None = None
                     ) -> SuiteRow:
    """Simulate Spatula + both baselines on one suite matrix."""
    settings = settings or EvalSettings()
    symbolic = analyze_suite_matrix(name, settings)
    plan = _plan_for(name, settings)
    report = SpatulaSim(plan, settings.config, matrix_name=name).run()
    gpu = GPUModel(GPU_V100).run(symbolic)
    cpu = CPUModel().run(symbolic)
    return SuiteRow(
        name=name, kind=symbolic.kind, n=symbolic.n,
        flops=symbolic.flops, report=report, gpu=gpu, cpu=cpu,
    )


def _run_suite(names: list[str], settings: EvalSettings) -> list[SuiteRow]:
    return [run_suite_matrix(name, settings) for name in names]


def gmean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table2(settings: EvalSettings | None = None) -> dict[str, float]:
    """Table 2: configuration and area of Spatula as evaluated."""
    settings = settings or EvalSettings()
    return area_breakdown(settings.config)


def table3(settings: EvalSettings | None = None,
           names: list[str] | None = None) -> list[SuiteRow]:
    """Table 3: Cholesky performance + speedups over GPU and CPU."""
    settings = settings or EvalSettings()
    names = names or [s.name for s in cholesky_suite()]
    return _run_suite(names, settings)


def table4(settings: EvalSettings | None = None,
           names: list[str] | None = None) -> list[SuiteRow]:
    """Table 4: LU performance + speedups over GPU and CPU."""
    settings = settings or EvalSettings()
    names = names or [s.name for s in lu_suite()]
    return _run_suite(names, settings)


def table5(settings: EvalSettings | None = None,
           names: list[str] | None = None) -> list[dict]:
    """Table 5: STRUMPACK(-style model) on V100 / A100 / H100.

    Returns one dict per GPU with gmean GFLOP/s and utilization over the
    LU suite.
    """
    settings = settings or EvalSettings()
    names = names or [s.name for s in lu_suite()]
    out = []
    for spec in (GPU_V100, GPU_A100, GPU_H100):
        model = GPUModel(spec)
        rates = []
        for name in names:
            symbolic = analyze_suite_matrix(name, settings)
            rates.append(model.run(symbolic).gflops)
        g = gmean(rates)
        out.append({
            "gpu": spec.name,
            "gmean_gflops": g,
            "gmean_util_pct": 100.0 * g / spec.peak_gflops,
        })
    return out


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

FIGURE5_MATRICES = ["atmosmodd", "ML_Geer", "human_gene1", "FullChip"]


def figure5(settings: EvalSettings | None = None) -> list[dict]:
    """Figure 5: baseline GFLOP/s on four representative LU matrices."""
    settings = settings or EvalSettings()
    rows = []
    gpu = GPUModel(GPU_V100)
    cpu = CPUModel()
    for name in FIGURE5_MATRICES:
        symbolic = analyze_suite_matrix(name, settings)
        rows.append({
            "matrix": name,
            "gpu_gflops": gpu.run(symbolic).gflops,
            "cpu_gflops": cpu.run(symbolic).gflops,
        })
    return rows


def figure6(settings: EvalSettings | None = None,
            names: tuple[str, str] = ("atmosmodd", "FullChip")
            ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figure 6: CDF of FLOPs by supernode size for two extreme matrices.

    Returns {matrix: (sizes, cdf)} where cdf[i] is the fraction of total
    FLOPs in supernodes of size <= sizes[i].
    """
    settings = settings or EvalSettings()
    out = {}
    for name in names:
        symbolic = analyze_suite_matrix(name, settings)
        sizes = symbolic.supernode_sizes()
        flops = symbolic.supernode_flops().astype(float)
        order = np.argsort(sizes)
        sizes, flops = sizes[order], flops[order]
        cdf = np.cumsum(flops) / flops.sum()
        out[name] = (sizes, cdf)
    return out


def figure7(sizes: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Figure 7: GPU dense LU GFLOP/s vs matrix size (roofline curve)."""
    if sizes is None:
        sizes = np.arange(500, 25001, 500)
    curve = gpu_dense_roofline().curve(sizes)
    return np.asarray(sizes), curve


FIGURE14_MATRICES = ["Emilia_923", "boneS10", "bmwcra_1", "G3_circuit"]
FIGURE14_POLICIES = ("inter", "intra", "intra+inter")


def figure14(settings: EvalSettings | None = None,
             names: list[str] | None = None) -> list[dict]:
    """Figure 14: scheduler-policy comparison (Inter / Intra / Intra+Inter).

    Returns one dict per matrix with achieved GFLOP/s under each policy.
    """
    settings = settings or EvalSettings()
    names = names or FIGURE14_MATRICES
    rows = []
    for name in names:
        plan = _plan_for(name, settings)
        entry = {"matrix": name}
        for policy in FIGURE14_POLICIES:
            config = replace(settings.config, policy=policy)
            report = SpatulaSim(plan, config, matrix_name=name).run()
            entry[policy] = report.achieved_tflops * 1e3  # GFLOP/s
        rows.append(entry)
    return rows


def figure16(rows: list[SuiteRow]) -> list[dict]:
    """Figure 16: per-matrix PE cycle breakdown by task type + stalls."""
    return [
        {"matrix": row.name, **row.report.cycle_breakdown()} for row in rows
    ]


def figure17(rows: list[SuiteRow]) -> list[dict]:
    """Figure 17: per-matrix DRAM traffic breakdown + average bandwidth."""
    out = []
    for row in rows:
        entry = {
            "matrix": row.name,
            "total_gb": row.report.total_dram_bytes / 1e9,
            "avg_gbs": row.report.avg_bandwidth_gbs,
        }
        entry.update(row.report.traffic_fractions())
        out.append(entry)
    return out


def figure18(rows: list[SuiteRow]) -> list[dict]:
    """Figure 18: per-matrix power breakdown (PEs / Cache / NoC / HBM)."""
    return [
        {"matrix": row.name, **power_breakdown(row.report)} for row in rows
    ]


FIGURE19_MATRICES = {
    "cholesky": ["af_0_k101", "G3_circuit"],
    "lu": ["FullChip", "rajat31"],
}


def figure19(settings: EvalSettings | None = None,
             names: list[str] | None = None
             ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figure 19: CDFs of concurrently executing supernodes."""
    settings = settings or EvalSettings()
    names = names or (FIGURE19_MATRICES["cholesky"]
                      + FIGURE19_MATRICES["lu"])
    out = {}
    for name in names:
        row = run_suite_matrix(name, settings)
        out[name] = row.report.concurrency_cdf()
    return out


DSE_SWEEP = [
    # (n_pes, tile, cache_mb, hbm_phys) points spanning the Figure 20 space.
    (8, 16, 4.0, 1),
    (16, 16, 8.0, 1),
    (16, 16, 16.0, 2),
    (32, 16, 8.0, 1),
    (32, 16, 16.0, 2),     # the selected (Table 2) configuration
    (32, 16, 32.0, 2),
    (48, 16, 16.0, 2),
    (64, 16, 16.0, 2),
    (64, 16, 32.0, 4),
    (32, 8, 16.0, 2),
    (32, 32, 16.0, 2),
]


def figure20(settings: EvalSettings | None = None,
             names: list[str] | None = None,
             sweep: list[tuple] | None = None) -> list[dict]:
    """Figure 20: design-space exploration — gmean speedup vs area.

    Sweeps PE count, tile size, cache size, and HBM PHYs; each point
    reports its area and gmean speedup over the GPU baseline across a
    small representative matrix set.
    """
    settings = settings or EvalSettings()
    names = names or ["Serena", "bone010", "G3_circuit", "bmwcra_1"]
    sweep = sweep or DSE_SWEEP
    gpu = GPUModel(GPU_V100)
    points = []
    for n_pes, tile, cache_mb, phys in sweep:
        config = replace(
            settings.config, n_pes=n_pes, tile=tile, cache_mb=cache_mb,
            hbm_phys=phys, cache_banks=min(32, max(8, n_pes)),
        )
        cfg_settings = replace(settings, config=config)
        speedups = []
        for name in names:
            symbolic = analyze_suite_matrix(name, cfg_settings)
            plan = _plan_for(name, cfg_settings)
            report = SpatulaSim(plan, config, matrix_name=name).run()
            speedups.append(gpu.run(symbolic).seconds / report.seconds)
        points.append({
            "n_pes": n_pes, "tile": tile, "cache_mb": cache_mb,
            "hbm_phys": phys,
            "area_mm2": area_breakdown(config)["Total"],
            "gmean_speedup": gmean(speedups),
            "selected": (n_pes, tile, cache_mb, phys) == (32, 16, 16.0, 2),
        })
    return points
