"""Experiment drivers and renderers for every table and figure in the
paper's evaluation (Section 7), plus the Section 3 motivation figures.

Each ``figure*`` / ``table*`` function regenerates the data behind the
corresponding exhibit; ``repro.eval.report`` renders them as the text
tables the paper prints.  See DESIGN.md section 4 for the experiment
index and ``benchmarks/`` for the bench entry points.
"""

from repro.eval.experiments import (
    EvalSettings,
    SuiteRow,
    analyze_suite_matrix,
    figure5,
    figure6,
    figure7,
    figure14,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20,
    run_suite_matrix,
    table2,
    table3,
    table4,
    table5,
)
from repro.eval.report import (
    render_cdf,
    render_dse,
    render_cycle_breakdown,
    render_power,
    render_suite_table,
    render_traffic,
)

__all__ = [
    "EvalSettings",
    "SuiteRow",
    "analyze_suite_matrix",
    "run_suite_matrix",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure5",
    "figure6",
    "figure7",
    "figure14",
    "figure16",
    "figure17",
    "figure18",
    "figure19",
    "figure20",
    "render_suite_table",
    "render_cycle_breakdown",
    "render_traffic",
    "render_power",
    "render_cdf",
    "render_dse",
]
