"""Text renderers for the evaluation exhibits.

Each renderer turns a driver's output (see ``repro.eval.experiments``)
into the table the paper prints, so benches and EXPERIMENTS.md show
paper-shaped rows.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import SuiteRow, gmean


def render_suite_table(rows: list[SuiteRow], title: str) -> str:
    """Render Table 3 / Table 4: TFLOP/s + speedups per matrix."""
    lines = [
        title,
        f"{'Matrix':<18}{'Spatula TFLOP/s':>16}{'vs. GPU':>10}{'vs. CPU':>10}",
        "-" * 54,
    ]
    for row in rows:
        lines.append(
            f"{row.name:<18}{row.spatula_tflops:>16.2f}"
            f"{row.speedup_vs_gpu:>10.1f}{row.speedup_vs_cpu:>10.1f}"
        )
    lines.append("-" * 54)
    lines.append(
        f"{'gmean':<18}{gmean(r.spatula_tflops for r in rows):>16.2f}"
        f"{gmean(r.speedup_vs_gpu for r in rows):>10.1f}"
        f"{gmean(r.speedup_vs_cpu for r in rows):>10.1f}"
    )
    return "\n".join(lines)


def render_cycle_breakdown(entries: list[dict], title: str) -> str:
    """Render Figure 16: fraction of PE cycles per task type."""
    cols = ["dgemm", "tsolve", "dchol", "dlu", "gather_updates", "stalled"]
    header = f"{'Matrix':<18}" + "".join(f"{c:>9}" for c in
                                         ["gemm", "tsolv", "chol", "lu",
                                          "gather", "stall"])
    lines = [title, header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e['matrix']:<18}"
            + "".join(f"{100 * e[c]:>8.1f}%" for c in cols)
        )
    return "\n".join(lines)


def render_traffic(entries: list[dict], title: str) -> str:
    """Render Figure 17: traffic fractions + average bandwidth."""
    cols = ["comp_load", "gather_load", "factor_load", "store_spill",
            "store_result"]
    header = (f"{'Matrix':<18}{'GB':>8}{'GB/s':>8}"
              + "".join(f"{c.split('_')[-1][:6]:>8}" for c in cols))
    lines = [title, header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e['matrix']:<18}{e['total_gb']:>8.2f}{e['avg_gbs']:>8.0f}"
            + "".join(f"{100 * e[c]:>7.1f}%" for c in cols)
        )
    return "\n".join(lines)


def render_power(entries: list[dict], title: str) -> str:
    """Render Figure 18: watts per component."""
    cols = ["PEs", "Cache", "NoC", "HBM", "Total"]
    header = f"{'Matrix':<18}" + "".join(f"{c:>8}" for c in cols)
    lines = [title, header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e['matrix']:<18}" + "".join(f"{e[c]:>7.1f}W" for c in cols)
        )
    return "\n".join(lines)


def render_cdf(name: str, xs: np.ndarray, ys: np.ndarray,
               x_label: str, n_points: int = 8) -> str:
    """Render a CDF as a compact row of (x: cdf) samples."""
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if len(xs) == 0:
        return f"{name}: (empty)"
    picks = np.unique(
        np.linspace(0, len(xs) - 1, min(n_points, len(xs))).astype(int)
    )
    samples = "  ".join(f"{x_label}<={xs[i]}: {ys[i]:.2f}" for i in picks)
    return f"{name}: {samples}"


def render_dse(points: list[dict], title: str) -> str:
    """Render Figure 20: area vs gmean speedup points."""
    lines = [
        title,
        f"{'PEs':>4}{'T':>4}{'MB':>6}{'PHYs':>5}{'area mm2':>10}"
        f"{'gmean speedup':>15}",
    ]
    for p in sorted(points, key=lambda q: q["area_mm2"]):
        mark = "  <- selected" if p.get("selected") else ""
        lines.append(
            f"{p['n_pes']:>4}{p['tile']:>4}{p['cache_mb']:>6.0f}"
            f"{p['hbm_phys']:>5}{p['area_mm2']:>10.1f}"
            f"{p['gmean_speedup']:>15.1f}{mark}"
        )
    return "\n".join(lines)
