"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``suite``    — list the evaluation matrices (Tables 3/4);
* ``info``     — matrix statistics + symbolic-factorization summary;
* ``solve``    — factor and solve A x = b, report the residual;
* ``simulate`` — run the Spatula cycle-level simulator and print the
  report (optionally an ASCII Gantt chart, a Chrome trace JSON, and a
  ``--metrics`` run-artifact JSON with spans + component counters);
* ``compare``  — Spatula vs the GPU/CPU baseline models on one matrix;
* ``report``   — pretty-print a run artifact, ``--diff`` two artifacts
  (exit non-zero when a watched metric regresses past ``--threshold``),
  or ``--html`` render one artifact into a self-contained HTML page;
* ``history``  — append-only artifact history store: ``add`` / ``list`` /
  ``trend`` / ``check`` (trend-based regression gate over the last N
  same-key runs);
* ``verify``   — seeded, time-budgeted differential fuzzing campaign
  (cross-configuration agreement + oracle checks; failing cases are
  shrunk to replayable JSON repros, replayed with ``--replay``).

Global flags (before the command): ``-v``/``-vv`` or ``--log-level`` turn
on stdlib logging from the whole stack.

Matrices are named either ``suite:NAME[@SCALE]`` (e.g. ``suite:Serena``,
``suite:FullChip@0.5``) or a MatrixMarket file path.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

import numpy as np

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.baselines import CPUModel, GPUModel
from repro.numeric.solver import SparseSolver
from repro.numeric.tuning import get_tuning
from repro.obs import (
    global_registry,
    HistoryStore,
    MetricsRegistry,
    RunArtifact,
    check_trend,
    diff_artifacts,
    disable_tracing,
    enable_tracing,
    render_artifact,
    render_diff,
    render_history,
    render_trend_series,
    setup_logging,
    span,
    verbosity_to_level,
    write_html_report,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.io import read_matrix_market
from repro.sparse.suite import cholesky_suite, get_matrix, get_spec, lu_suite
from repro.symbolic.analyze import symbolic_factorize
from repro.tasks.plan import build_plan

logger = logging.getLogger(__name__)


def load_matrix(spec: str) -> tuple[CSCMatrix, str, str]:
    """Resolve a matrix argument to (matrix, default_kind, ordering)."""
    if spec.startswith("suite:"):
        name = spec[len("suite:"):]
        scale = 1.0
        if "@" in name:
            name, scale_str = name.split("@", 1)
            scale = float(scale_str)
        entry = get_spec(name)
        kind = "cholesky" if entry.kind == "spd" else "lu"
        return get_matrix(name, scale=scale), kind, entry.ordering
    matrix = CSCMatrix.from_coo(read_matrix_market(spec))
    kind = "cholesky" if matrix.is_symmetric() else "lu"
    return matrix, kind, "amd"


def _config_from_args(args) -> SpatulaConfig:
    overrides = {}
    for field in ("n_pes", "tile", "cache_mb", "policy", "order",
                  "sn_order"):
        value = getattr(args, field.replace("-", "_"), None)
        if value is not None:
            overrides[field] = value
    return SpatulaConfig.paper(**overrides)


def cmd_suite(_args) -> int:
    print(f"{'name':<18}{'kind':<8}{'ordering':<10}domain")
    for spec in cholesky_suite() + lu_suite():
        print(f"{spec.name:<18}{spec.kind:<8}{spec.ordering:<10}"
              f"{spec.domain}")
    return 0


def cmd_info(args) -> int:
    matrix, kind, ordering = load_matrix(args.matrix)
    kind = args.kind or kind
    print(f"n = {matrix.n_rows}, nnz = {matrix.nnz} "
          f"({matrix.nnz / matrix.n_rows:.1f}/row)")
    print(f"structurally symmetric: {matrix.is_structurally_symmetric()}")
    symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    sizes = symbolic.supernode_sizes()
    print(f"symbolic [{kind}, {ordering}]: nnz(L) = {symbolic.factor_nnz} "
          f"({symbolic.factor_nnz / max(1, matrix.nnz):.1f}x fill), "
          f"{symbolic.flops / 1e9:.3f} GFLOP")
    print(f"supernodes: {symbolic.n_supernodes} "
          f"(median front {int(np.median(sizes))}, max {sizes.max()})")
    return 0


def cmd_solve(args) -> int:
    tracer = None
    if args.metrics:
        tracer = enable_tracing()
        tracer.reset()
    try:
        with span("pipeline.load_matrix"):
            matrix, kind, ordering = load_matrix(args.matrix)
        kind = args.kind or kind
        solver = SparseSolver(matrix, kind=kind, ordering=ordering,
                              workers=args.workers,
                              block_size=args.block_size)
        rng = np.random.default_rng(args.seed)
        if args.refine:
            shape = (matrix.n_rows, args.rhs) if args.rhs > 1 \
                else matrix.n_rows
            b = rng.standard_normal(shape)
            result = solver.solve_refined(matrix, b)
            label = f" over {args.rhs} right-hand sides" \
                if args.rhs > 1 else ""
            print(f"residual {result.residual_norm:.3e}{label} after "
                  f"{result.iterations} refinement sweep(s)")
        elif args.rhs > 1:
            b = rng.standard_normal((matrix.n_rows, args.rhs))
            x = solver.solve(b)
            worst = max(
                solver.residual_norm(matrix, x[:, j], b[:, j])
                for j in range(args.rhs)
            )
            print(f"worst residual over {args.rhs} right-hand sides "
                  f"{worst:.3e}")
        else:
            b = rng.standard_normal(matrix.n_rows)
            x = solver.solve(b)
            print(f"residual {solver.residual_norm(matrix, x, b):.3e}")
        print(f"factor nnz {solver.factor_nnz}")
        if args.metrics:
            from repro.numeric.engine import last_factor_attribution

            tuning = get_tuning()
            numeric_att = last_factor_attribution()
            artifact = RunArtifact(
                matrix=args.matrix, kind=kind, n=matrix.n_rows,
                config={
                    "workers": args.workers or tuning.workers,
                    "block_size": args.block_size or tuning.block_size,
                    "rhs": args.rhs,
                },
                report={},
                metrics=global_registry().snapshot(),
                spans=[s.to_dict() for s in tracer.spans],
                attribution=(
                    {"numeric": numeric_att} if numeric_att else None
                ),
                created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
            )
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(tracer.spans)} spans, "
                  f"{len(artifact.metrics)} metrics)")
        return 0
    finally:
        if tracer is not None:
            disable_tracing()


def cmd_simulate(args) -> int:
    tracer = None
    if args.metrics:
        # Spans for every pipeline phase land in the run artifact.
        tracer = enable_tracing(trace_memory=args.trace_memory)
        tracer.reset()
    try:
        with span("pipeline.load_matrix"):
            matrix, kind, ordering = load_matrix(args.matrix)
        kind = args.kind or kind
        config = _config_from_args(args)
        symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                      relax_small=32, relax_ratio=0.5,
                                      force_small=64)
        plan = build_plan(symbolic, tile=config.tile,
                          supertile=config.supertile)
        executor = None
        if args.check:
            from repro.arch.functional import TileExecutor

            executor = TileExecutor(plan, matrix)
        registry = MetricsRegistry() if args.metrics else None
        # --metrics implies tracing: the artifact's attribution section
        # (cycle accounting + critical path) is derived from the trace.
        sim = SpatulaSim(plan, config, matrix_name=args.matrix,
                         executor=executor,
                         trace=bool(args.gantt or args.trace
                                    or args.metrics),
                         metrics=registry)
        report = sim.run()
        print(report.summary())
        bd = report.cycle_breakdown()
        print("cycles: " + ", ".join(f"{k} {100 * v:.1f}%"
                                     for k, v in bd.items() if v > 0.001))
        print("traffic: " + ", ".join(
            f"{k} {v / 1e6:.2f} MB"
            for k, v in report.traffic_bytes.items()))
        print(f"load imbalance {report.load_imbalance():.2f}, "
              f"peak live footprint "
              f"{report.peak_live_front_bytes / 1024:.0f} KB")
        if executor is not None:
            err = executor.verify()
            print("numeric check passed "
                  f"(max reconstruction error {err:.2e})")
        if args.gantt:
            from repro.arch.trace import render_gantt

            print(render_gantt(sim.trace, config.n_pes))
        if args.trace:
            from repro.arch.trace import export_chrome_trace

            export_chrome_trace(sim.trace, args.trace, config.freq_ghz,
                                spans=tracer.spans if tracer else None)
            print(f"wrote Chrome trace to {args.trace}")
        if args.metrics:
            artifact = RunArtifact.from_run(report, tracer=tracer,
                                            attribution=sim.attribution())
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(tracer.spans)} spans, "
                  f"{len(report.metrics)} metrics, attribution)")
        return 0
    finally:
        if tracer is not None:
            disable_tracing()


def cmd_report(args) -> int:
    if args.diff:
        if len(args.files) != 2:
            raise ValueError("--diff needs exactly two artifact files")
        baseline = RunArtifact.load(args.files[0])
        new = RunArtifact.load(args.files[1])
        result = diff_artifacts(baseline, new, threshold=args.threshold)
        print(f"{baseline.matrix} [{baseline.kind}]: "
              f"{args.files[0]} -> {args.files[1]}")
        print(render_diff(result, show_unchanged=args.all))
        return 1 if result.has_regression else 0
    if args.html:
        if len(args.files) != 1:
            raise ValueError("--html renders exactly one artifact file")
        artifact = RunArtifact.load(args.files[0])
        history = trend = None
        if args.history:
            history = HistoryStore(args.history)
            trend = check_trend(history, artifact,
                                tolerance=args.threshold)
        write_html_report(artifact, args.html, history=history,
                          trend=trend)
        print(f"wrote HTML report to {args.html}")
        return 0
    for path in args.files:
        print(render_artifact(RunArtifact.load(path)))
    return 0


def cmd_history(args) -> int:
    if args.action in ("add", "check") and not args.file:
        raise ValueError(f"history {args.action} needs an artifact file")
    store = HistoryStore(args.dir)
    if args.action == "add":
        artifact = RunArtifact.load(args.file)
        entry = store.add(artifact)
        print(f"recorded {args.file} as {entry.path} "
              f"(key {entry.key})")
        return 0
    if args.action == "list":
        print(render_history(store))
        return 0
    if args.action == "trend":
        print(render_trend_series(store, args.metric, key=args.key))
        return 0
    # check: judge a new artifact against the rolling same-key median,
    # then (unless --no-add) record it so the window keeps moving.
    artifact = RunArtifact.load(args.file)
    report = check_trend(store, artifact, window=args.window,
                         tolerance=args.tolerance)
    print(report.render())
    if not args.no_add:
        entry = store.add(artifact)
        print(f"recorded as {entry.path}")
    return 1 if report.has_regression else 0


def cmd_verify(args) -> int:
    from repro.verify import (
        VerifyConfig,
        campaign_artifact,
        load_repro,
        replay_repro,
        run_verification,
    )

    if args.replay:
        repro = load_repro(args.replay)
        result = replay_repro(args.replay)
        print(f"replaying {repro.case} (n={repro.n}, kind={repro.kind}, "
              f"original axes: {', '.join(repro.axes)})")
        if result.failed:
            for m in result.mismatches:
                print(f"  MISMATCH [{m.axis}] {m.detail}")
            return 1
        print("  no mismatch: the failing case no longer reproduces")
        return 0

    config = VerifyConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        max_cases=args.cases,
        max_n=args.max_n,
        out_dir=args.out,
        shrink=not args.no_shrink,
    )
    summary = run_verification(config)
    print(summary.render())
    if args.metrics:
        artifact = campaign_artifact(summary, config)
        artifact.save(args.metrics)
        print(f"wrote run artifact to {args.metrics} "
              f"({len(artifact.metrics)} metrics)")
    return 0 if summary.ok else 1


def cmd_compare(args) -> int:
    matrix, kind, ordering = load_matrix(args.matrix)
    kind = args.kind or kind
    config = _config_from_args(args)
    symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    plan = build_plan(symbolic, tile=config.tile,
                      supertile=config.supertile)
    report = SpatulaSim(plan, config, matrix_name=args.matrix).run()
    gpu = GPUModel().run(symbolic)
    cpu = CPUModel().run(symbolic)
    print(f"{'platform':<12}{'time':>12}{'rate':>16}{'speedup':>9}")
    print(f"{'Spatula':<12}{report.seconds * 1e6:>10.1f}us"
          f"{report.achieved_tflops:>10.2f} TFLOP/s{'1.0x':>9}")
    print(f"{'V100 GPU':<12}{gpu.seconds * 1e6:>10.1f}us"
          f"{gpu.gflops / 1e3:>10.2f} TFLOP/s"
          f"{gpu.seconds / report.seconds:>8.1f}x")
    print(f"{'Zen2 CPU':<12}{cpu.seconds * 1e6:>10.1f}us"
          f"{cpu.gflops / 1e3:>10.2f} TFLOP/s"
          f"{cpu.seconds / report.seconds:>8.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatula (MICRO 2023) reproduction toolkit",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="increase log verbosity (-v info, -vv debug)")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="explicit log level (overrides -v)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="list evaluation matrices")

    def add_matrix_arg(p):
        p.add_argument("matrix",
                       help="suite:NAME[@SCALE] or a MatrixMarket path")
        p.add_argument("--kind", choices=["cholesky", "lu"], default=None)

    p_info = sub.add_parser("info", help="matrix + symbolic summary")
    add_matrix_arg(p_info)

    p_solve = sub.add_parser("solve", help="factor and solve Ax=b")
    add_matrix_arg(p_solve)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--refine", action="store_true",
                         help="use iterative refinement")
    p_solve.add_argument("--workers", type=int, default=None,
                         help="threads for the level-scheduled numeric "
                              "factorization (default: tuning)")
    p_solve.add_argument("--block-size", type=int, default=None,
                         help="dense-kernel panel width (default: tuning)")
    p_solve.add_argument("--rhs", type=int, default=1,
                         help="number of right-hand sides (solved as one "
                              "blocked panel)")
    p_solve.add_argument("--metrics", metavar="FILE", default=None,
                         help="write a run-artifact JSON (numeric-engine "
                              "metrics + pipeline spans)")

    def add_config_args(p):
        p.add_argument("--n-pes", type=int, default=None)
        p.add_argument("--tile", type=int, default=None)
        p.add_argument("--cache-mb", type=float, default=None)
        p.add_argument("--policy",
                       choices=["intra+inter", "intra", "inter"],
                       default=None)
        p.add_argument("--order", choices=["bf", "rowmajor"], default=None)
        p.add_argument("--sn-order", choices=["postorder", "fifo"],
                       default=None)

    p_sim = sub.add_parser("simulate", help="run the cycle-level simulator")
    add_matrix_arg(p_sim)
    add_config_args(p_sim)
    p_sim.add_argument("--check", action="store_true",
                       help="execute numerics and verify the factor")
    p_sim.add_argument("--gantt", action="store_true",
                       help="print an ASCII Gantt chart")
    p_sim.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace JSON")
    p_sim.add_argument("--metrics", metavar="FILE", default=None,
                       help="write a run-artifact JSON (config + report + "
                            "metrics registry + pipeline spans)")
    p_sim.add_argument("--trace-memory", action="store_true",
                       help="capture tracemalloc peak memory per span "
                            "(implies --metrics overhead)")

    p_cmp = sub.add_parser("compare", help="Spatula vs GPU/CPU baselines")
    add_matrix_arg(p_cmp)
    add_config_args(p_cmp)

    p_ver = sub.add_parser(
        "verify", help="differential fuzzing campaign (cross-config + "
                       "oracle checks, shrinks failures to JSON repros)"
    )
    p_ver.add_argument("--seed", type=int, default=0,
                       help="campaign seed; the case sequence is a pure "
                            "function of it (default 0)")
    p_ver.add_argument("--budget", type=float, default=60.0,
                       help="time budget in seconds (default 60)")
    p_ver.add_argument("--cases", type=int, default=None,
                       help="hard cap on the number of cases")
    p_ver.add_argument("--max-n", type=int, default=48,
                       help="largest generated matrix dimension "
                            "(default 48)")
    p_ver.add_argument("--out", default="repros", metavar="DIR",
                       help="directory for shrunk failing-case JSONs "
                            "(default: repros/)")
    p_ver.add_argument("--no-shrink", action="store_true",
                       help="report mismatches without minimizing them")
    p_ver.add_argument("--metrics", metavar="FILE", default=None,
                       help="write a run-artifact JSON (verify.* counters)")
    p_ver.add_argument("--replay", metavar="FILE", default=None,
                       help="re-run a shrunk failing-case JSON instead of "
                            "fuzzing")

    p_rep = sub.add_parser(
        "report", help="pretty-print, diff, or HTML-render run artifacts"
    )
    p_rep.add_argument("files", nargs="+",
                       help="artifact JSON file(s) from simulate --metrics")
    p_rep.add_argument("--diff", action="store_true",
                       help="compare two artifacts (baseline, new); exits "
                            "non-zero if a watched metric regresses")
    p_rep.add_argument("--threshold", type=float, default=0.05,
                       help="relative regression threshold (default 0.05)")
    p_rep.add_argument("--all", action="store_true",
                       help="with --diff, also show unchanged metrics")
    p_rep.add_argument("--html", metavar="FILE", default=None,
                       help="render one artifact into a self-contained "
                            "HTML page (attribution tree, utilization "
                            "timeline, trends)")
    p_rep.add_argument("--history", metavar="DIR", default=None,
                       help="with --html, include watched-metric trend "
                            "sparklines from this history store")

    p_hist = sub.add_parser(
        "history", help="artifact history store: trend-based regression "
                        "gate over the last N same-key runs"
    )
    p_hist.add_argument("action",
                        choices=["add", "list", "trend", "check"])
    p_hist.add_argument("file", nargs="?", default=None,
                        help="artifact JSON (required for add/check)")
    p_hist.add_argument("--dir", default=".repro-history", metavar="DIR",
                        help="history store directory "
                             "(default: .repro-history)")
    p_hist.add_argument("--metric", default="report.cycles",
                        help="metric for `trend` (default: report.cycles)")
    p_hist.add_argument("--key", default=None,
                        help="restrict `trend` to one run key")
    p_hist.add_argument("--window", type=int, default=8,
                        help="runs in the trend window (default 8)")
    p_hist.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance vs the window median "
                             "before `check` flags a regression "
                             "(default 0.05)")
    p_hist.add_argument("--no-add", action="store_true",
                        help="with `check`, judge only; do not record the "
                             "artifact afterwards")
    return parser


_COMMANDS = {
    "suite": cmd_suite,
    "info": cmd_info,
    "solve": cmd_solve,
    "simulate": cmd_simulate,
    "compare": cmd_compare,
    "report": cmd_report,
    "history": cmd_history,
    "verify": cmd_verify,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level if args.log_level is not None
                  else verbosity_to_level(args.verbose))
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a closed consumer (e.g. `| head`): the Unix
        # convention is to exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
