"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``suite``    — list the evaluation matrices (Tables 3/4);
* ``info``     — matrix statistics + symbolic-factorization summary;
* ``solve``    — factor and solve A x = b, report the residual;
* ``simulate`` — run the Spatula cycle-level simulator and print the
  report (optionally an ASCII Gantt chart, a Chrome trace JSON, and a
  ``--metrics`` run-artifact JSON with spans + component counters);
* ``compare``  — Spatula vs the GPU/CPU baseline models on one matrix;
* ``report``   — pretty-print a run artifact, ``--diff`` two artifacts
  (exit non-zero when a watched metric regresses past ``--threshold``),
  or ``--html`` render one artifact into a self-contained HTML page;
* ``history``  — append-only artifact history store: ``add`` / ``list`` /
  ``trend`` / ``check`` (trend-based regression gate over the last N
  same-key runs);
* ``verify``   — seeded, time-budgeted differential fuzzing campaign
  (cross-configuration agreement + oracle checks; failing cases are
  shrunk to replayable JSON repros, replayed with ``--replay``;
  ``--jobs N`` fans cases out over a process pool);
* ``telemetry`` — merge the per-process JSONL streams of a
  ``--telemetry-dir`` run into one clock-aligned timeline
  (``collect``: summary + optional Chrome trace / HTML / JSON exports;
  ``list``: enumerate runs in a directory);
* ``serve``    — long-lived multi-tenant solve server on a unix socket
  (NDJSON protocol, request coalescing into blocked multi-RHS panels;
  see docs/SERVING.md);
* ``serve-bench`` — load generator against an in-process solve server:
  closed-/open-loop traffic over fuzz-suite families, coalesced vs
  uncoalesced phases, bit-identity verification, ``serve.*`` gauges;
* ``serve-stats`` — one-shot poll of a running server's ``health`` +
  ``stats`` ops (pretty table, raw JSON, or Prometheus text for
  external scrapers);
* ``serve-top`` — live terminal dashboard over the same wire surface:
  per-worker lanes, rolling-window latency with a sparkline trend,
  slow-request exemplars (docs/SERVING.md "Operating the server");
* ``autotune`` — sweep ordering x block size x worker count for one
  matrix, record the trials into the history store keyed by the
  matrix-family fingerprint, and print the winning config — served
  later by ``solve --ordering auto`` and ``SparseSolver(ordering=
  "auto")`` (see docs/ORDERING.md).

``solve``, ``simulate``, ``verify``, and ``history`` share the runtime
observability flags: ``--telemetry-dir DIR`` records run-scoped
telemetry (per-process JSONL event streams, merged on exit into a
Chrome trace + HTML lane report + ``latency.*`` percentile gauges) and
``--profile`` adds wall-clock profiling (cProfile + sampling profiler,
top-function table + flamegraph).  See docs/OBSERVABILITY.md.

Global flags (before the command): ``-v``/``-vv`` or ``--log-level`` turn
on stdlib logging from the whole stack.

Matrices are named ``suite:NAME[@SCALE]`` (e.g. ``suite:Serena``,
``suite:FullChip@0.5``), ``fuzz:FAMILY[@SEED]`` (a deterministic
fuzz-suite case, e.g. ``fuzz:spd_mesh@3``), or a MatrixMarket file path.
"""

from __future__ import annotations

import argparse
import json
import logging
import multiprocessing
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.baselines import CPUModel, GPUModel
from repro.numeric.solver import SparseSolver
from repro.numeric.tuning import get_tuning
from repro.obs import (
    global_registry,
    HistoryStore,
    MetricsRegistry,
    Profiler,
    RunArtifact,
    check_trend,
    diff_artifacts,
    disable_tracing,
    enable_tracing,
    flamegraph_svg,
    render_artifact,
    render_diff,
    render_history,
    render_trend_series,
    setup_logging,
    span,
    telemetry,
    timeline_chrome_trace,
    verbosity_to_level,
    write_html_report,
    write_timeline_report,
)
from repro.obs.profile import PROFILE_MODES
from repro.ordering.autotune import BUDGETS
from repro.ordering.registry import available_orderings
from repro.serve.metrics import (
    REQUEST_PHASE,
    LatencyRecorder,
    export_serve_gauges,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.io import read_matrix_market
from repro.sparse.suite import cholesky_suite, get_matrix, get_spec, lu_suite
from repro.symbolic.analyze import symbolic_factorize
from repro.tasks.plan import build_plan

logger = logging.getLogger(__name__)


def load_matrix(spec: str) -> tuple[CSCMatrix, str, str]:
    """Resolve a matrix argument to (matrix, default_kind, ordering)."""
    if spec.startswith("fuzz:"):
        from repro.verify.generators import build_case

        name = spec[len("fuzz:"):]
        seed = 0
        if "@" in name:
            name, seed_str = name.split("@", 1)
            seed = int(seed_str)
        case = build_case(name, seed, max_n=96)
        return case.matrix, case.kind, "amd"
    if spec.startswith("suite:"):
        name = spec[len("suite:"):]
        scale = 1.0
        if "@" in name:
            name, scale_str = name.split("@", 1)
            scale = float(scale_str)
        entry = get_spec(name)
        kind = "cholesky" if entry.kind == "spd" else "lu"
        return get_matrix(name, scale=scale), kind, entry.ordering
    matrix = CSCMatrix.from_coo(read_matrix_market(spec))
    kind = "cholesky" if matrix.is_symmetric() else "lu"
    return matrix, kind, "amd"


def _config_from_args(args) -> SpatulaConfig:
    overrides = {}
    for field in ("n_pes", "tile", "cache_mb", "policy", "order",
                  "sn_order"):
        value = getattr(args, field.replace("-", "_"), None)
        if value is not None:
            overrides[field] = value
    return SpatulaConfig.paper(**overrides)


class ObsSession:
    """Lifecycle of ``--telemetry-dir`` / ``--profile`` for one command.

    ``start()`` opens the telemetry run (publishing the env handshake so
    worker processes can join via ``telemetry.init_worker``) and the
    wall-clock profiler.  ``finish()`` — idempotent, also called from
    the command's ``finally`` — stops both, merges the per-process JSONL
    streams into one timeline, exports ``latency.*`` percentile gauges
    into the global registry (so a subsequent artifact snapshot and the
    history trend gate see wall-clock latency), and writes the merged
    outputs next to the streams: ``<run>.trace.json`` (Chrome trace),
    ``<run>.report.html`` (per-process lane view), ``<run>.timeline.json``
    and, with ``--profile``, ``<run>.profile.txt`` + ``<run>.flame.svg``.

    With neither flag set every method is a no-op, so instrumented
    commands pay nothing when observability is off.
    """

    def __init__(self, args, command: str) -> None:
        self.command = command
        self.telemetry_dir = getattr(args, "telemetry_dir", None)
        self.want_profile = bool(getattr(args, "profile", False))
        self.profile_mode = getattr(args, "profile_mode", None) or "both"
        self.profiler: Profiler | None = None
        self.context = None
        self.timeline = None
        self.profile_result = None
        self._done = False

    @property
    def enabled(self) -> bool:
        return self.telemetry_dir is not None

    def start(self) -> "ObsSession":
        if self.telemetry_dir:
            self.context = telemetry.start(
                self.telemetry_dir, parent_span_id=self.command)
        if self.want_profile:
            self.profiler = Profiler(mode=self.profile_mode)
            self.profiler.start()
        return self

    def finish(self) -> None:
        if self._done:
            return
        self._done = True
        if self.profiler is not None:
            self.profile_result = self.profiler.stop()
        if self.context is not None:
            run_id = self.context.run_id
            telemetry.stop()
            try:
                self.timeline = telemetry.collect(self.telemetry_dir,
                                                  run_id=run_id)
            except FileNotFoundError:
                self.timeline = None
        if self.timeline is not None:
            telemetry.export_latency_metrics(
                self.timeline.latency_summary())
            root = Path(self.telemetry_dir)
            run_id = self.timeline.run_id
            trace_path = root / f"{run_id}.trace.json"
            timeline_chrome_trace(self.timeline, trace_path)
            html_path = root / f"{run_id}.report.html"
            write_timeline_report(self.timeline, html_path,
                                  profile=self.profile_result)
            with open(root / f"{run_id}.timeline.json", "w") as f:
                json.dump(self.timeline.to_dict(), f, indent=2)
            print(f"telemetry: run {run_id}, "
                  f"{len(self.timeline.streams)} process stream(s) -> "
                  f"{trace_path}, {html_path}")
        if self.profile_result is not None:
            if self.timeline is not None:
                root = Path(self.telemetry_dir)
                run_id = self.timeline.run_id
                top_path = root / f"{run_id}.profile.txt"
                with open(top_path, "w") as f:
                    f.write(self.profile_result.render_top(limit=40)
                            + "\n")
                paths = [str(top_path)]
                if self.profile_result.folded:
                    flame_path = root / f"{run_id}.flame.svg"
                    with open(flame_path, "w") as f:
                        f.write(flamegraph_svg(self.profile_result.folded))
                    paths.append(str(flame_path))
                print("profile: " + ", ".join(paths))
            else:
                print(self.profile_result.render_top(limit=20))

    def telemetry_dict(self) -> dict | None:
        """The artifact's ``telemetry`` section (``None`` when off)."""
        if self.timeline is None:
            return None
        return {
            "run_id": self.timeline.run_id,
            "dir": self.timeline.telemetry_dir,
            "n_processes": len(self.timeline.streams),
            "latency_ms": self.timeline.latency_summary(),
        }

    def profile_dict(self) -> dict | None:
        """The artifact's ``profile`` section (``None`` when off)."""
        if self.profile_result is None:
            return None
        return self.profile_result.to_dict()


def cmd_suite(_args) -> int:
    print(f"{'name':<18}{'kind':<8}{'ordering':<10}domain")
    for spec in cholesky_suite() + lu_suite():
        print(f"{spec.name:<18}{spec.kind:<8}{spec.ordering:<10}"
              f"{spec.domain}")
    return 0


def cmd_info(args) -> int:
    matrix, kind, ordering = load_matrix(args.matrix)
    kind = args.kind or kind
    print(f"n = {matrix.n_rows}, nnz = {matrix.nnz} "
          f"({matrix.nnz / matrix.n_rows:.1f}/row)")
    print(f"structurally symmetric: {matrix.is_structurally_symmetric()}")
    symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    sizes = symbolic.supernode_sizes()
    print(f"symbolic [{kind}, {ordering}]: nnz(L) = {symbolic.factor_nnz} "
          f"({symbolic.factor_nnz / max(1, matrix.nnz):.1f}x fill), "
          f"{symbolic.flops / 1e9:.3f} GFLOP")
    print(f"supernodes: {symbolic.n_supernodes} "
          f"(median front {int(np.median(sizes))}, max {sizes.max()})")
    return 0


def _solve_load_worker(payload: tuple) -> dict:
    """One load-generator process: a solver serving warm requests.

    Module-level so it pickles under spawn.  When the parent started a
    telemetry run, the pool initializer (``telemetry.init_worker``) has
    already joined it, so the solver's ``numeric.factorize`` /
    ``numeric.solve`` tracer spans stream into this process's own JSONL
    sink and each request is wrapped in a ``solve.request`` task span.
    """
    (spec, kind, ordering_override, tune_store, workers, block_size,
     scheduler, rhs_pad, requests, seed) = payload
    matrix, default_kind, ordering = load_matrix(spec)
    solver = SparseSolver(matrix, kind=kind or default_kind,
                          ordering=ordering_override or ordering,
                          tune_store=tune_store, workers=workers,
                          block_size=block_size, scheduler=scheduler,
                          rhs_pad=rhs_pad)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(matrix.n_rows)
    x = solver.solve(b)
    start = time.perf_counter()
    latencies = []
    for _ in range(requests):
        t_req = time.perf_counter()
        with telemetry.task_span("solve.request", spec=spec):
            solver.refactorize(matrix)
            x = solver.solve(b)
        latencies.append(time.perf_counter() - t_req)
    seconds = time.perf_counter() - start
    return {
        "pid": os.getpid(),
        "requests": requests,
        "seconds": seconds,
        "latencies": latencies,
        "residual": float(solver.residual_norm(matrix, x, b)),
    }


def _run_solve_load(args, kind: str) -> None:
    """``solve --procs P``: P solver processes, each serving ``--repeat``
    warm refactorize+solve requests over the same matrix — the
    circuit-simulation serving regime (many repeated solves on one
    pattern).  Each process is its own telemetry stream, so the merged
    timeline shows true per-process worker lanes."""
    requests = max(1, args.repeat)
    payloads = [
        (args.matrix, kind, args.ordering, args.tune_store, args.workers,
         args.block_size, args.scheduler, args.rhs_pad, requests,
         args.seed + i)
        for i in range(args.procs)
    ]
    pool = multiprocessing.Pool(args.procs,
                                initializer=telemetry.init_worker)
    try:
        results = pool.map(_solve_load_worker, payloads)
        pool.close()
    except Exception:
        pool.terminate()
        raise
    finally:
        pool.join()
    for r in results:
        print(f"  pid {r['pid']}: {r['requests']} requests in "
              f"{r['seconds']:.3f}s "
              f"({r['requests'] / max(r['seconds'], 1e-9):.1f} req/s)")
    total = sum(r["requests"] for r in results)
    wall = max(r["seconds"] for r in results)
    worst = max(r["residual"] for r in results)
    print(f"{args.procs} process(es) x {requests} warm requests: "
          f"{total} total in {wall:.3f}s wall "
          f"({total / max(wall, 1e-9):.1f} req/s aggregate), "
          f"worst residual {worst:.3e}")
    # This warm loop is the process-parallel flavour of the serving
    # workload, so it reports under the same serve.* gauge names as the
    # solve server and serve-bench (one comparable series per harness in
    # the history trend gate).
    recorder = LatencyRecorder()
    for r in results:
        for seconds in r["latencies"]:
            recorder.observe(REQUEST_PHASE, seconds)
    recorder.export()
    export_serve_gauges(throughput_rps=total / max(wall, 1e-9))
    stats = recorder.summary().get(REQUEST_PHASE)
    if stats:
        print(f"  request latency p50 {stats['p50_ms']:.3f}ms  "
              f"p95 {stats['p95_ms']:.3f}ms  p99 {stats['p99_ms']:.3f}ms "
              f"(exported as serve.latency.request.*)")


def cmd_solve(args) -> int:
    session = ObsSession(args, "solve")
    tracer = None
    if args.metrics or session.enabled:
        tracer = enable_tracing()
        tracer.reset()
    session.start()
    try:
        with span("pipeline.load_matrix"):
            matrix, kind, ordering = load_matrix(args.matrix)
        kind = args.kind or kind
        ordering = args.ordering or ordering
        if args.procs > 1:
            _run_solve_load(args, kind)
        else:
            solver = SparseSolver(matrix, kind=kind, ordering=ordering,
                                  tune_store=args.tune_store,
                                  workers=args.workers,
                                  block_size=args.block_size,
                                  scheduler=args.scheduler,
                                  rhs_pad=args.rhs_pad)
            if ordering == "auto":
                print(f"ordering auto -> {solver.ordering}")
            ordering = solver.ordering
            rng = np.random.default_rng(args.seed)
            if args.refine:
                shape = (matrix.n_rows, args.rhs) if args.rhs > 1 \
                    else matrix.n_rows
                b = rng.standard_normal(shape)
                result = solver.solve_refined(matrix, b)
                label = f" over {args.rhs} right-hand sides" \
                    if args.rhs > 1 else ""
                print(f"residual {result.residual_norm:.3e}{label} after "
                      f"{result.iterations} refinement sweep(s)")
            elif args.rhs > 1:
                b = rng.standard_normal((matrix.n_rows, args.rhs))
                x = solver.solve(b)
                worst = max(
                    solver.residual_norm(matrix, x[:, j], b[:, j])
                    for j in range(args.rhs)
                )
                print(f"worst residual over {args.rhs} right-hand sides "
                      f"{worst:.3e}")
            else:
                b = rng.standard_normal(matrix.n_rows)
                x = solver.solve(b)
                print(f"residual {solver.residual_norm(matrix, x, b):.3e}")
            if args.repeat > 1:
                # Warm requests over the already-analyzed pattern: each
                # iteration adds one numeric.factorize and one
                # numeric.solve sample to the wall-clock latency
                # percentiles — and the whole loop reports under the
                # same serve.* gauges as the solve server, so the trend
                # gate sees one warm-serving series across harnesses.
                recorder = LatencyRecorder()
                t_rep = time.perf_counter()
                for _ in range(args.repeat - 1):
                    t_req = time.perf_counter()
                    solver.refactorize(matrix)
                    solver.solve(b)
                    recorder.observe(REQUEST_PHASE,
                                     time.perf_counter() - t_req)
                dt = max(time.perf_counter() - t_rep, 1e-9)
                recorder.export()
                export_serve_gauges(
                    throughput_rps=(args.repeat - 1) / dt)
                stats = recorder.summary()[REQUEST_PHASE]
                print(f"{args.repeat - 1} warm refactorize+solve "
                      f"request(s) in {dt:.3f}s "
                      f"({(args.repeat - 1) / dt:.1f} req/s, "
                      f"p50 {stats['p50_ms']:.3f}ms "
                      f"p95 {stats['p95_ms']:.3f}ms)")
            print(f"factor nnz {solver.factor_nnz}")
        session.finish()
        if args.metrics:
            from repro.numeric.engine import last_factor_attribution

            tuning = get_tuning()
            numeric_att = last_factor_attribution()
            attribution: dict = {}
            if numeric_att:
                attribution["numeric"] = numeric_att
            eff_workers = args.workers or tuning.workers
            eff_block = args.block_size or tuning.block_size
            if args.procs == 1:
                # Record the knobs the solver actually ran with (an
                # auto-resolved ordering may have tuned them) and the
                # ordering's structural quality score.
                eff_workers = solver.workers or tuning.workers
                eff_block = solver.block_size or tuning.block_size
                if solver.symbolic.quality is not None:
                    attribution["ordering_quality"] = \
                        solver.symbolic.quality.to_dict()
            if session.timeline is not None:
                # Worker processes publish their attribution through the
                # telemetry sink (never the parent's module global); the
                # merged cross-process view comes from the collector.
                merged = session.timeline.merged_numeric_attribution()
                if merged:
                    attribution["numeric_processes"] = merged
            artifact = RunArtifact(
                matrix=args.matrix, kind=kind, n=matrix.n_rows,
                config={
                    "ordering": ordering,
                    "workers": eff_workers,
                    "block_size": eff_block,
                    "scheduler": args.scheduler or tuning.scheduler,
                    "rhs": args.rhs, "repeat": args.repeat,
                    "procs": args.procs,
                },
                report={},
                metrics=global_registry().snapshot(),
                spans=[s.to_dict() for s in tracer.spans],
                attribution=attribution or None,
                telemetry=session.telemetry_dict(),
                profile=session.profile_dict(),
                created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
            )
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(tracer.spans)} spans, "
                  f"{len(artifact.metrics)} metrics)")
        return 0
    finally:
        session.finish()
        if tracer is not None:
            disable_tracing()


def cmd_simulate(args) -> int:
    session = ObsSession(args, "simulate")
    tracer = None
    if args.metrics or session.enabled:
        # Spans for every pipeline phase land in the run artifact.
        tracer = enable_tracing(trace_memory=args.trace_memory)
        tracer.reset()
    session.start()
    try:
        with span("pipeline.load_matrix"):
            matrix, kind, ordering = load_matrix(args.matrix)
        kind = args.kind or kind
        config = _config_from_args(args)
        symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                      relax_small=32, relax_ratio=0.5,
                                      force_small=64)
        plan = build_plan(symbolic, tile=config.tile,
                          supertile=config.supertile)
        executor = None
        if args.check:
            from repro.arch.functional import TileExecutor

            executor = TileExecutor(plan, matrix)
        registry = MetricsRegistry() if args.metrics else None
        # --metrics implies tracing: the artifact's attribution section
        # (cycle accounting + critical path) is derived from the trace.
        sim = SpatulaSim(plan, config, matrix_name=args.matrix,
                         executor=executor,
                         trace=bool(args.gantt or args.trace
                                    or args.metrics),
                         metrics=registry)
        report = sim.run()
        print(report.summary())
        bd = report.cycle_breakdown()
        print("cycles: " + ", ".join(f"{k} {100 * v:.1f}%"
                                     for k, v in bd.items() if v > 0.001))
        print("traffic: " + ", ".join(
            f"{k} {v / 1e6:.2f} MB"
            for k, v in report.traffic_bytes.items()))
        print(f"load imbalance {report.load_imbalance():.2f}, "
              f"peak live footprint "
              f"{report.peak_live_front_bytes / 1024:.0f} KB")
        if executor is not None:
            err = executor.verify()
            print("numeric check passed "
                  f"(max reconstruction error {err:.2e})")
        if args.gantt:
            from repro.arch.trace import render_gantt

            print(render_gantt(sim.trace, config.n_pes))
        if args.trace:
            from repro.arch.trace import export_chrome_trace

            export_chrome_trace(sim.trace, args.trace, config.freq_ghz,
                                spans=tracer.spans if tracer else None)
            print(f"wrote Chrome trace to {args.trace}")
        session.finish()
        if args.metrics:
            artifact = RunArtifact.from_run(report, tracer=tracer,
                                            attribution=sim.attribution())
            artifact.telemetry = session.telemetry_dict()
            artifact.profile = session.profile_dict()
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(tracer.spans)} spans, "
                  f"{len(report.metrics)} metrics, attribution)")
        return 0
    finally:
        session.finish()
        if tracer is not None:
            disable_tracing()


def cmd_report(args) -> int:
    if args.diff:
        if len(args.files) != 2:
            raise ValueError("--diff needs exactly two artifact files")
        baseline = RunArtifact.load(args.files[0])
        new = RunArtifact.load(args.files[1])
        result = diff_artifacts(baseline, new, threshold=args.threshold)
        print(f"{baseline.matrix} [{baseline.kind}]: "
              f"{args.files[0]} -> {args.files[1]}")
        print(render_diff(result, show_unchanged=args.all))
        return 1 if result.has_regression else 0
    if args.html:
        if len(args.files) != 1:
            raise ValueError("--html renders exactly one artifact file")
        artifact = RunArtifact.load(args.files[0])
        history = trend = None
        if args.history:
            history = HistoryStore(args.history)
            trend = check_trend(history, artifact,
                                tolerance=args.threshold)
        write_html_report(artifact, args.html, history=history,
                          trend=trend)
        print(f"wrote HTML report to {args.html}")
        return 0
    for path in args.files:
        print(render_artifact(RunArtifact.load(path)))
    return 0


def cmd_history(args) -> int:
    if args.action in ("add", "check") and not args.file:
        raise ValueError(f"history {args.action} needs an artifact file")
    session = ObsSession(args, "history")
    tracer = None
    if session.enabled:
        tracer = enable_tracing()
        tracer.reset()
    session.start()
    try:
        return _history_action(args)
    finally:
        session.finish()
        if tracer is not None:
            disable_tracing()


def _history_action(args) -> int:
    store = HistoryStore(args.dir)
    if args.action == "add":
        artifact = RunArtifact.load(args.file)
        entry = store.add(artifact)
        print(f"recorded {args.file} as {entry.path} "
              f"(key {entry.key})")
        return 0
    if args.action == "list":
        print(render_history(store))
        return 0
    if args.action == "trend":
        print(render_trend_series(store, args.metric, key=args.key))
        return 0
    # check: judge a new artifact against the rolling same-key median,
    # then (unless --no-add) record it so the window keeps moving.
    artifact = RunArtifact.load(args.file)
    report = check_trend(store, artifact, window=args.window,
                         tolerance=args.tolerance)
    print(report.render())
    if not args.no_add:
        entry = store.add(artifact)
        print(f"recorded as {entry.path}")
    return 1 if report.has_regression else 0


def cmd_verify(args) -> int:
    from repro.verify import (
        VerifyConfig,
        campaign_artifact,
        load_repro,
        replay_repro,
        run_verification,
    )

    if args.replay:
        repro = load_repro(args.replay)
        result = replay_repro(args.replay)
        print(f"replaying {repro.case} (n={repro.n}, kind={repro.kind}, "
              f"original axes: {', '.join(repro.axes)})")
        if result.failed:
            for m in result.mismatches:
                print(f"  MISMATCH [{m.axis}] {m.detail}")
            return 1
        print("  no mismatch: the failing case no longer reproduces")
        return 0

    session = ObsSession(args, "verify")
    tracer = None
    if session.enabled:
        tracer = enable_tracing()
        tracer.reset()
    session.start()
    try:
        config = VerifyConfig(
            seed=args.seed,
            budget_seconds=args.budget,
            max_cases=args.cases,
            max_n=args.max_n,
            out_dir=args.out,
            shrink=not args.no_shrink,
            jobs=args.jobs,
        )
        with span("verify.campaign"):
            summary = run_verification(config)
        print(summary.render())
        session.finish()
        if args.metrics:
            artifact = campaign_artifact(summary, config)
            artifact.telemetry = session.telemetry_dict()
            artifact.profile = session.profile_dict()
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(artifact.metrics)} metrics)")
        return 0 if summary.ok else 1
    finally:
        session.finish()
        if tracer is not None:
            disable_tracing()


def cmd_telemetry(args) -> int:
    if args.action == "list":
        runs = telemetry.list_runs(args.dir)
        if not runs:
            print(f"no telemetry runs under {args.dir}")
            return 0
        for run in runs:
            streams = sorted(Path(args.dir).glob(f"{run}.*.jsonl"))
            print(f"{run}  ({len(streams)} stream(s))")
        return 0
    timeline = telemetry.collect(args.dir, run_id=args.run)
    n_spans = sum(len(s.spans) for s in timeline.streams)
    print(f"run {timeline.run_id}: {len(timeline.streams)} process "
          f"stream(s), {n_spans} spans")
    for s in timeline.streams:
        print(f"  {s.label:<20}{len(s.spans):>6} spans  "
              f"{len(s.heartbeats):>3} heartbeat(s)  "
              f"{Path(s.path).name}")
    latency = timeline.latency_summary()
    if latency:
        print(f"  {'phase':<26}{'count':>7}{'p50 ms':>10}"
              f"{'p95 ms':>10}{'p99 ms':>10}")
        for phase, st in latency.items():
            print(f"  {phase:<26}{st['count']:>7}{st['p50_ms']:>10.3f}"
                  f"{st['p95_ms']:>10.3f}{st['p99_ms']:>10.3f}")
    if args.trace:
        timeline_chrome_trace(timeline, args.trace)
        print(f"wrote Chrome trace to {args.trace}")
    if args.html:
        write_timeline_report(timeline, args.html)
        print(f"wrote HTML timeline to {args.html}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(timeline.to_dict(), f, indent=2)
        print(f"wrote timeline JSON to {args.json}")
    return 0


def cmd_compare(args) -> int:
    matrix, kind, ordering = load_matrix(args.matrix)
    kind = args.kind or kind
    config = _config_from_args(args)
    symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    plan = build_plan(symbolic, tile=config.tile,
                      supertile=config.supertile)
    report = SpatulaSim(plan, config, matrix_name=args.matrix).run()
    gpu = GPUModel().run(symbolic)
    cpu = CPUModel().run(symbolic)
    print(f"{'platform':<12}{'time':>12}{'rate':>16}{'speedup':>9}")
    print(f"{'Spatula':<12}{report.seconds * 1e6:>10.1f}us"
          f"{report.achieved_tflops:>10.2f} TFLOP/s{'1.0x':>9}")
    print(f"{'V100 GPU':<12}{gpu.seconds * 1e6:>10.1f}us"
          f"{gpu.gflops / 1e3:>10.2f} TFLOP/s"
          f"{gpu.seconds / report.seconds:>8.1f}x")
    print(f"{'Zen2 CPU':<12}{cpu.seconds * 1e6:>10.1f}us"
          f"{cpu.gflops / 1e3:>10.2f} TFLOP/s"
          f"{cpu.seconds / report.seconds:>8.1f}x")
    return 0


def cmd_serve(args) -> int:
    import threading

    from repro.serve.server import ServeConfig, SolveServer, run_unix_server

    config = ServeConfig(
        coalesce_window_s=args.window / 1e3,
        max_batch=args.max_batch,
        max_patterns=args.max_patterns,
        io_threads=args.io_threads,
        workers=args.workers,
        block_size=args.block_size,
        scheduler=args.scheduler,
        tune_store=args.tune_store,
    )
    server = SolveServer(config)
    ready = threading.Event()
    # A crashed previous run leaves its socket file behind and the bind
    # would fail with "address already in use"; clear it — unless a
    # live server is still listening there.
    if os.path.exists(args.socket):
        import socket as socket_mod

        probe = socket_mod.socket(socket_mod.AF_UNIX)
        try:
            probe.connect(args.socket)
        except OSError:
            try:
                os.unlink(args.socket)
            except OSError:
                pass
        else:
            print(f"error: a server is already listening on "
                  f"{args.socket}", file=sys.stderr)
            return 1
        finally:
            probe.close()
    print(f"serving on {args.socket} "
          f"(coalesce window {args.window:g}ms, max batch "
          f"{config.max_batch}, rhs_pad {config.effective_rhs_pad()}); "
          f"send {{\"op\": \"shutdown\"}} or Ctrl-C to stop")
    try:
        run_unix_server(server, args.socket, ready=ready)
    except KeyboardInterrupt:
        server.shutdown()
    finally:
        try:
            os.unlink(args.socket)
        except OSError:
            pass
    stats = server.stats(export=False)
    print(f"served {stats['responses']} response(s) over "
          f"{stats['patterns']} pattern(s), "
          f"{stats['errors']} error(s)")
    return 0


def cmd_serve_stats(args) -> int:
    from repro.serve.client import SocketClient
    from repro.serve.metrics import REQUEST_PHASE as REQ

    try:
        client = SocketClient(args.socket, timeout=args.timeout)
    except OSError as exc:
        print(f"error: cannot reach server on {args.socket}: {exc}",
              file=sys.stderr)
        return 1
    with client:
        if args.format == "text":
            print(client.stats(window_s=args.window_s, format="text"),
                  end="")
            return 0
        health = client.health()
        stats = client.stats(window_s=args.window_s)
        if args.format == "json":
            print(json.dumps({"health": health, "stats": stats},
                             indent=2, default=str))
            return 0
        status = "ok" if health["ok"] else "DEGRADED"
        print(f"server on {args.socket}: {status}, "
              f"up {health['uptime_s']:.1f}s, "
              f"heartbeat #{health['heartbeats']} "
              f"({health['heartbeat_age_s']:.1f}s ago)")
        window = stats["window"]
        request = window["latency_ms"].get(REQ, {})
        print(f"window {stats['window_s']:g}s: "
              f"{window['throughput_rps']:.1f} req/s, "
              f"p50 {request.get('p50_ms', 0.0):.3f}ms, "
              f"p95 {request.get('p95_ms', 0.0):.3f}ms, "
              f"p99 {request.get('p99_ms', 0.0):.3f}ms; "
              f"inflight {window['inflight']}, "
              f"queued {window['queue_depth']}")
        print(f"lifetime: {stats['responses']} response(s), "
              f"{stats['errors']} error(s), "
              f"{stats['coalesce']['batches']} batch(es), "
              f"mean width {stats['coalesce']['batch_mean']:.2f}")
        for pattern, w in sorted(stats["workers"].items()):
            state = "dead" if not w["alive"] else \
                ("busy" if w["busy"] else "idle")
            print(f"  {pattern[:24]:<26}{state:<6}"
                  f"queue {w['queue_depth']:<4}"
                  f"served {w['served']:<7}"
                  f"batches {w['batches']}")
        for ex in stats["exemplars"][:args.exemplars]:
            phases = ex.get("phases_ms", {})
            print(f"  slow {ex['request_id']:<8}{ex['op']:<12}"
                  f"{ex['latency_ms']:9.3f}ms  "
                  f"(queue {phases.get('queue_wait', 0.0):.3f} / "
                  f"coalesce {phases.get('coalesce_wait', 0.0):.3f} / "
                  f"solve {phases.get('solve', 0.0):.3f})")
    return 0


def cmd_serve_top(args) -> int:
    from repro.serve.top import run_top

    return run_top(args.socket, interval_s=args.interval,
                   iterations=args.iterations, window_s=args.window_s,
                   clear=not args.no_clear)


def cmd_serve_bench(args) -> int:
    from repro.serve.bench import BenchConfig, run_bench

    session = ObsSession(args, "serve-bench")
    tracer = None
    if args.metrics or session.enabled:
        tracer = enable_tracing()
        tracer.reset()
    session.start()
    try:
        config = BenchConfig(
            family=args.family,
            patterns=args.patterns,
            clients=args.clients,
            requests=args.requests,
            mode=args.mode,
            rate=args.rate,
            seed=args.seed,
            max_n=args.max_n,
            min_n=args.min_n,
            coalesce_window_s=args.window / 1e3,
            max_batch=args.max_batch,
            verify=not args.no_verify,
            baseline=not args.no_baseline,
        )
        with span("serve.bench"):
            result = run_bench(config)

        sizes = result["config"]["sizes"]
        print(f"workload: {args.patterns} x {args.family} "
              f"(n = {sizes}), {args.requests} requests, "
              f"{args.mode} loop"
              + (f" @ {args.rate:g} req/s" if args.mode == "open" else
                 f" x {args.clients} clients"))
        for label in ("coalesced", "baseline"):
            phase = result.get(label)
            if phase is None:
                continue
            lat = phase["latency_ms"]
            print(f"  {label:<10} {phase['throughput_rps']:>9.1f} req/s  "
                  f"batch {phase['coalesce']['batch_mean']:>5.2f}  "
                  f"p50 {lat.get('p50_ms', 0.0):>7.3f}ms  "
                  f"p95 {lat.get('p95_ms', 0.0):>7.3f}ms  "
                  f"p99 {lat.get('p99_ms', 0.0):>7.3f}ms"
                  + (f"  ({len(phase['errors'])} error(s))"
                     if phase["errors"] else ""))
        if "speedup_coalesce" in result:
            print(f"  coalescing speedup: "
                  f"{result['speedup_coalesce']:.2f}x "
                  f"(serve.speedup.coalesce)")
        if "verify" in result:
            v = result["verify"]
            status = "bit-identical" if v["bit_identical"] else \
                f"{v['mismatches']} MISMATCH(ES)"
            print(f"  verification: {v['checked']} response(s) vs direct "
                  f"solves: {status}")
        session.finish()
        if args.metrics:
            artifact = RunArtifact(
                matrix=f"fuzz:{args.family}", kind="serve",
                n=max(sizes),
                config=result["config"],
                report={
                    "throughput_rps":
                        result["coalesced"]["throughput_rps"],
                    "speedup_coalesce":
                        result.get("speedup_coalesce"),
                    "latency_ms": result["coalesced"]["latency_ms"],
                    "baseline_rps":
                        (result.get("baseline") or {})
                        .get("throughput_rps"),
                    "bit_identical":
                        (result.get("verify") or {})
                        .get("bit_identical"),
                },
                metrics=global_registry().snapshot(),
                spans=[s.to_dict() for s in tracer.spans],
                telemetry=session.telemetry_dict(),
                profile=session.profile_dict(),
                created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
            )
            artifact.save(args.metrics)
            print(f"wrote run artifact to {args.metrics} "
                  f"({len(artifact.metrics)} metrics)")
            if args.history:
                store = HistoryStore(args.history)
                entry = store.add(artifact)
                print(f"recorded in history as {entry.path} "
                      f"(key {entry.key})")
        if "verify" in result and not result["verify"]["bit_identical"]:
            return 1
        return 0
    finally:
        session.finish()
        if tracer is not None:
            disable_tracing()


def cmd_autotune(args) -> int:
    from repro.ordering.api import fill_reducing_ordering
    from repro.ordering.autotune import autotune
    from repro.ordering.quality import export_quality_gauges, score_ordering

    matrix, kind, _ = load_matrix(args.matrix)
    kind = args.kind or kind
    store = HistoryStore(args.store)
    result = autotune(matrix, store, kind=kind, budget=args.budget,
                      matrix_name=args.matrix, force=args.force)
    cfg = result.config
    if result.from_cache:
        print(f"family {result.fingerprint}: warm cache hit, "
              f"sweep skipped (pass --force to re-measure)")
    else:
        print(f"family {result.fingerprint}: {len(result.trials)} trial(s) "
              f"recorded to {store.trials_path}")
        print(f"  {'ordering':<14}{'block':>6}{'workers':>8}"
              f"{'fill':>10}{'factorize':>12}")
        for t in sorted(result.trials, key=lambda t: t.factorize_s):
            print(f"  {t.ordering:<14}{t.block_size:>6}{t.workers:>8}"
                  f"{t.fill:>10}{t.factorize_s * 1e3:>10.2f}ms")
    print(f"best config: ordering={cfg.ordering} "
          f"block_size={cfg.block_size} workers={cfg.workers} "
          f"(served by `solve {args.matrix} --ordering auto "
          f"--tune-store {args.store}`)")
    if args.metrics:
        # Score the winning ordering so the artifact carries the
        # ordering.quality.* gauges for this family.
        perm = fill_reducing_ordering(matrix, cfg.ordering)
        score = score_ordering(matrix, perm, method=cfg.ordering, kind=kind)
        export_quality_gauges(score)
        artifact = RunArtifact(
            matrix=args.matrix, kind=kind, n=matrix.n_rows,
            config={"budget": args.budget,
                    "fingerprint": result.fingerprint},
            report={"best": {"ordering": cfg.ordering,
                             "block_size": cfg.block_size,
                             "workers": cfg.workers},
                    "from_cache": result.from_cache,
                    "trials": len(result.trials),
                    "quality": score.to_dict()},
            metrics=global_registry().snapshot(),
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )
        artifact.save(args.metrics)
        print(f"wrote run artifact to {args.metrics} "
              f"({len(artifact.metrics)} metrics)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatula (MICRO 2023) reproduction toolkit",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="increase log verbosity (-v info, -vv debug)")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="explicit log level (overrides -v)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="list evaluation matrices")

    def add_matrix_arg(p):
        p.add_argument("matrix",
                       help="suite:NAME[@SCALE], fuzz:FAMILY[@SEED], or "
                            "a MatrixMarket path")
        p.add_argument("--kind", choices=["cholesky", "lu"], default=None)

    def add_obs_args(p):
        p.add_argument("--telemetry-dir", metavar="DIR", default=None,
                       help="record run-scoped telemetry: per-process "
                            "JSONL event streams in DIR, merged on exit "
                            "into a Chrome trace + HTML lane report + "
                            "latency.* percentile gauges")
        p.add_argument("--profile", action="store_true",
                       help="wall-clock profiling (cProfile + sampling "
                            "profiler); writes a top-function table and "
                            "a flamegraph next to the telemetry streams")
        p.add_argument("--profile-mode", choices=list(PROFILE_MODES),
                       default="both",
                       help="which profiler(s) --profile runs "
                            "(default: both)")

    p_info = sub.add_parser("info", help="matrix + symbolic summary")
    add_matrix_arg(p_info)

    p_solve = sub.add_parser("solve", help="factor and solve Ax=b")
    add_matrix_arg(p_solve)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--ordering", default=None,
                         choices=list(available_orderings()) + ["auto"],
                         help="fill-reducing ordering (choices derive "
                              "from the registry; 'auto' resolves the "
                              "best known config for this matrix family "
                              "from --tune-store, falling back to amd; "
                              "default: the matrix's suite ordering)")
    p_solve.add_argument("--tune-store", metavar="DIR", default=None,
                         help="autotuner experience store consulted by "
                              "--ordering auto (see `repro autotune`)")
    p_solve.add_argument("--refine", action="store_true",
                         help="use iterative refinement")
    p_solve.add_argument("--workers", type=int, default=None,
                         help="threads for the level-scheduled numeric "
                              "factorization (default: tuning)")
    p_solve.add_argument("--scheduler",
                         choices=["level", "dag", "procs"], default=None,
                         help="numeric-phase scheduler: level barriers "
                              "(baseline), barrier-free DAG dispatch, or "
                              "subtree-parallel worker processes; "
                              "bit-identical results (defaults to the "
                              "global tuning)")
    p_solve.add_argument("--block-size", type=int, default=None,
                         help="dense-kernel panel width (default: tuning)")
    p_solve.add_argument("--rhs", type=int, default=1,
                         help="number of right-hand sides (solved as one "
                              "blocked panel)")
    p_solve.add_argument("--rhs-pad", type=int, default=1,
                         help="batch-invariant solve width: zero-pad "
                              "every solve to this panel width so "
                              "results are bit-identical regardless of "
                              "batching (default 1 = off; see "
                              "docs/SERVING.md)")
    p_solve.add_argument("--repeat", type=int, default=1,
                         help="warm refactorize+solve requests per solver "
                              "(adds wall-clock latency samples for the "
                              "p50/p95/p99 phase percentiles; default 1)")
    p_solve.add_argument("--procs", type=int, default=1,
                         help="process-parallel load generators, each "
                              "serving --repeat warm requests from its "
                              "own solver and telemetry stream "
                              "(default 1)")
    p_solve.add_argument("--metrics", metavar="FILE", default=None,
                         help="write a run-artifact JSON (numeric-engine "
                              "metrics + pipeline spans)")
    add_obs_args(p_solve)

    def add_config_args(p):
        p.add_argument("--n-pes", type=int, default=None)
        p.add_argument("--tile", type=int, default=None)
        p.add_argument("--cache-mb", type=float, default=None)
        p.add_argument("--policy",
                       choices=["intra+inter", "intra", "inter"],
                       default=None)
        p.add_argument("--order", choices=["bf", "rowmajor"], default=None)
        p.add_argument("--sn-order", choices=["postorder", "fifo"],
                       default=None)

    p_sim = sub.add_parser("simulate", help="run the cycle-level simulator")
    add_matrix_arg(p_sim)
    add_config_args(p_sim)
    p_sim.add_argument("--check", action="store_true",
                       help="execute numerics and verify the factor")
    p_sim.add_argument("--gantt", action="store_true",
                       help="print an ASCII Gantt chart")
    p_sim.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace JSON")
    p_sim.add_argument("--metrics", metavar="FILE", default=None,
                       help="write a run-artifact JSON (config + report + "
                            "metrics registry + pipeline spans)")
    p_sim.add_argument("--trace-memory", action="store_true",
                       help="capture tracemalloc peak memory per span "
                            "(implies --metrics overhead)")
    add_obs_args(p_sim)

    p_cmp = sub.add_parser("compare", help="Spatula vs GPU/CPU baselines")
    add_matrix_arg(p_cmp)
    add_config_args(p_cmp)

    p_ver = sub.add_parser(
        "verify", help="differential fuzzing campaign (cross-config + "
                       "oracle checks, shrinks failures to JSON repros)"
    )
    p_ver.add_argument("--seed", type=int, default=0,
                       help="campaign seed; the case sequence is a pure "
                            "function of it (default 0)")
    p_ver.add_argument("--budget", type=float, default=60.0,
                       help="time budget in seconds (default 60)")
    p_ver.add_argument("--cases", type=int, default=None,
                       help="hard cap on the number of cases")
    p_ver.add_argument("--max-n", type=int, default=48,
                       help="largest generated matrix dimension "
                            "(default 48)")
    p_ver.add_argument("--out", default="repros", metavar="DIR",
                       help="directory for shrunk failing-case JSONs "
                            "(default: repros/)")
    p_ver.add_argument("--no-shrink", action="store_true",
                       help="report mismatches without minimizing them")
    p_ver.add_argument("--metrics", metavar="FILE", default=None,
                       help="write a run-artifact JSON (verify.* counters)")
    p_ver.add_argument("--jobs", type=int, default=1,
                       help="process-pool workers for case execution; "
                            "each joins the telemetry run and emits "
                            "verify.case spans (default 1)")
    p_ver.add_argument("--replay", metavar="FILE", default=None,
                       help="re-run a shrunk failing-case JSON instead of "
                            "fuzzing")
    add_obs_args(p_ver)

    p_rep = sub.add_parser(
        "report", help="pretty-print, diff, or HTML-render run artifacts"
    )
    p_rep.add_argument("files", nargs="+",
                       help="artifact JSON file(s) from simulate --metrics")
    p_rep.add_argument("--diff", action="store_true",
                       help="compare two artifacts (baseline, new); exits "
                            "non-zero if a watched metric regresses")
    p_rep.add_argument("--threshold", type=float, default=0.05,
                       help="relative regression threshold (default 0.05)")
    p_rep.add_argument("--all", action="store_true",
                       help="with --diff, also show unchanged metrics")
    p_rep.add_argument("--html", metavar="FILE", default=None,
                       help="render one artifact into a self-contained "
                            "HTML page (attribution tree, utilization "
                            "timeline, trends)")
    p_rep.add_argument("--history", metavar="DIR", default=None,
                       help="with --html, include watched-metric trend "
                            "sparklines from this history store")

    p_hist = sub.add_parser(
        "history", help="artifact history store: trend-based regression "
                        "gate over the last N same-key runs"
    )
    p_hist.add_argument("action",
                        choices=["add", "list", "trend", "check"])
    p_hist.add_argument("file", nargs="?", default=None,
                        help="artifact JSON (required for add/check)")
    p_hist.add_argument("--dir", default=".repro-history", metavar="DIR",
                        help="history store directory "
                             "(default: .repro-history)")
    p_hist.add_argument("--metric", default="report.cycles",
                        help="metric for `trend` (default: report.cycles)")
    p_hist.add_argument("--key", default=None,
                        help="restrict `trend` to one run key")
    p_hist.add_argument("--window", type=int, default=8,
                        help="runs in the trend window (default 8)")
    p_hist.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance vs the window median "
                             "before `check` flags a regression "
                             "(default 0.05)")
    p_hist.add_argument("--no-add", action="store_true",
                        help="with `check`, judge only; do not record the "
                             "artifact afterwards")
    add_obs_args(p_hist)

    p_srv = sub.add_parser(
        "serve", help="long-lived multi-tenant solve server on a unix "
                      "socket (NDJSON protocol, request coalescing into "
                      "blocked multi-RHS panels; see docs/SERVING.md)"
    )
    p_srv.add_argument("--socket", default="repro-serve.sock",
                       metavar="PATH",
                       help="unix socket path (default: "
                            "repro-serve.sock)")
    p_srv.add_argument("--window", type=float, default=2.0,
                       help="coalescing window in milliseconds; 0 "
                            "drains the backlog without waiting "
                            "(default 2)")
    p_srv.add_argument("--max-batch", type=int, default=32,
                       help="largest blocked panel one solve sweep "
                            "carries; 1 disables coalescing "
                            "(default 32)")
    p_srv.add_argument("--max-patterns", type=int, default=64,
                       help="bound on concurrently registered patterns "
                            "(default 64)")
    p_srv.add_argument("--io-threads", type=int, default=8,
                       help="socket front-end thread-pool width "
                            "(default 8)")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="numeric-phase worker threads per solver "
                            "(default: tuning)")
    p_srv.add_argument("--block-size", type=int, default=None,
                       help="dense-kernel panel width (default: tuning)")
    p_srv.add_argument("--scheduler",
                       choices=["level", "dag", "procs"], default=None,
                       help="numeric-phase scheduler (default: tuning)")
    p_srv.add_argument("--tune-store", metavar="DIR", default=None,
                       help="autotuner experience store: pattern "
                            "registrations with ordering='auto' resolve "
                            "their matrix family's best known config "
                            "from it (see `repro autotune`)")

    def add_poll_args(p):
        p.add_argument("--socket", default="repro-serve.sock",
                       metavar="PATH",
                       help="unix socket of the running server "
                            "(default: repro-serve.sock)")
        p.add_argument("--window-s", type=float, default=None,
                       metavar="S",
                       help="rolling-window width for the live view "
                            "(default: the server's configured window)")

    p_ss = sub.add_parser(
        "serve-stats", help="one-shot health + stats poll of a running "
                            "solve server (pretty, JSON, or Prometheus "
                            "text)"
    )
    add_poll_args(p_ss)
    p_ss.add_argument("--format", choices=["pretty", "json", "text"],
                      default="pretty",
                      help="output format; 'text' is Prometheus "
                           "exposition format for scrapers "
                           "(default: pretty)")
    p_ss.add_argument("--timeout", type=float, default=10.0,
                      help="socket timeout in seconds (default 10)")
    p_ss.add_argument("--exemplars", type=int, default=3,
                      help="slow-request exemplars to print in pretty "
                           "mode (default 3)")

    p_st = sub.add_parser(
        "serve-top", help="live terminal dashboard for a running solve "
                          "server: per-worker lanes, windowed latency "
                          "with sparkline trend, slow-request exemplars"
    )
    add_poll_args(p_st)
    p_st.add_argument("--interval", type=float, default=1.0,
                      help="poll period in seconds (default 1)")
    p_st.add_argument("--iterations", type=int, default=0,
                      help="frames to render before exiting; 0 runs "
                           "until Ctrl-C (default 0)")
    p_st.add_argument("--no-clear", action="store_true",
                      help="append frames instead of clearing the "
                           "screen (logs, tests, dumb terminals)")

    p_sb = sub.add_parser(
        "serve-bench", help="load generator against an in-process solve "
                            "server: coalesced vs uncoalesced phases, "
                            "bit-identity verification, serve.* gauges"
    )
    p_sb.add_argument("--family", default="spd_random",
                      help="fuzz-suite matrix family "
                           "(default: spd_random)")
    p_sb.add_argument("--mode", choices=["closed", "open"],
                      default="closed",
                      help="closed loop (fixed concurrency) or open "
                           "loop (fixed arrival rate; default closed)")
    p_sb.add_argument("--patterns", type=int, default=2,
                      help="distinct tenants / matrices (default 2)")
    p_sb.add_argument("--clients", type=int, default=16,
                      help="closed-loop client threads (default 16)")
    p_sb.add_argument("--requests", type=int, default=400,
                      help="solve requests per phase (default 400)")
    p_sb.add_argument("--rate", type=float, default=500.0,
                      help="open-loop arrival rate in req/s "
                           "(default 500)")
    p_sb.add_argument("--seed", type=int, default=0)
    p_sb.add_argument("--max-n", type=int, default=96,
                      help="generator size cap (default 96)")
    p_sb.add_argument("--min-n", type=int, default=24,
                      help="skip generated cases smaller than this "
                           "(default 24)")
    p_sb.add_argument("--window", type=float, default=2.0,
                      help="coalescing window in ms (default 2)")
    p_sb.add_argument("--max-batch", type=int, default=16,
                      help="largest coalesced panel (default 16)")
    p_sb.add_argument("--no-verify", action="store_true",
                      help="skip the bit-identity check against direct "
                           "solves")
    p_sb.add_argument("--no-baseline", action="store_true",
                      help="skip the uncoalesced baseline phase (no "
                           "speedup reported)")
    p_sb.add_argument("--metrics", metavar="FILE", default=None,
                      help="write a run-artifact JSON (serve.* gauges + "
                           "phase report)")
    p_sb.add_argument("--history", metavar="DIR", default=None,
                      help="with --metrics, append the artifact to this "
                           "history store (trend gate input)")
    add_obs_args(p_sb)

    p_tune = sub.add_parser(
        "autotune", help="sweep ordering x block size x workers for one "
                         "matrix, record trials into the history store "
                         "keyed by its family fingerprint, and print the "
                         "best config (served by `solve --ordering auto`)"
    )
    add_matrix_arg(p_tune)
    p_tune.add_argument("--budget", choices=sorted(BUDGETS),
                        default="small",
                        help="sweep-grid size (default: small)")
    p_tune.add_argument("--store", default=".repro-history", metavar="DIR",
                        help="history store holding trials.jsonl "
                             "(default: .repro-history)")
    p_tune.add_argument("--force", action="store_true",
                        help="re-sweep even when the family already has "
                             "recorded trials")
    p_tune.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a run-artifact JSON (best config + "
                             "ordering.quality.* gauges for the winning "
                             "ordering)")

    p_tel = sub.add_parser(
        "telemetry", help="merge per-process telemetry streams of a "
                          "--telemetry-dir run into one timeline"
    )
    p_tel.add_argument("action", choices=["collect", "list"])
    p_tel.add_argument("--dir", default="telemetry", metavar="DIR",
                       help="directory holding the JSONL streams "
                            "(default: telemetry/)")
    p_tel.add_argument("--run", default=None, metavar="RUN_ID",
                       help="which run to collect (default: latest)")
    p_tel.add_argument("--trace", metavar="FILE", default=None,
                       help="with collect, write a Chrome trace JSON")
    p_tel.add_argument("--html", metavar="FILE", default=None,
                       help="with collect, write the HTML lane report")
    p_tel.add_argument("--json", metavar="FILE", default=None,
                       help="with collect, write the merged timeline "
                            "summary JSON")
    return parser


_COMMANDS = {
    "suite": cmd_suite,
    "info": cmd_info,
    "solve": cmd_solve,
    "simulate": cmd_simulate,
    "compare": cmd_compare,
    "report": cmd_report,
    "history": cmd_history,
    "verify": cmd_verify,
    "telemetry": cmd_telemetry,
    "serve": cmd_serve,
    "serve-bench": cmd_serve_bench,
    "serve-stats": cmd_serve_stats,
    "serve-top": cmd_serve_top,
    "autotune": cmd_autotune,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level if args.log_level is not None
                  else verbosity_to_level(args.verbose))
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a closed consumer (e.g. `| head`): the Unix
        # convention is to exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
