"""Supernodal (blocked) triangular solves.

The CSC solves in :mod:`repro.numeric.triangular` process one column at a
time.  Real multifrontal packages instead solve supernode-by-supernode
with dense panels — the same block structure the factorization produced —
which turns the solve into a sequence of small BLAS-2 operations.  This
module implements that blocked solve directly on the
:class:`~repro.numeric.cholesky.CholeskyFactor` /
:class:`~repro.numeric.lu.LUFactors` outputs, avoiding the CSC
materialization entirely.

Forward solve (L y = b), per supernode in postorder:
    y_sn   = L11^-1 b_sn                 (dense triangular solve)
    b_rest -= L21 @ y_sn                 (panel update, scattered by rows)
Backward solve (L^T x = y) runs the supernodes in reverse.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.cholesky import CholeskyFactor
from repro.numeric.lu import LUFactors


def _solve_lower_unit_dense(tri: np.ndarray, rhs: np.ndarray,
                            unit: bool) -> np.ndarray:
    """Forward substitution against a dense lower-triangular panel."""
    n = tri.shape[0]
    y = rhs.astype(np.float64, copy=True)
    for j in range(n):
        if not unit:
            y[j] /= tri[j, j]
        if j + 1 < n:
            y[j + 1:] -= tri[j + 1:, j] * y[j]
    return y


def _solve_upper_dense(tri: np.ndarray, rhs: np.ndarray,
                       unit: bool) -> np.ndarray:
    """Backward substitution against a dense upper-triangular panel."""
    n = tri.shape[0]
    x = rhs.astype(np.float64, copy=True)
    for j in range(n - 1, -1, -1):
        if not unit:
            x[j] /= tri[j, j]
        if j > 0:
            x[:j] -= tri[:j, j] * x[j]
    return x


def cholesky_solve(factor: CholeskyFactor, b: np.ndarray) -> np.ndarray:
    """Solve (L L^T) x = b using the supernodal factor directly.

    ``b`` is in the *permuted* index space (callers apply the fill
    permutation, as :class:`repro.numeric.solver.SparseSolver` does).
    """
    supernodes = factor.symbolic.tree.supernodes
    y = np.asarray(b, dtype=np.float64).copy()
    # Forward: L y = b, supernodes in postorder.
    for sn, (rows, block) in zip(supernodes, factor.columns):
        k = sn.n_cols
        panel = block[:k, :]              # L11 (lower triangular)
        y_sn = _solve_lower_unit_dense(panel, y[rows[:k]], unit=False)
        y[rows[:k]] = y_sn
        if len(rows) > k:
            y[rows[k:]] -= block[k:, :] @ y_sn
    # Backward: L^T x = y, supernodes in reverse.
    x = y
    for sn, (rows, block) in zip(reversed(supernodes),
                                 reversed(factor.columns)):
        k = sn.n_cols
        rhs = x[rows[:k]].copy()
        if len(rows) > k:
            rhs -= block[k:, :].T @ x[rows[k:]]
        x[rows[:k]] = _solve_upper_dense(block[:k, :].T, rhs, unit=False)
    return x


def lu_solve(factors: LUFactors, b: np.ndarray) -> np.ndarray:
    """Solve (L U) x = b using the supernodal factors directly."""
    supernodes = factors.symbolic.tree.supernodes
    y = np.asarray(b, dtype=np.float64).copy()
    # Forward: L y = b (unit-diagonal L).
    for sn, (rows, l_block, _u_block) in zip(supernodes, factors.fronts):
        k = sn.n_cols
        panel = np.tril(l_block[:k, :], -1) + np.eye(k)
        y_sn = _solve_lower_unit_dense(panel, y[rows[:k]], unit=True)
        y[rows[:k]] = y_sn
        if len(rows) > k:
            y[rows[k:]] -= l_block[k:, :] @ y_sn
    # Backward: U x = y.
    x = y
    for sn, (rows, _l_block, u_block) in zip(reversed(supernodes),
                                             reversed(factors.fronts)):
        k = sn.n_cols
        rhs = x[rows[:k]].copy()
        if len(rows) > k:
            rhs -= u_block[:, k:] @ x[rows[k:]]
        x[rows[:k]] = _solve_upper_dense(u_block[:k, :k], rhs, unit=False)
    return x
