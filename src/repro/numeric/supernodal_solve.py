"""Supernodal (blocked) triangular solves.

The CSC solves in :mod:`repro.numeric.triangular` process one column at a
time.  Real multifrontal packages instead solve supernode-by-supernode
with dense panels — the same block structure the factorization produced —
which turns the solve into a sequence of small BLAS operations.  This
module implements that blocked solve directly on the
:class:`~repro.numeric.cholesky.CholeskyFactor` /
:class:`~repro.numeric.lu.LUFactors` outputs, avoiding the CSC
materialization entirely.

Right-hand sides may be a vector or an (n, k) panel; a panel is solved as
one blocked sweep (every per-supernode operation carries all k columns),
which is where multi-RHS throughput comes from — the panel updates are
matrix-matrix products instead of k repeated matrix-vector products.

Forward solve (L y = b), per supernode in postorder:
    y_sn   = L11^-1 b_sn                 (dense triangular panel solve)
    b_rest -= L21 @ y_sn                 (panel update, scattered by rows)
Backward solve (L^T x = y) runs the supernodes in reverse.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.cholesky import CholeskyFactor
from repro.numeric.dense import _solve_lower_inplace, _solve_upper_inplace
from repro.numeric.lu import LUFactors


def _as_panel(b: np.ndarray) -> tuple[np.ndarray, bool]:
    """View ``b`` as a float64 (n, k) working panel; flag if it was 1-D."""
    y = np.asarray(b, dtype=np.float64).copy()
    if y.ndim == 1:
        return y.reshape(-1, 1), True
    if y.ndim != 2:
        raise ValueError("right-hand side must be a vector or (n, k) array")
    return y, False


def cholesky_solve(factor: CholeskyFactor, b: np.ndarray) -> np.ndarray:
    """Solve (L L^T) X = B using the supernodal factor directly.

    ``b`` is in the *permuted* index space (callers apply the fill
    permutation, as :class:`repro.numeric.solver.SparseSolver` does) and
    may be a vector or an (n, k) panel of right-hand sides.
    """
    supernodes = factor.symbolic.tree.supernodes
    y, was_vector = _as_panel(b)
    # Forward: L Y = B, supernodes in postorder.
    for sn, (rows, block) in zip(supernodes, factor.columns):
        k = sn.n_cols
        y_sn = y[rows[:k]]
        _solve_lower_inplace(block[:k, :], y_sn, False)
        y[rows[:k]] = y_sn
        if len(rows) > k:
            y[rows[k:]] -= block[k:, :] @ y_sn
    # Backward: L^T X = Y, supernodes in reverse.
    x = y
    for sn, (rows, block) in zip(reversed(supernodes),
                                 reversed(factor.columns)):
        k = sn.n_cols
        rhs = x[rows[:k]]
        if len(rows) > k:
            rhs -= block[k:, :].T @ x[rows[k:]]
        _solve_upper_inplace(block[:k, :].T, rhs, False)
        x[rows[:k]] = rhs
    return x[:, 0] if was_vector else x


def lu_solve(factors: LUFactors, b: np.ndarray) -> np.ndarray:
    """Solve (L U) X = B using the supernodal factors directly.

    Same conventions as :func:`cholesky_solve`; ``b`` may be a vector or
    an (n, k) panel.
    """
    supernodes = factors.symbolic.tree.supernodes
    y, was_vector = _as_panel(b)
    # Forward: L Y = B (unit-diagonal L; the stored diagonal holds U's
    # pivots and is never read by the unit solve).
    for sn, (rows, l_block, _u_block) in zip(supernodes, factors.fronts):
        k = sn.n_cols
        y_sn = y[rows[:k]]
        _solve_lower_inplace(l_block[:k, :], y_sn, True)
        y[rows[:k]] = y_sn
        if len(rows) > k:
            y[rows[k:]] -= l_block[k:, :] @ y_sn
    # Backward: U X = Y.
    x = y
    for sn, (rows, _l_block, u_block) in zip(reversed(supernodes),
                                             reversed(factors.fronts)):
        k = sn.n_cols
        rhs = x[rows[:k]]
        if len(rows) > k:
            rhs -= u_block[:, k:] @ x[rows[k:]]
        _solve_upper_inplace(u_block[:k, :k], rhs, False)
        x[rows[:k]] = rhs
    return x[:, 0] if was_vector else x
