"""Tuning knobs for the numeric engine (block sizes, worker counts).

The blocked dense kernels (:mod:`repro.numeric.dense`) and the
level-scheduled multifrontal factorizations
(:mod:`repro.numeric.cholesky` / :mod:`repro.numeric.lu`) read their
defaults from a process-global :class:`NumericTuning`.  Every knob can be
overridden per call (``block_size=`` / ``workers=`` arguments), set
globally (:func:`set_tuning`), or scoped with the :func:`tuned` context
manager::

    with tuned(block_size=96, workers=4):
        solver = SparseSolver(matrix)

Knobs:

* ``block_size`` — panel width of the right-looking blocked kernels.  The
  kernels spend their time in matrix-matrix products on panels of this
  width; 32–128 is the useful range on typical BLAS builds.  ``1``
  degenerates to the textbook per-pivot algorithm (useful as a reference
  in benchmarks).
* ``workers`` — thread count for level-scheduled multifrontal
  factorization.  NumPy's BLAS releases the GIL inside the dense kernels,
  so independent supernodes within an elimination-tree level run
  concurrently.  ``1`` means fully sequential.
* ``parallel_threshold`` — minimum number of supernodes in a level before
  the level is dispatched to the thread pool; tiny levels are cheaper to
  run inline than to schedule.
* ``scheduler`` — which :mod:`repro.numeric.schedule` backend runs the
  numeric phase: ``"level"`` (barrier per etree level, the baseline),
  ``"dag"`` (barrier-free dataflow dispatch), or ``"procs"``
  (subtree-parallel worker processes over shared memory).  All three are
  bit-identical; see docs/PERFORMANCE.md "Choosing a scheduler".
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

DEFAULT_BLOCK_SIZE = 48
DEFAULT_WORKERS = 1
DEFAULT_PARALLEL_THRESHOLD = 2
DEFAULT_SCHEDULER = "level"

#: Mirrors repro.numeric.schedule.SCHEDULER_NAMES (kept literal here so
#: tuning stays import-light and cycle-free).
SCHEDULERS = ("level", "dag", "procs")


@dataclass(frozen=True)
class NumericTuning:
    """Performance knobs of the numeric engine."""

    block_size: int = DEFAULT_BLOCK_SIZE
    workers: int = DEFAULT_WORKERS
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    scheduler: str = DEFAULT_SCHEDULER

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.parallel_threshold < 1:
            raise ValueError("parallel_threshold must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}"
            )


_tuning = NumericTuning()


def get_tuning() -> NumericTuning:
    """The process-global tuning currently in effect."""
    return _tuning


def set_tuning(tuning: NumericTuning) -> NumericTuning:
    """Replace the global tuning; returns the previous value."""
    global _tuning
    previous = _tuning
    _tuning = tuning
    return previous


@contextmanager
def tuned(**overrides):
    """Temporarily override tuning fields (``block_size=``, ``workers=``,
    ``parallel_threshold=``, ``scheduler=``) within a ``with`` block."""
    previous = set_tuning(replace(_tuning, **overrides))
    try:
        yield _tuning
    finally:
        set_tuning(previous)


def resolve_block_size(block_size: int | None) -> int:
    """Per-call override, falling back to the global tuning."""
    return _tuning.block_size if block_size is None else int(block_size)


def resolve_workers(workers: int | None) -> int:
    """Per-call override, falling back to the global tuning."""
    return _tuning.workers if workers is None else int(workers)


def resolve_scheduler(scheduler: str | None) -> str:
    """Per-call override, falling back to the global tuning."""
    if scheduler is None:
        return _tuning.scheduler
    if scheduler not in SCHEDULERS:
        raise ValueError(f"scheduler must be one of {SCHEDULERS}")
    return scheduler
