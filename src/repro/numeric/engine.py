"""Multifrontal execution engine: pattern-cached contexts + metrics.

This module is the machinery shared by :func:`multifrontal_cholesky` and
:func:`multifrontal_lu`:

* **Pattern-cached numeric context** (:class:`NumericContext`): for a fixed
  symbolic analysis, the permutation of A's values into the permuted matrix
  and the scatter of those values into every supernode's frontal matrix are
  pure functions of the nonzero pattern.  They are resolved *once* into
  flat index maps and cached on the symbolic object, so each numeric
  (re)factorization assembles every front with two fancy-indexing
  operations instead of per-entry Python loops — the amortized-analysis
  serving pattern of CKTSO-style circuit simulation.

* **Scheduled parallel traversal**: the actual execution strategies live
  in :mod:`repro.numeric.schedule` — level-scheduled barriers (baseline),
  barrier-free DAG dispatch, and subtree-parallel worker processes — all
  bit-identical for every worker count.  ``run_level_scheduled`` and
  ``TaskTimer`` are re-exported here for backward compatibility.

* **Metrics export** (:func:`export_factor_metrics`): kernel FLOP rates,
  level widths, scheduler evidence (ready-queue depth, dispatch latency,
  per-worker busy/idle), and worker occupancy land in the process-global
  :func:`repro.obs.global_registry` so run artifacts (and
  ``repro report --diff``) make numeric-engine regressions visible.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.numeric.schedule.base import (
    SCHEDULER_NAMES,
    ScheduleStats,
    TaskTimer,
)
from repro.numeric.schedule.level import run_level_scheduled
from repro.obs import telemetry
from repro.obs.metrics import global_registry
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.etree import etree_level_sets

__all__ = [
    "NumericContext",
    "TaskTimer",
    "export_factor_metrics",
    "last_factor_attribution",
    "numeric_context",
    "row_permutation_data_map",
    "run_level_scheduled",
]


def _as_int_index(data: np.ndarray) -> np.ndarray:
    return np.asarray(data, dtype=np.int64)


def _arange_csc(n_rows: int, n_cols: int, rows: np.ndarray,
                cols: np.ndarray) -> CSCMatrix:
    """CSC of the given pattern whose values are the source entry indices.

    Entry values are ``arange(nnz)`` floats; after conversion, ``.data``
    tells for every CSC slot which source entry landed there (exact for any
    nnz < 2**53; patterns here are orders of magnitude smaller).
    """
    vals = np.arange(len(rows), dtype=np.float64)
    return CSCMatrix.from_coo(COOMatrix(n_rows, n_cols, rows, cols, vals))


def row_permutation_data_map(matrix: CSCMatrix,
                             row_perm: np.ndarray) -> np.ndarray:
    """Index map for applying a row permutation to a fixed CSC pattern.

    Returns ``idx`` such that for any matrix ``M`` with this pattern, the
    row-permuted matrix (rows mapped through ``inverse(row_perm)``, as
    :func:`repro.ordering.pivoting.apply_static_pivoting` builds it) has
    ``data == M.data[idx]`` on its own fixed pattern.
    """
    inverse = np.empty_like(row_perm)
    inverse[row_perm] = np.arange(len(row_perm))
    coo = matrix.to_coo()
    tagged = _arange_csc(matrix.n_rows, matrix.n_cols,
                         inverse[coo.rows], coo.cols)
    return _as_int_index(tagged.data)


class NumericContext:
    """Precomputed per-pattern index maps for fast numeric factorization.

    Built once per (symbolic analysis, matrix pattern) and cached on the
    symbolic object; every subsequent factorization with the same pattern
    reuses the maps, turning front assembly into pure NumPy gathers.

    Attributes:
        perm_data: ``permuted.data == matrix.data[perm_data]``.
        flat_pos / data_idx: per-supernode scatter maps;
            ``front.flat[flat_pos[i]] = permuted_data[data_idx[i]]``
            initializes supernode ``i``'s front from A's entries (both the
            L and — for LU — the U part).
        sn_parent: supernode parent array (``-1`` for roots) — the task
            dependence structure the DAG and subtree schedulers consume.
        levels: supernode level sets (leaves first) for the level
            scheduler.
    """

    def __init__(self, symbolic: SymbolicFactorization,
                 matrix: CSCMatrix) -> None:
        self.symbolic = symbolic
        if matrix.n_rows != symbolic.n or matrix.n_cols != symbolic.n:
            raise ValueError(
                "matrix pattern does not match the symbolic analysis; "
                "run symbolic_factorize on this matrix first"
            )
        self.src_indptr = matrix.indptr.copy()
        self.src_indices = matrix.indices.copy()

        n = matrix.n_rows
        perm = symbolic.perm
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(n)
        coo = matrix.to_coo()
        tagged = _arange_csc(n, n, inverse[coo.rows], inverse[coo.cols])
        analyzed = symbolic.permuted
        if not (np.array_equal(tagged.indptr, analyzed.indptr)
                and np.array_equal(tagged.indices, analyzed.indices)):
            raise ValueError(
                "matrix pattern does not match the symbolic analysis; "
                "run symbolic_factorize on this matrix first"
            )
        self.perm_data = _as_int_index(tagged.data)

        tree = symbolic.tree
        self.sn_parent = np.array([sn.parent for sn in tree.supernodes],
                                  dtype=np.int64)
        self.levels = etree_level_sets(self.sn_parent)

        lower_maps = self._build_column_maps(
            analyzed.indptr, analyzed.indices
        )
        if symbolic.kind == "lu":
            upper_maps = self._build_row_maps(analyzed)
            self.flat_pos = [
                np.concatenate([lo[0], up[0]])
                for lo, up in zip(lower_maps, upper_maps)
            ]
            self.data_idx = [
                np.concatenate([lo[1], up[1]])
                for lo, up in zip(lower_maps, upper_maps)
            ]
        else:
            self.flat_pos = [m[0] for m in lower_maps]
            self.data_idx = [m[1] for m in lower_maps]

    # -- construction helpers ------------------------------------------------

    def _build_column_maps(self, indptr: np.ndarray, indices: np.ndarray
                           ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-supernode (front flat position, permuted data index) pairs
        for A's at-or-below-diagonal entries (the L part of every front)."""
        maps = []
        for sn in self.symbolic.tree.supernodes:
            size = sn.front_size
            flat: list[np.ndarray] = []
            data: list[np.ndarray] = []
            for local, j in enumerate(range(sn.first_col, sn.last_col + 1)):
                lo, hi = int(indptr[j]), int(indptr[j + 1])
                rows = indices[lo:hi]
                # Rows are sorted; the lower-triangle part is a suffix.
                start = int(np.searchsorted(rows, j))
                rows = rows[start:]
                pos = np.searchsorted(sn.rows, rows)
                ok = (pos < size) & (sn.rows[np.minimum(pos, size - 1)]
                                     == rows)
                flat.append(pos[ok] * size + local)
                data.append(lo + start + np.flatnonzero(ok))
            maps.append((
                np.concatenate(flat) if flat else np.empty(0, np.int64),
                np.concatenate(data) if data else np.empty(0, np.int64),
            ))
        return maps

    def _build_row_maps(self, analyzed: CSCMatrix
                        ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-supernode maps for A's strictly-right-of-diagonal row
        entries (the U part of LU fronts), via a tagged transpose."""
        n = analyzed.n_rows
        cols = np.repeat(np.arange(n, dtype=np.int64),
                         np.diff(analyzed.indptr))
        # "Columns" of the tagged transpose are rows of the permuted
        # matrix; its data slots carry the permuted-data index.
        t = _arange_csc(n, n, cols, analyzed.indices.copy())
        t_src = _as_int_index(t.data)
        maps = []
        for sn in self.symbolic.tree.supernodes:
            size = sn.front_size
            flat: list[np.ndarray] = []
            data: list[np.ndarray] = []
            for local, j in enumerate(range(sn.first_col, sn.last_col + 1)):
                lo, hi = int(t.indptr[j]), int(t.indptr[j + 1])
                cidx = t.indices[lo:hi]
                start = int(np.searchsorted(cidx, j + 1))  # strictly right
                cidx = cidx[start:]
                pos = np.searchsorted(sn.rows, cidx)
                ok = (pos < size) & (sn.rows[np.minimum(pos, size - 1)]
                                     == cidx)
                flat.append(local * size + pos[ok])
                data.append(t_src[lo + start + np.flatnonzero(ok)])
            maps.append((
                np.concatenate(flat) if flat else np.empty(0, np.int64),
                np.concatenate(data) if data else np.empty(0, np.int64),
            ))
        return maps

    # -- queries -------------------------------------------------------------

    def matches(self, matrix: CSCMatrix) -> bool:
        """True if this context was built for ``matrix``'s pattern."""
        return (
            np.array_equal(self.src_indptr, matrix.indptr)
            and np.array_equal(self.src_indices, matrix.indices)
        )

    def permuted_data(self, matrix: CSCMatrix) -> np.ndarray:
        """Values of ``matrix.permuted(symbolic.perm)`` without the
        COO round trip."""
        return matrix.data[self.perm_data]


def numeric_context(symbolic: SymbolicFactorization,
                    matrix: CSCMatrix) -> NumericContext:
    """Get (or build and cache) the numeric context for a pattern."""
    ctx = getattr(symbolic, "_numeric_ctx", None)
    if ctx is None or not ctx.matches(matrix):
        ctx = NumericContext(symbolic, matrix)
        symbolic._numeric_ctx = ctx
    return ctx


# -- attribution and metrics export --------------------------------------------


# Attribution view of the most recent factorization (see
# last_factor_attribution); written by export_factor_metrics under
# _attribution_lock.  Worker-role processes (procs scheduler subtree
# workers, solve --procs load generators) never write it — they publish
# through the telemetry sink instead, so a forked worker cannot clobber
# the parent's view (each process has its own copy of this global, but
# keeping worker copies empty makes the ownership unambiguous and the
# merged view comes from the collector).
_last_attribution: dict | None = None
_attribution_lock = threading.Lock()


def last_factor_attribution() -> dict | None:
    """The numeric-engine attribution view of the most recent
    factorization in this process: the level-width series (available
    parallelism over the elimination-tree schedule), scheduler evidence
    (ready-queue depth, dispatch latency, per-worker busy/idle lanes),
    worker occupancy, and wall/busy seconds.  Embedded into solve run
    artifacts as the ``attribution.numeric`` section — the
    software-engine analogue of the simulator's cycle accounting.
    ``None`` before any factorization (and always in worker-role
    processes, which publish via the telemetry sink instead)."""
    with _attribution_lock:
        return _last_attribution


def export_factor_metrics(
    symbolic: SymbolicFactorization,
    seconds: float,
    block_size: int,
    levels: list[np.ndarray],
    busy_seconds: float,
    stats: ScheduleStats,
) -> None:
    """Report one numeric factorization into the global metrics registry
    and the per-process attribution channel."""
    global _last_attribution
    workers = stats.workers
    parallel_tasks = stats.dispatched
    widths = [len(level) for level in levels]
    n_sn = sum(widths)
    attribution = {
        "level_widths": widths,
        # mean runnable supernodes per level — the schedule's available
        # parallelism, independent of worker count
        "avg_parallelism": (n_sn / len(levels)) if levels else 0.0,
        "serial_levels": sum(1 for w in widths if w <= 1),
        "workers": workers,
        "parallel_tasks": parallel_tasks,
        "seconds": seconds,
        "busy_seconds": busy_seconds,
        "occupancy": (
            min(1.0, busy_seconds / (seconds * workers))
            if workers > 1 and seconds > 0.0 else 1.0
        ),
        "schedule": stats.summary(),
    }
    context = telemetry.current_context()
    in_worker = context is not None and context.role == "worker"
    if not in_worker:
        with _attribution_lock:
            _last_attribution = attribution
    sink = telemetry.current_sink()
    if sink is not None:
        sink.attribution(attribution)

    reg = global_registry()
    reg.counter("numeric.factor.count").inc()
    reg.counter("numeric.factor.seconds").inc(seconds)
    reg.counter("numeric.factor.flops").inc(symbolic.flops)
    if seconds > 0.0:
        reg.gauge("numeric.factor.gflops_per_s").set(
            symbolic.flops / seconds / 1e9
        )
    reg.gauge("numeric.factor.block_size").set(block_size)
    reg.gauge("numeric.factor.workers").set(workers)
    reg.counter("numeric.parallel.tasks").inc(parallel_tasks)
    if workers > 1 and seconds > 0.0:
        reg.gauge("numeric.parallel.occupancy").set(
            min(1.0, busy_seconds / (seconds * workers))
        )
    reg.gauge("numeric.levels.count").set(len(levels))
    width_hist = reg.histogram("numeric.levels.width")
    for level in levels:
        width_hist.observe(len(level))

    sched = attribution["schedule"]
    reg.gauge("numeric.sched.backend").set(
        SCHEDULER_NAMES.index(stats.scheduler)
    )
    reg.counter(f"numeric.sched.tasks.{stats.scheduler}").inc(
        stats.dispatched + stats.inline_tasks
    )
    reg.gauge("numeric.sched.ready_depth.mean").set(
        sched["ready_depth"]["mean"]
    )
    reg.gauge("numeric.sched.ready_depth.max").set(
        sched["ready_depth"]["max"]
    )
    reg.gauge("numeric.sched.dispatch_latency_ms.mean").set(
        sched["dispatch_latency_ms"]["mean"]
    )
    reg.gauge("numeric.sched.dispatch_latency_ms.max").set(
        sched["dispatch_latency_ms"]["max"]
    )
    reg.gauge("numeric.sched.idle_s").set(sched["idle_s"])
    reg.gauge("numeric.sched.worker_tasks.imbalance").set(
        sched["task_imbalance"]
    )
    if stats.n_subtrees:
        reg.gauge("numeric.sched.subtrees").set(stats.n_subtrees)
