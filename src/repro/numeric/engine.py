"""Level-scheduled multifrontal execution engine.

This module is the machinery shared by :func:`multifrontal_cholesky` and
:func:`multifrontal_lu`:

* **Pattern-cached numeric context** (:class:`NumericContext`): for a fixed
  symbolic analysis, the permutation of A's values into the permuted matrix
  and the scatter of those values into every supernode's frontal matrix are
  pure functions of the nonzero pattern.  They are resolved *once* into
  flat index maps and cached on the symbolic object, so each numeric
  (re)factorization assembles every front with two fancy-indexing
  operations instead of per-entry Python loops — the amortized-analysis
  serving pattern of CKTSO-style circuit simulation.

* **Level-scheduled parallel traversal** (:func:`run_level_scheduled`):
  elimination-tree level sets (:func:`repro.symbolic.etree.etree_level_sets`
  over the supernode parent array) group mutually independent supernodes;
  levels run leaves-to-root with a barrier between them, and supernodes
  within a level are dispatched to a ``ThreadPoolExecutor`` (NumPy's BLAS
  releases the GIL inside the blocked kernels).  Each supernode's
  computation — assembly, extend-add in fixed child order, blocked partial
  factorization — is deterministic and writes only its own slots, so
  ``workers=N`` produces bit-identical factors for every N.

* **Metrics export** (:func:`export_factor_metrics`): kernel FLOP rates,
  level widths, and worker occupancy land in the process-global
  :func:`repro.obs.global_registry` so run artifacts (and
  ``repro report --diff``) make numeric-engine regressions visible.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.obs.metrics import global_registry
from repro.obs.telemetry import active as telemetry_active
from repro.obs.telemetry import task_span
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.etree import etree_level_sets


def _as_int_index(data: np.ndarray) -> np.ndarray:
    return np.asarray(data, dtype=np.int64)


def _arange_csc(n_rows: int, n_cols: int, rows: np.ndarray,
                cols: np.ndarray) -> CSCMatrix:
    """CSC of the given pattern whose values are the source entry indices.

    Entry values are ``arange(nnz)`` floats; after conversion, ``.data``
    tells for every CSC slot which source entry landed there (exact for any
    nnz < 2**53; patterns here are orders of magnitude smaller).
    """
    vals = np.arange(len(rows), dtype=np.float64)
    return CSCMatrix.from_coo(COOMatrix(n_rows, n_cols, rows, cols, vals))


def row_permutation_data_map(matrix: CSCMatrix,
                             row_perm: np.ndarray) -> np.ndarray:
    """Index map for applying a row permutation to a fixed CSC pattern.

    Returns ``idx`` such that for any matrix ``M`` with this pattern, the
    row-permuted matrix (rows mapped through ``inverse(row_perm)``, as
    :func:`repro.ordering.pivoting.apply_static_pivoting` builds it) has
    ``data == M.data[idx]`` on its own fixed pattern.
    """
    inverse = np.empty_like(row_perm)
    inverse[row_perm] = np.arange(len(row_perm))
    coo = matrix.to_coo()
    tagged = _arange_csc(matrix.n_rows, matrix.n_cols,
                         inverse[coo.rows], coo.cols)
    return _as_int_index(tagged.data)


class NumericContext:
    """Precomputed per-pattern index maps for fast numeric factorization.

    Built once per (symbolic analysis, matrix pattern) and cached on the
    symbolic object; every subsequent factorization with the same pattern
    reuses the maps, turning front assembly into pure NumPy gathers.

    Attributes:
        perm_data: ``permuted.data == matrix.data[perm_data]``.
        flat_pos / data_idx: per-supernode scatter maps;
            ``front.flat[flat_pos[i]] = permuted_data[data_idx[i]]``
            initializes supernode ``i``'s front from A's entries (both the
            L and — for LU — the U part).
        levels: supernode level sets (leaves first) for the scheduler.
    """

    def __init__(self, symbolic: SymbolicFactorization,
                 matrix: CSCMatrix) -> None:
        self.symbolic = symbolic
        if matrix.n_rows != symbolic.n or matrix.n_cols != symbolic.n:
            raise ValueError(
                "matrix pattern does not match the symbolic analysis; "
                "run symbolic_factorize on this matrix first"
            )
        self.src_indptr = matrix.indptr.copy()
        self.src_indices = matrix.indices.copy()

        n = matrix.n_rows
        perm = symbolic.perm
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(n)
        coo = matrix.to_coo()
        tagged = _arange_csc(n, n, inverse[coo.rows], inverse[coo.cols])
        analyzed = symbolic.permuted
        if not (np.array_equal(tagged.indptr, analyzed.indptr)
                and np.array_equal(tagged.indices, analyzed.indices)):
            raise ValueError(
                "matrix pattern does not match the symbolic analysis; "
                "run symbolic_factorize on this matrix first"
            )
        self.perm_data = _as_int_index(tagged.data)

        tree = symbolic.tree
        sn_parent = np.array([sn.parent for sn in tree.supernodes],
                             dtype=np.int64)
        self.levels = etree_level_sets(sn_parent)

        lower_maps = self._build_column_maps(
            analyzed.indptr, analyzed.indices
        )
        if symbolic.kind == "lu":
            upper_maps = self._build_row_maps(analyzed)
            self.flat_pos = [
                np.concatenate([lo[0], up[0]])
                for lo, up in zip(lower_maps, upper_maps)
            ]
            self.data_idx = [
                np.concatenate([lo[1], up[1]])
                for lo, up in zip(lower_maps, upper_maps)
            ]
        else:
            self.flat_pos = [m[0] for m in lower_maps]
            self.data_idx = [m[1] for m in lower_maps]

    # -- construction helpers ------------------------------------------------

    def _build_column_maps(self, indptr: np.ndarray, indices: np.ndarray
                           ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-supernode (front flat position, permuted data index) pairs
        for A's at-or-below-diagonal entries (the L part of every front)."""
        maps = []
        for sn in self.symbolic.tree.supernodes:
            size = sn.front_size
            flat: list[np.ndarray] = []
            data: list[np.ndarray] = []
            for local, j in enumerate(range(sn.first_col, sn.last_col + 1)):
                lo, hi = int(indptr[j]), int(indptr[j + 1])
                rows = indices[lo:hi]
                # Rows are sorted; the lower-triangle part is a suffix.
                start = int(np.searchsorted(rows, j))
                rows = rows[start:]
                pos = np.searchsorted(sn.rows, rows)
                ok = (pos < size) & (sn.rows[np.minimum(pos, size - 1)]
                                     == rows)
                flat.append(pos[ok] * size + local)
                data.append(lo + start + np.flatnonzero(ok))
            maps.append((
                np.concatenate(flat) if flat else np.empty(0, np.int64),
                np.concatenate(data) if data else np.empty(0, np.int64),
            ))
        return maps

    def _build_row_maps(self, analyzed: CSCMatrix
                        ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-supernode maps for A's strictly-right-of-diagonal row
        entries (the U part of LU fronts), via a tagged transpose."""
        n = analyzed.n_rows
        cols = np.repeat(np.arange(n, dtype=np.int64),
                         np.diff(analyzed.indptr))
        # "Columns" of the tagged transpose are rows of the permuted
        # matrix; its data slots carry the permuted-data index.
        t = _arange_csc(n, n, cols, analyzed.indices.copy())
        t_src = _as_int_index(t.data)
        maps = []
        for sn in self.symbolic.tree.supernodes:
            size = sn.front_size
            flat: list[np.ndarray] = []
            data: list[np.ndarray] = []
            for local, j in enumerate(range(sn.first_col, sn.last_col + 1)):
                lo, hi = int(t.indptr[j]), int(t.indptr[j + 1])
                cidx = t.indices[lo:hi]
                start = int(np.searchsorted(cidx, j + 1))  # strictly right
                cidx = cidx[start:]
                pos = np.searchsorted(sn.rows, cidx)
                ok = (pos < size) & (sn.rows[np.minimum(pos, size - 1)]
                                     == cidx)
                flat.append(local * size + pos[ok])
                data.append(t_src[lo + start + np.flatnonzero(ok)])
            maps.append((
                np.concatenate(flat) if flat else np.empty(0, np.int64),
                np.concatenate(data) if data else np.empty(0, np.int64),
            ))
        return maps

    # -- queries -------------------------------------------------------------

    def matches(self, matrix: CSCMatrix) -> bool:
        """True if this context was built for ``matrix``'s pattern."""
        return (
            np.array_equal(self.src_indptr, matrix.indptr)
            and np.array_equal(self.src_indices, matrix.indices)
        )

    def permuted_data(self, matrix: CSCMatrix) -> np.ndarray:
        """Values of ``matrix.permuted(symbolic.perm)`` without the
        COO round trip."""
        return matrix.data[self.perm_data]


def numeric_context(symbolic: SymbolicFactorization,
                    matrix: CSCMatrix) -> NumericContext:
    """Get (or build and cache) the numeric context for a pattern."""
    ctx = getattr(symbolic, "_numeric_ctx", None)
    if ctx is None or not ctx.matches(matrix):
        ctx = NumericContext(symbolic, matrix)
        symbolic._numeric_ctx = ctx
    return ctx


# -- level-scheduled execution -------------------------------------------------


def run_level_scheduled(
    levels: list[np.ndarray],
    n_supernodes: int,
    task: Callable[[int], None],
    workers: int,
    parallel_threshold: int = 2,
) -> int:
    """Run ``task(i)`` for every supernode, children before parents.

    With ``workers == 1`` this is a plain ascending-index loop (ascending
    index order is a valid bottom-up order of the assembly tree).  With
    more workers, levels execute in order with a barrier between them and
    the supernodes inside each wide-enough level are dispatched to a
    thread pool.  Worker exceptions propagate to the caller.

    When runtime telemetry is on (:mod:`repro.obs.telemetry`), the
    scheduler emits one ``numeric.level`` span per level (main thread)
    and each pool-dispatched supernode emits a ``numeric.supernode``
    span *from its worker thread* — these go straight to the per-process
    JSONL sink (never into artifact memory), so the collected timeline
    shows the worker lanes of the factorization.  With telemetry off the
    instrumentation costs one module-level flag check per level.

    Returns the number of tasks that were dispatched to the pool.
    """
    if workers <= 1:
        for i in range(n_supernodes):
            task(i)
        return 0
    traced = telemetry_active()

    def traced_task(i: int) -> None:
        with task_span("numeric.supernode", sn=i):
            task(i)

    pool_task = traced_task if traced else task
    dispatched = 0
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for depth, level in enumerate(levels):
            # task_span is a shared no-op while telemetry is off.
            with task_span("numeric.level", level=depth,
                           width=len(level)):
                if len(level) < parallel_threshold:
                    for i in level:
                        task(int(i))
                else:
                    # list() drains the iterator: barrier + exception
                    # propagation.
                    list(pool.map(pool_task, [int(i) for i in level]))
                    dispatched += len(level)
    return dispatched


# Attribution view of the most recent factorization (see
# last_factor_attribution); written by export_factor_metrics.
_last_attribution: dict | None = None


def last_factor_attribution() -> dict | None:
    """The numeric-engine attribution view of the most recent
    factorization in this process: the level-width series (available
    parallelism over the elimination-tree schedule), worker occupancy,
    and wall/busy seconds.  Embedded into solve run artifacts as the
    ``attribution.numeric`` section — the software-engine analogue of the
    simulator's cycle accounting.  ``None`` before any factorization."""
    return _last_attribution


def export_factor_metrics(
    symbolic: SymbolicFactorization,
    seconds: float,
    workers: int,
    block_size: int,
    levels: list[np.ndarray],
    busy_seconds: float,
    parallel_tasks: int,
) -> None:
    """Report one numeric factorization into the global metrics registry."""
    global _last_attribution
    widths = [len(level) for level in levels]
    n_sn = sum(widths)
    _last_attribution = {
        "level_widths": widths,
        # mean runnable supernodes per level — the schedule's available
        # parallelism, independent of worker count
        "avg_parallelism": (n_sn / len(levels)) if levels else 0.0,
        "serial_levels": sum(1 for w in widths if w <= 1),
        "workers": workers,
        "parallel_tasks": parallel_tasks,
        "seconds": seconds,
        "busy_seconds": busy_seconds,
        "occupancy": (
            min(1.0, busy_seconds / (seconds * workers))
            if workers > 1 and seconds > 0.0 else 1.0
        ),
    }
    reg = global_registry()
    reg.counter("numeric.factor.count").inc()
    reg.counter("numeric.factor.seconds").inc(seconds)
    reg.counter("numeric.factor.flops").inc(symbolic.flops)
    if seconds > 0.0:
        reg.gauge("numeric.factor.gflops_per_s").set(
            symbolic.flops / seconds / 1e9
        )
    reg.gauge("numeric.factor.block_size").set(block_size)
    reg.gauge("numeric.factor.workers").set(workers)
    reg.counter("numeric.parallel.tasks").inc(parallel_tasks)
    if workers > 1 and seconds > 0.0:
        reg.gauge("numeric.parallel.occupancy").set(
            min(1.0, busy_seconds / (seconds * workers))
        )
    reg.gauge("numeric.levels.count").set(len(levels))
    widths = reg.histogram("numeric.levels.width")
    for level in levels:
        widths.observe(len(level))


class TaskTimer:
    """Per-supernode wall-clock accumulator (disjoint slots, no locking)."""

    def __init__(self, n: int) -> None:
        self.busy = np.zeros(n)

    def time(self, i: int):
        return _TimeSlot(self.busy, i)

    def total(self) -> float:
        return float(self.busy.sum())


class _TimeSlot:
    __slots__ = ("_busy", "_i", "_t0")

    def __init__(self, busy: np.ndarray, i: int) -> None:
        self._busy = busy
        self._i = i

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._busy[self._i] += time.perf_counter() - self._t0
        return False
