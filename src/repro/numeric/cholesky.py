"""Multifrontal sparse Cholesky factorization (Listing 2).

The functional model of the computation Spatula accelerates: traverse the
supernodal assembly tree leaves-to-root; at each supernode, assemble the
frontal CSQ matrix from A's entries plus the children's update matrices
(extend-add), run the partial dense factorization, and pass the Schur
complement up as this supernode's update matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numeric.dense import partial_cholesky
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.assembly import initial_front_values
from repro.symbolic.csq import CSQMatrix


@dataclass
class CholeskyFactor:
    """The numeric output of multifrontal Cholesky.

    Attributes:
        symbolic: the analysis this factor was computed under.
        columns: per-supernode (rows, block) pairs, where ``block`` is the
            front's first n_cols columns holding final L values at global
            row coordinates ``rows``.
    """

    symbolic: SymbolicFactorization
    columns: list[tuple[np.ndarray, np.ndarray]]

    def to_csc(self) -> CSCMatrix:
        """Materialize L (of the *permuted* matrix) as CSC."""
        rows_all: list[np.ndarray] = []
        cols_all: list[np.ndarray] = []
        vals_all: list[np.ndarray] = []
        for sn, (rows, block) in zip(
            self.symbolic.tree.supernodes, self.columns
        ):
            n_cols = sn.n_cols
            for local in range(n_cols):
                col_rows = rows[local:]
                rows_all.append(col_rows)
                cols_all.append(
                    np.full(len(col_rows), sn.first_col + local,
                            dtype=np.int64)
                )
                vals_all.append(block[local:, local])
        n = self.symbolic.n
        coo = COOMatrix(
            n, n,
            np.concatenate(rows_all),
            np.concatenate(cols_all),
            np.concatenate(vals_all),
        )
        return CSCMatrix.from_coo(coo)

    def nnz(self) -> int:
        """Stored nonzeros of L (matches the symbolic prediction)."""
        return sum(
            sum(len(rows) - local for local in range(sn.n_cols))
            for sn, (rows, _) in zip(
                self.symbolic.tree.supernodes, self.columns
            )
        )


def multifrontal_cholesky(
    matrix: CSCMatrix, symbolic: SymbolicFactorization
) -> CholeskyFactor:
    """Numerically factor a matrix under an existing symbolic analysis.

    Args:
        matrix: the *original* (unpermuted) SPD matrix; it is permuted with
            ``symbolic.perm`` internally, so the same analysis can be reused
            across many numeric factorizations (Figure 2's loop).
    """
    if symbolic.kind != "cholesky":
        raise ValueError("symbolic analysis is not for Cholesky")
    permuted = matrix.permuted(symbolic.perm)
    tree = symbolic.tree
    updates: dict[int, CSQMatrix] = {}
    columns: list[tuple[np.ndarray, np.ndarray]] = []

    for sn in tree.supernodes:
        front_values = initial_front_values(permuted, sn)
        front = CSQMatrix(sn.rows, front_values)
        # Gather updates from all children (extend-add).
        for child in sn.children:
            front.extend_add(updates.pop(child))
        partial_cholesky(front.values, sn.n_cols)
        # Keep only the factored columns (lower part).
        block = np.tril(front.values)[:, : sn.n_cols].copy()
        columns.append((sn.rows.copy(), block))
        if sn.parent >= 0 and sn.n_update_rows > 0:
            update = front.submatrix(sn.n_cols)
            # Only the lower triangle of the update is meaningful.
            update.values = np.tril(update.values)
            update.values += np.tril(update.values, -1).T
            updates[sn.index] = update
    if updates:
        raise AssertionError("unconsumed update matrices remain")
    return CholeskyFactor(symbolic=symbolic, columns=columns)
