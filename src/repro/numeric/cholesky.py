"""Multifrontal sparse Cholesky factorization (Listing 2).

The functional model of the computation Spatula accelerates: traverse the
supernodal assembly tree leaves-to-root; at each supernode, assemble the
frontal CSQ matrix from A's entries plus the children's update matrices
(extend-add), run the blocked partial dense factorization, and pass the
Schur complement up as this supernode's update matrix.

Assembly uses the pattern-cached scatter maps of
:mod:`repro.numeric.engine`, the partial factorization is the blocked
BLAS-3 kernel of :mod:`repro.numeric.dense`, and with ``workers > 1``
independent supernodes run under one of the interchangeable schedulers
of :mod:`repro.numeric.schedule` (level barriers, barrier-free DAG, or
subtree-parallel processes) — the result is bit-identical to the
sequential leaves-to-root order for every scheduler and worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.numeric.dense import partial_cholesky
from repro.numeric.engine import (
    export_factor_metrics,
    numeric_context,
)
from repro.numeric.schedule import SupernodeJob, run_scheduled
from repro.numeric.tuning import (
    get_tuning,
    resolve_block_size,
    resolve_scheduler,
    resolve_workers,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization


def _supernode_triangle(rows: np.ndarray, n_cols: int
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized (row, col) local index pairs of a supernode's stored
    lower-trapezoidal block: all (i, j) with j < n_cols and i >= j."""
    m = len(rows)
    lengths = m - np.arange(n_cols)
    jj = np.repeat(np.arange(n_cols), lengths)
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    ii = np.arange(int(lengths.sum())) - np.repeat(offsets, lengths) + jj
    return ii, jj


@dataclass
class CholeskyFactor:
    """The numeric output of multifrontal Cholesky.

    Attributes:
        symbolic: the analysis this factor was computed under.
        columns: per-supernode (rows, block) pairs, where ``block`` is the
            front's first n_cols columns holding final L values at global
            row coordinates ``rows``.
    """

    symbolic: SymbolicFactorization
    columns: list[tuple[np.ndarray, np.ndarray]]

    def to_csc(self) -> CSCMatrix:
        """Materialize L (of the *permuted* matrix) as CSC.

        Assembles whole supernode blocks at once with vectorized
        ``np.repeat`` / ``np.concatenate`` index arithmetic (no per-column
        Python loop).
        """
        rows_all: list[np.ndarray] = []
        cols_all: list[np.ndarray] = []
        vals_all: list[np.ndarray] = []
        for sn, (rows, block) in zip(
            self.symbolic.tree.supernodes, self.columns
        ):
            ii, jj = _supernode_triangle(rows, sn.n_cols)
            rows_all.append(rows[ii])
            cols_all.append(sn.first_col + jj)
            vals_all.append(block[ii, jj])
        n = self.symbolic.n
        coo = COOMatrix(
            n, n,
            np.concatenate(rows_all),
            np.concatenate(cols_all),
            np.concatenate(vals_all),
        )
        return CSCMatrix.from_coo(coo)

    def nnz(self) -> int:
        """Stored nonzeros of L (matches the symbolic prediction)."""
        return sum(
            sum(len(rows) - local for local in range(sn.n_cols))
            for sn, (rows, _) in zip(
                self.symbolic.tree.supernodes, self.columns
            )
        )


class CholeskyJob(SupernodeJob):
    """The per-supernode Cholesky task body (see ``SupernodeJob``).

    Only the lower triangle of each update matrix is meaningful, and the
    whole Cholesky pipeline only ever reads lower triangles — the
    trailing square is passed as-is.
    """

    def __init__(self, ctx, permuted_data: np.ndarray, block: int) -> None:
        super().__init__(ctx, permuted_data, block)
        self.columns: list[tuple[np.ndarray, np.ndarray] | None] = \
            [None] * self.n_supernodes

    def _factor(self, i: int, sn, values: np.ndarray) -> None:
        partial_cholesky(values, sn.n_cols, block=self.block)
        self.columns[i] = (sn.rows.copy(),
                           np.tril(values[:, : sn.n_cols]))

    def output_shapes(self, i: int) -> list[tuple[int, ...]]:
        sn = self.supernodes[i]
        return [(sn.front_size, sn.n_cols)]

    def output_arrays(self, i: int) -> list[np.ndarray]:
        return [self.columns[i][1]]

    def load_outputs(self, i: int, arrays: list[np.ndarray]) -> None:
        self.columns[i] = (self.supernodes[i].rows.copy(), arrays[0])


def multifrontal_cholesky(
    matrix: CSCMatrix,
    symbolic: SymbolicFactorization,
    workers: int | None = None,
    block_size: int | None = None,
    scheduler: str | None = None,
) -> CholeskyFactor:
    """Numerically factor a matrix under an existing symbolic analysis.

    Args:
        matrix: the *original* (unpermuted) SPD matrix; it is permuted with
            ``symbolic.perm`` internally, so the same analysis can be reused
            across many numeric factorizations (Figure 2's loop).
        workers: worker count for the parallel schedulers (defaults to
            the global :mod:`repro.numeric.tuning` value).  The factor is
            bit-identical for every worker count.
        block_size: dense-kernel panel width (defaults to tuning).
        scheduler: "level" | "dag" | "procs" (defaults to tuning; see
            :mod:`repro.numeric.schedule`).  Bit-identical across all.
    """
    if symbolic.kind != "cholesky":
        raise ValueError("symbolic analysis is not for Cholesky")
    workers = resolve_workers(workers)
    block = resolve_block_size(block_size)
    scheduler = resolve_scheduler(scheduler)
    t_start = time.perf_counter()

    ctx = numeric_context(symbolic, matrix)
    job = CholeskyJob(ctx, ctx.permuted_data(matrix), block)
    stats = run_scheduled(
        job, scheduler, workers,
        parallel_threshold=get_tuning().parallel_threshold,
    )
    job.check_consumed()
    export_factor_metrics(
        symbolic, time.perf_counter() - t_start, block,
        ctx.levels, job.timer.total(), stats,
    )
    return CholeskyFactor(symbolic=symbolic, columns=job.columns)
