"""End-to-end direct solver (the application loop of Figure 2).

``SparseSolver`` packages the full pipeline: fill-reducing ordering and
symbolic factorization once (``analyze``), then repeated numeric
factorizations (``factorize``) and cheap triangular solves (``solve``) as
matrix values evolve with a fixed pattern — the circuit-simulation /
physics-timestepping usage pattern that motivates the paper.

The analysis phase is amortized two ways: within one solver, the
pattern-cached scatter maps of :mod:`repro.numeric.engine` make every
``refactorize`` a pure-NumPy assembly; across solvers, the process-global
:class:`~repro.numeric.cache.AnalysisCache` shares the symbolic analysis
between instances built over the same pattern.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.numeric.cache import analysis_cache
from repro.numeric.cholesky import CholeskyFactor, multifrontal_cholesky
from repro.numeric.engine import row_permutation_data_map
from repro.numeric.lu import LUFactors, multifrontal_lu
from repro.numeric.refinement import RefinementResult, iterative_refinement
from repro.numeric.supernodal_solve import cholesky_solve, lu_solve
from repro.numeric.triangular import (
    solve_lower_csc,
    solve_upper_csc,
    solve_upper_csc_direct,
)
from repro.obs import span
from repro.obs.metrics import global_registry
from repro.ordering.pivoting import apply_static_pivoting
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize

logger = logging.getLogger(__name__)


class SparseSolver:
    """Direct solver for sparse linear systems via Cholesky or LU.

    Usage::

        solver = SparseSolver(A, kind="cholesky")   # analyze + factorize
        x = solver.solve(b)
        solver.refactorize(A_new_values)            # same pattern, new values
        x2 = solver.solve(b2)

    Args:
        matrix: square sparse matrix.  For kind="cholesky" it must be SPD;
            for kind="lu" it may be any (structurally nonsingular) square
            matrix — static row pivoting is applied automatically.
        kind: "cholesky" or "lu".
        ordering: fill-reducing ordering method — any name registered in
            :mod:`repro.ordering.registry` ("amd", "nd", "rcm", "natural",
            "local_refine", plugins), or "auto" to resolve the best known
            config for this matrix's family from the autotuner experience
            store (``tune_store``; falls back to "amd" with no store or
            no recorded experience).  "auto" is resolved to a concrete
            method *before* the analysis-cache key is formed, so cached
            analyses are shared with explicitly-ordered solvers.
        tune_store: autotuner experience database for ``ordering="auto"``
            — a :class:`~repro.obs.history.HistoryStore` or its directory
            path (see :mod:`repro.ordering.autotune`).  Ignored for
            concrete orderings.
        workers: worker count for the parallel numeric phase (``None``
            defers to the global :mod:`repro.numeric.tuning`).  The
            factor is bit-identical for every worker count.
        block_size: dense-kernel panel width (``None`` defers to tuning).
        scheduler: numeric-phase scheduler — "level", "dag", or "procs"
            (``None`` defers to tuning; see
            :mod:`repro.numeric.schedule` and docs/PERFORMANCE.md).
            Bit-identical across all schedulers.
        rhs_pad: batch-invariant solve width.  When > 1, every ``solve``
            with k <= rhs_pad right-hand sides runs as one zero-padded
            (n, rhs_pad) panel and the real columns are sliced out.
            Every dense kernel then sees batch-size-independent shapes,
            so each response is *bit-identical* no matter how requests
            were batched — the guarantee the coalescing serve layer
            (:mod:`repro.serve`) is built on.  The panel sweep amortizes
            its Python overhead across the width, so padding costs
            little wall-clock even for a single RHS (see
            docs/SERVING.md).  Default 1 (off: solve at the natural
            width).
        use_cache: share the symbolic analysis through the process-global
            :func:`~repro.numeric.cache.analysis_cache` so repeated solver
            construction over one pattern skips ordering and symbolic
            factorization.
    """

    def __init__(
        self,
        matrix: CSCMatrix,
        kind: str = "cholesky",
        ordering: str = "amd",
        relax_small: int = 8,
        relax_ratio: float = 0.3,
        workers: int | None = None,
        block_size: int | None = None,
        scheduler: str | None = None,
        rhs_pad: int = 1,
        use_cache: bool = True,
        tune_store=None,
    ) -> None:
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("solver requires a square matrix")
        if rhs_pad < 1:
            raise ValueError("rhs_pad must be >= 1")
        if ordering == "auto":
            # Resolve against the autotuner experience store before the
            # cache key is formed: the analysis cache must only ever see
            # concrete method names.  Tuned block_size/workers fill in
            # only where the caller left the knob at its default.
            from repro.ordering.autotune import resolve_auto

            tuned = resolve_auto(matrix, kind=kind, store=tune_store)
            ordering = tuned.ordering
            if block_size is None and tuned.block_size is not None:
                block_size = tuned.block_size
            if workers is None and tuned.workers is not None:
                workers = tuned.workers
            logger.info("ordering=auto resolved to %s (%s)",
                        ordering, tuned.source)
        self.kind = kind
        self.ordering = ordering  # concrete method ("auto" already resolved)
        self.workers = workers
        self.block_size = block_size
        self.scheduler = scheduler
        self.rhs_pad = rhs_pad
        # The pattern this solver was built for (refactorize validates
        # against it, so pattern changes fail loudly).
        self._src_indptr = matrix.indptr.copy()
        self._src_indices = matrix.indices.copy()
        self._row_perm: np.ndarray | None = None
        self._row_data_map: np.ndarray | None = None
        work = matrix
        if kind == "lu":
            work, self._row_perm = apply_static_pivoting(matrix)
            # Precompute the static-pivoting data map once: refactorize
            # then permutes new values with one gather instead of a COO
            # round trip per call.
            self._row_data_map = row_permutation_data_map(
                matrix, self._row_perm)
        elif kind != "cholesky":
            raise ValueError("kind must be 'cholesky' or 'lu'")
        if use_cache:
            self.symbolic: SymbolicFactorization = (
                analysis_cache().get_or_analyze(
                    work, kind=kind, ordering=ordering,
                    relax_small=relax_small, relax_ratio=relax_ratio,
                )
            )
        else:
            self.symbolic = symbolic_factorize(
                work, kind=kind, ordering=ordering,
                relax_small=relax_small, relax_ratio=relax_ratio,
            )
        if self.symbolic.quality is not None:
            # A cache hit skips symbolic_factorize, so re-export the
            # ordering-quality gauges to reflect *this* solver's analysis.
            from repro.ordering.quality import export_quality_gauges

            export_quality_gauges(self.symbolic.quality)
        self._matrix = work
        self._chol: CholeskyFactor | None = None
        self._lu: LUFactors | None = None
        self._lower: CSCMatrix | None = None
        self._upper: CSCMatrix | None = None
        self.factorize()

    # -- numeric phase ----------------------------------------------------

    def factorize(self) -> None:
        """(Re)run the numeric factorization for the current values."""
        with span("numeric.factorize"):
            if self.kind == "cholesky":
                self._chol = multifrontal_cholesky(
                    self._matrix, self.symbolic,
                    workers=self.workers, block_size=self.block_size,
                    scheduler=self.scheduler,
                )
            else:
                self._lu = multifrontal_lu(
                    self._matrix, self.symbolic,
                    workers=self.workers, block_size=self.block_size,
                    scheduler=self.scheduler,
                )
            # CSC mirrors are materialized lazily (only the "csc" solve
            # method and factor_nnz need them).
            self._lower = None
            self._upper = None
        logger.info("numeric %s factorization: predicted factor nnz %d",
                    self.kind, self.symbolic.factor_nnz)

    def refactorize(self, matrix: CSCMatrix) -> None:
        """Refactor with new values on the same nonzero pattern.

        Raises ValueError if the pattern differs from the analyzed one.
        """
        if not (
            np.array_equal(matrix.indptr, self._src_indptr)
            and np.array_equal(matrix.indices, self._src_indices)
        ):
            raise ValueError(
                "pattern changed; construct a new SparseSolver instead"
            )
        if self.kind == "lu":
            # Re-apply the *existing* row permutation: the pattern is
            # fixed, so the original matching stays structurally valid and
            # the permutation is a single precomputed gather.
            self._matrix = CSCMatrix(
                matrix.n_rows, matrix.n_cols,
                self._matrix.indptr, self._matrix.indices,
                matrix.data[self._row_data_map],
            )
        else:
            self._matrix = matrix
        self.factorize()

    def _ensure_csc(self) -> None:
        if self._lower is not None:
            return
        if self.kind == "cholesky":
            self._lower = self._chol.to_csc()
        else:
            self._lower, self._upper = self._lu.to_csc()

    # -- solve phase --------------------------------------------------------

    def solve(self, b: np.ndarray, method: str = "supernodal"
              ) -> np.ndarray:
        """Solve A x = b for x.

        Args:
            b: right-hand side — a vector of length n, or an (n, k) array
                of k right-hand sides.  A panel is solved in one blocked
                sweep over the factor (every triangular operation carries
                all k columns), not column by column.
            method: "supernodal" (blocked panel solves over the factor's
                supernode structure, the multifrontal-native path) or
                "csc" (simple column-at-a-time substitution; used as an
                independent oracle in tests).
        """
        if method not in ("supernodal", "csc"):
            raise ValueError("method must be 'supernodal' or 'csc'")
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2):
            raise ValueError("b must be a vector or an (n, k) array")
        if b.shape[0] != self.symbolic.n:
            raise ValueError("dimension mismatch in solve")
        k = 1 if b.ndim == 1 else b.shape[1]
        # Batch-invariant padding: widen to a fixed (n, rhs_pad) panel so
        # every dense kernel runs at batch-size-independent shapes —
        # column j's bits then depend only on b[:, j], never on how many
        # other columns rode along (see the rhs_pad constructor doc).
        padded_from = None
        if self.rhs_pad > 1 and k < self.rhs_pad:
            wide = np.zeros((b.shape[0], self.rhs_pad), dtype=np.float64)
            wide[:, :k] = b if b.ndim == 2 else b[:, None]
            padded_from = b.ndim
            b = wide
        perm = self.symbolic.perm
        with span("numeric.solve"):
            if method == "csc":
                self._ensure_csc()
            if self.kind == "cholesky":
                pb = b[perm]
                if method == "supernodal":
                    px = cholesky_solve(self._chol, pb)
                else:
                    y = solve_lower_csc(self._lower, pb)
                    px = solve_upper_csc(self._lower, y)
            else:
                # A_work = P_row A; system P_row A x = P_row b.
                pb = b[self._row_perm][perm]
                if method == "supernodal":
                    px = lu_solve(self._lu, pb)
                else:
                    y = solve_lower_csc(self._lower, pb,
                                        unit_diagonal=True)
                    px = solve_upper_csc_direct(self._upper, y)
            reg = global_registry()
            reg.counter("numeric.solve.count").inc()
            reg.counter("numeric.solve.rhs").inc(k)
        # Undo the fill-reducing (symmetric) permutation: px solves the
        # permuted system, so x[perm[i]] = px[i] (row-wise for panels).
        x = np.empty_like(px)
        x[perm] = px
        if padded_from is not None:
            x = x[:, 0] if padded_from == 1 else x[:, :k]
        return x

    def solve_refined(self, matrix: CSCMatrix, b: np.ndarray,
                      max_iterations: int = 10,
                      tolerance: float = 1e-14) -> RefinementResult:
        """Solve with iterative refinement (the static-pivoting safety
        net; see :mod:`repro.numeric.refinement`).

        Args:
            matrix: the original matrix A (for residual computation).
            b: right-hand side.
        """
        return iterative_refinement(matrix, self.solve, b,
                                    max_iterations=max_iterations,
                                    tolerance=tolerance)

    def factor_csc(self) -> tuple[CSCMatrix, CSCMatrix | None]:
        """The numeric factor of the permuted matrix as CSC.

        Returns ``(L, None)`` for Cholesky and ``(L, U)`` for LU.  Used by
        the differential-verification subsystem for exact (bit-level)
        factor comparison across configurations.
        """
        self._ensure_csc()
        return self._lower, self._upper

    def residual_norm(self, matrix: CSCMatrix, x: np.ndarray,
                      b: np.ndarray) -> float:
        """Relative residual ||Ax - b|| / ||b|| for verification."""
        r = matrix.matvec(x) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom

    @property
    def factor_nnz(self) -> int:
        """Stored factor nonzeros (L, or L + U for LU)."""
        self._ensure_csc()
        count = self._lower.nnz
        if self._upper is not None:
            count += self._upper.nnz
        return count
