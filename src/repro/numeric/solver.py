"""End-to-end direct solver (the application loop of Figure 2).

``SparseSolver`` packages the full pipeline: fill-reducing ordering and
symbolic factorization once (``analyze``), then repeated numeric
factorizations (``factorize``) and cheap triangular solves (``solve``) as
matrix values evolve with a fixed pattern — the circuit-simulation /
physics-timestepping usage pattern that motivates the paper.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.numeric.cholesky import CholeskyFactor, multifrontal_cholesky
from repro.numeric.lu import LUFactors, multifrontal_lu
from repro.numeric.refinement import RefinementResult, iterative_refinement
from repro.numeric.supernodal_solve import cholesky_solve, lu_solve
from repro.obs import span
from repro.numeric.triangular import (
    solve_lower_csc,
    solve_upper_csc,
    solve_upper_csc_direct,
)
from repro.ordering.pivoting import apply_static_pivoting
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize

logger = logging.getLogger(__name__)


class SparseSolver:
    """Direct solver for sparse linear systems via Cholesky or LU.

    Usage::

        solver = SparseSolver(A, kind="cholesky")   # analyze + factorize
        x = solver.solve(b)
        solver.refactorize(A_new_values)            # same pattern, new values
        x2 = solver.solve(b2)

    Args:
        matrix: square sparse matrix.  For kind="cholesky" it must be SPD;
            for kind="lu" it may be any (structurally nonsingular) square
            matrix — static row pivoting is applied automatically.
        kind: "cholesky" or "lu".
        ordering: fill-reducing ordering method ("amd", "nd", "rcm",
            "natural").
    """

    def __init__(
        self,
        matrix: CSCMatrix,
        kind: str = "cholesky",
        ordering: str = "amd",
        relax_small: int = 8,
        relax_ratio: float = 0.3,
    ) -> None:
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("solver requires a square matrix")
        self.kind = kind
        self._row_perm: np.ndarray | None = None
        work = matrix
        if kind == "lu":
            work, self._row_perm = apply_static_pivoting(matrix)
        elif kind != "cholesky":
            raise ValueError("kind must be 'cholesky' or 'lu'")
        self.symbolic: SymbolicFactorization = symbolic_factorize(
            work, kind=kind, ordering=ordering,
            relax_small=relax_small, relax_ratio=relax_ratio,
        )
        self._matrix = work
        self._chol: CholeskyFactor | None = None
        self._lu: LUFactors | None = None
        self._lower: CSCMatrix | None = None
        self._upper: CSCMatrix | None = None
        self.factorize()

    # -- numeric phase ----------------------------------------------------

    def factorize(self) -> None:
        """(Re)run the numeric factorization for the current values."""
        with span("numeric.factorize"):
            if self.kind == "cholesky":
                self._chol = multifrontal_cholesky(self._matrix,
                                                   self.symbolic)
                self._lower = self._chol.to_csc()
                self._upper = None
            else:
                self._lu = multifrontal_lu(self._matrix, self.symbolic)
                self._lower, self._upper = self._lu.to_csc()
        logger.info("numeric %s factorization: factor nnz %d",
                    self.kind, self.factor_nnz)

    def refactorize(self, matrix: CSCMatrix) -> None:
        """Refactor with new values on the same nonzero pattern.

        Raises ValueError if the pattern differs from the analyzed one.
        """
        if self.kind == "lu":
            # Re-apply the *existing* row permutation: the pattern is fixed,
            # so the original matching stays structurally valid.
            inverse = np.empty_like(self._row_perm)
            inverse[self._row_perm] = np.arange(len(self._row_perm))
            coo = matrix.to_coo()
            from repro.sparse.coo import COOMatrix

            work = CSCMatrix.from_coo(COOMatrix(
                matrix.n_rows, matrix.n_cols,
                inverse[coo.rows], coo.cols, coo.vals,
            ))
        else:
            work = matrix
        if not (
            np.array_equal(work.indptr, self._matrix.indptr)
            and np.array_equal(work.indices, self._matrix.indices)
        ):
            raise ValueError(
                "pattern changed; construct a new SparseSolver instead"
            )
        self._matrix = work
        self.factorize()

    # -- solve phase --------------------------------------------------------

    def solve(self, b: np.ndarray, method: str = "supernodal"
              ) -> np.ndarray:
        """Solve A x = b for x.

        Args:
            b: right-hand side — a vector of length n, or an (n, k) array
                of k right-hand sides (solved column by column, reusing
                the factorization).
            method: "supernodal" (blocked panel solves over the factor's
                supernode structure, the multifrontal-native path) or
                "csc" (simple column-at-a-time substitution; used as an
                independent oracle in tests).
        """
        if method not in ("supernodal", "csc"):
            raise ValueError("method must be 'supernodal' or 'csc'")
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 2:
            return np.column_stack([
                self.solve(b[:, j], method=method)
                for j in range(b.shape[1])
            ])
        if b.ndim != 1:
            raise ValueError("b must be a vector or an (n, k) array")
        perm = self.symbolic.perm
        with span("numeric.solve"):
            if self.kind == "cholesky":
                pb = b[perm]
                if method == "supernodal":
                    px = cholesky_solve(self._chol, pb)
                else:
                    y = solve_lower_csc(self._lower, pb)
                    px = solve_upper_csc(self._lower, y)
            else:
                # A_work = P_row A; system P_row A x = P_row b.
                pb = b[self._row_perm][perm]
                if method == "supernodal":
                    px = lu_solve(self._lu, pb)
                else:
                    y = solve_lower_csc(self._lower, pb,
                                        unit_diagonal=True)
                    px = solve_upper_csc_direct(self._upper, y)
        # Undo the fill-reducing (symmetric) permutation: px solves the
        # permuted system, so x[perm[i]] = px[i].
        x = np.empty(len(px))
        x[perm] = px
        return x

    def solve_refined(self, matrix: CSCMatrix, b: np.ndarray,
                      max_iterations: int = 10,
                      tolerance: float = 1e-14) -> RefinementResult:
        """Solve with iterative refinement (the static-pivoting safety
        net; see :mod:`repro.numeric.refinement`).

        Args:
            matrix: the original matrix A (for residual computation).
            b: right-hand side.
        """
        return iterative_refinement(matrix, self.solve, b,
                                    max_iterations=max_iterations,
                                    tolerance=tolerance)

    def residual_norm(self, matrix: CSCMatrix, x: np.ndarray,
                      b: np.ndarray) -> float:
        """Relative residual ||Ax - b|| / ||b|| for verification."""
        r = matrix.matvec(x) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom

    @property
    def factor_nnz(self) -> int:
        """Stored factor nonzeros (L, or L + U for LU)."""
        count = self._lower.nnz
        if self._upper is not None:
            count += self._upper.nnz
        return count
