"""Process-global, pattern-keyed, *sharded* cache of symbolic analyses.

Fill-reducing ordering plus symbolic factorization is the expensive,
value-independent half of a direct solve.  In the workloads Spatula
targets (circuit simulation, physics timestepping) many solver instances
are built over the *same* nonzero pattern — so the analysis is a pure
function of (pattern, kind, ordering, relaxation parameters) and can be
shared process-wide.

:class:`AnalysisCache` is a thread-safe bounded LRU keyed on a SHA-1
digest of the exact CSC pattern bytes plus the analysis parameters.  A
hit returns the *same* :class:`~repro.symbolic.analyze.SymbolicFactorization`
object, which also carries the cached
:class:`~repro.numeric.engine.NumericContext` scatter maps — so a second
``SparseSolver`` on an already-analyzed pattern skips ordering, symbolic
factorization, *and* assembly-map construction, going straight to the
numeric phase.

Sharding: under a multi-tenant serving load (:mod:`repro.serve`) many
threads hit the cache concurrently, and one global lock would serialize
every warm-path lookup.  Entries are therefore distributed over
``shards`` independent shards, each with its own lock — the hot path (a
hit) takes exactly one shard lock.  The capacity bound stays *global*: a
monotonic access tick orders entries across shards, and inserts evict
the globally least-recently-used entry (a short maintenance-lock
section; hits never touch it).  Under concurrent access a racing hit can
promote the chosen victim between selection and removal, in which case
the next-oldest entry goes instead — the bound itself is always exact.

Hits, misses, and evictions are counted in the global metrics registry
(``numeric.analysis_cache.hits`` / ``.misses`` / ``.evictions``, plus
``.size`` / ``.capacity`` / ``.hit_rate`` gauges and per-shard
``.shard.<i>.size`` / ``.shard.<i>.hit_rate`` gauges) so run artifacts
show whether the amortization actually happened — and, under a
multi-tenant workload, whether the working set of patterns fits the
configured capacity.  The global cache's capacity defaults to
:data:`DEFAULT_CAPACITY` (env ``REPRO_ANALYSIS_CACHE_CAP``) and its
shard count to :data:`DEFAULT_SHARDS` (env
``REPRO_ANALYSIS_CACHE_SHARDS``); both are also constructor arguments.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import global_registry
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize


#: Default bound on the number of cached analyses.  Each entry holds the
#: full symbolic factorization plus (lazily) the numeric scatter maps,
#: so the bound is a memory bound, not an entry-count nicety.
DEFAULT_CAPACITY = 32

#: Default shard count for lock striping.  Eight shards keep warm-path
#: contention negligible for the worker-thread counts the serve layer
#: runs while costing eight tiny OrderedDicts.
DEFAULT_SHARDS = 8

#: Environment override for the process-global cache's capacity.
ENV_CAPACITY = "REPRO_ANALYSIS_CACHE_CAP"

#: Environment override for the process-global cache's shard count.
ENV_SHARDS = "REPRO_ANALYSIS_CACHE_SHARDS"


def pattern_digest(matrix: CSCMatrix) -> str:
    """SHA-1 digest of a CSC matrix's exact nonzero pattern."""
    h = hashlib.sha1()
    h.update(np.int64(matrix.n_rows).tobytes())
    h.update(np.int64(matrix.n_cols).tobytes())
    h.update(np.ascontiguousarray(matrix.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(matrix.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


class _Shard:
    """One lock stripe: an insertion/recency-ordered slice of the cache.

    ``entries`` maps key -> ``[tick, symbolic]`` and is kept in recency
    order (every access does ``move_to_end``), so its first item is the
    shard's LRU entry and carries the shard's oldest tick.
    """

    __slots__ = ("lock", "entries", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[tuple, list] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class AnalysisCache:
    """Thread-safe, sharded, globally-bounded LRU of symbolic analyses.

    Keys are (pattern digest, kind, ordering, relax_small, relax_ratio);
    values are the shared analysis objects.  For LU the caller passes the
    *post-static-pivoting* work matrix: the row matching is value
    dependent, so only the matched pattern identifies the analysis.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 shards: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        n_shards = DEFAULT_SHARDS if shards is None else shards
        if n_shards < 1:
            raise ValueError("shards must be >= 1")
        self.capacity = capacity
        self._shards = [_Shard() for _ in range(n_shards)]
        # Global recency clock: every access stamps its entry, so the
        # globally-LRU entry is the one with the smallest tick.  next()
        # on itertools.count is atomic under the GIL.
        self._tick = itertools.count()
        # Serializes eviction sweeps (inserts only; hits never take it).
        self._maintenance = threading.Lock()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @staticmethod
    def key(matrix: CSCMatrix, kind: str, ordering: str,
            relax_small: int, relax_ratio: float) -> tuple:
        return (pattern_digest(matrix), kind, ordering,
                int(relax_small), float(relax_ratio))

    def shard_index(self, key: tuple) -> int:
        """Stable shard assignment from the pattern digest (key[0])."""
        return int(key[0][:8], 16) % len(self._shards)

    def _shard_for(self, key: tuple) -> _Shard:
        return self._shards[self.shard_index(key)]

    # -- counters (aggregated across shards) ------------------------------

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    # -- core --------------------------------------------------------------

    def get_or_analyze(
        self,
        matrix: CSCMatrix,
        kind: str,
        ordering: str,
        relax_small: int = 8,
        relax_ratio: float = 0.3,
    ) -> SymbolicFactorization:
        """Return the cached analysis for this pattern, or run and cache it."""
        key = self.key(matrix, kind, ordering, relax_small, relax_ratio)
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is not None:
                shard.entries.move_to_end(key)
                entry[0] = next(self._tick)
                shard.hits += 1
                global_registry().counter(
                    "numeric.analysis_cache.hits").inc()
        if entry is not None:
            self._export_state()
            return entry[1]
        # Analyze outside every lock: ordering + symbolic can be slow,
        # and a duplicate analysis under contention is merely wasted
        # work, never wrong (last writer wins; both results are
        # identical).
        symbolic = symbolic_factorize(
            matrix, kind=kind, ordering=ordering,
            relax_small=relax_small, relax_ratio=relax_ratio,
        )
        with shard.lock:
            shard.misses += 1
            global_registry().counter("numeric.analysis_cache.misses").inc()
            shard.entries[key] = [next(self._tick), symbolic]
            shard.entries.move_to_end(key)
        self._evict_to_capacity()
        self._export_state()
        return symbolic

    def set_capacity(self, capacity: int) -> None:
        """Rebound the cache, evicting LRU entries if it shrank."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._evict_to_capacity()
        self._export_state()

    def _evict_to_capacity(self) -> None:
        """Evict globally-LRU entries until the total fits the bound.

        Only inserts and rebounds reach this; the maintenance lock makes
        the sweep single-file without ever blocking shard-local hits.
        """
        with self._maintenance:
            while True:
                total = sum(len(s.entries) for s in self._shards)
                if total <= self.capacity:
                    return
                victim: _Shard | None = None
                oldest = None
                for s in self._shards:
                    with s.lock:
                        if s.entries:
                            tick = next(iter(s.entries.values()))[0]
                            if oldest is None or tick < oldest:
                                oldest, victim = tick, s
                if victim is None:
                    return
                with victim.lock:
                    if victim.entries:
                        victim.entries.popitem(last=False)
                        victim.evictions += 1
                        global_registry().counter(
                            "numeric.analysis_cache.evictions").inc()

    def _export_state(self) -> None:
        # Gauges are last-writer-wins; a point-in-time snapshot across
        # shards is all the trend gate needs.  hit_rate is watched by
        # the trend gate (repro.obs.artifact.WATCHED_METRICS).
        reg = global_registry()
        reg.gauge("numeric.analysis_cache.size").set(len(self))
        reg.gauge("numeric.analysis_cache.capacity").set(self.capacity)
        hits, misses = self.hits, self.misses
        total = hits + misses
        if total:
            reg.gauge("numeric.analysis_cache.hit_rate").set(hits / total)
        for i, s in enumerate(self._shards):
            reg.gauge(f"numeric.analysis_cache.shard.{i}.size").set(
                len(s.entries))
            shard_total = s.hits + s.misses
            if shard_total:
                reg.gauge(
                    f"numeric.analysis_cache.shard.{i}.hit_rate").set(
                        s.hits / shard_total)

    def stats(self) -> dict:
        """Point-in-time counters (for artifacts and serving stats)."""
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def shard_stats(self) -> list[dict]:
        """Per-shard counter breakdown (serving stats / shard metrics)."""
        out = []
        for s in self._shards:
            with s.lock:
                out.append({
                    "size": len(s.entries),
                    "hits": s.hits,
                    "misses": s.misses,
                    "evictions": s.evictions,
                })
        return out

    def clear(self) -> None:
        """Drop all cached analyses (hit/miss/eviction totals are kept)."""
        for s in self._shards:
            with s.lock:
                s.entries.clear()
        self._export_state()

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)


def _capacity_from_env() -> int:
    raw = os.environ.get(ENV_CAPACITY)
    if not raw:
        return DEFAULT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


def _shards_from_env() -> int:
    raw = os.environ.get(ENV_SHARDS)
    if not raw:
        return DEFAULT_SHARDS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_SHARDS


_global_cache = AnalysisCache(capacity=_capacity_from_env(),
                              shards=_shards_from_env())


def analysis_cache() -> AnalysisCache:
    """The process-global analysis cache used by ``SparseSolver``."""
    return _global_cache
