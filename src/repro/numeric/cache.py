"""Process-global, pattern-keyed cache of symbolic analyses.

Fill-reducing ordering plus symbolic factorization is the expensive,
value-independent half of a direct solve.  In the workloads Spatula
targets (circuit simulation, physics timestepping) many solver instances
are built over the *same* nonzero pattern — so the analysis is a pure
function of (pattern, kind, ordering, relaxation parameters) and can be
shared process-wide.

:class:`AnalysisCache` is a small thread-safe LRU keyed on a SHA-1 digest
of the exact CSC pattern bytes plus the analysis parameters.  A hit
returns the *same* :class:`~repro.symbolic.analyze.SymbolicFactorization`
object, which also carries the cached
:class:`~repro.numeric.engine.NumericContext` scatter maps — so a second
``SparseSolver`` on an already-analyzed pattern skips ordering, symbolic
factorization, *and* assembly-map construction, going straight to the
numeric phase.

Hits and misses are counted in the global metrics registry
(``numeric.analysis_cache.hits`` / ``.misses``) so run artifacts show
whether the amortization actually happened.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import global_registry
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize


def pattern_digest(matrix: CSCMatrix) -> str:
    """SHA-1 digest of a CSC matrix's exact nonzero pattern."""
    h = hashlib.sha1()
    h.update(np.int64(matrix.n_rows).tobytes())
    h.update(np.int64(matrix.n_cols).tobytes())
    h.update(np.ascontiguousarray(matrix.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(matrix.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


class AnalysisCache:
    """Thread-safe LRU cache of symbolic factorizations.

    Keys are (pattern digest, kind, ordering, relax_small, relax_ratio);
    values are the shared analysis objects.  For LU the caller passes the
    *post-static-pivoting* work matrix: the row matching is value
    dependent, so only the matched pattern identifies the analysis.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, SymbolicFactorization]
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(matrix: CSCMatrix, kind: str, ordering: str,
            relax_small: int, relax_ratio: float) -> tuple:
        return (pattern_digest(matrix), kind, ordering,
                int(relax_small), float(relax_ratio))

    def get_or_analyze(
        self,
        matrix: CSCMatrix,
        kind: str,
        ordering: str,
        relax_small: int = 8,
        relax_ratio: float = 0.3,
    ) -> SymbolicFactorization:
        """Return the cached analysis for this pattern, or run and cache it."""
        key = self.key(matrix, kind, ordering, relax_small, relax_ratio)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                global_registry().counter(
                    "numeric.analysis_cache.hits").inc()
                self._export_hit_rate()
                return cached
        # Analyze outside the lock: ordering + symbolic can be slow, and a
        # duplicate analysis under contention is merely wasted work, never
        # wrong (last writer wins; both results are identical).
        symbolic = symbolic_factorize(
            matrix, kind=kind, ordering=ordering,
            relax_small=relax_small, relax_ratio=relax_ratio,
        )
        with self._lock:
            self.misses += 1
            global_registry().counter("numeric.analysis_cache.misses").inc()
            self._entries[key] = symbolic
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            global_registry().gauge("numeric.analysis_cache.size").set(
                len(self._entries))
            self._export_hit_rate()
        return symbolic

    def _export_hit_rate(self) -> None:
        # Watched by the trend gate (repro.obs.artifact.WATCHED_METRICS).
        total = self.hits + self.misses
        if total:
            global_registry().gauge("numeric.analysis_cache.hit_rate").set(
                self.hits / total)

    def clear(self) -> None:
        """Drop all cached analyses (hit/miss totals are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_global_cache = AnalysisCache()


def analysis_cache() -> AnalysisCache:
    """The process-global analysis cache used by ``SparseSolver``."""
    return _global_cache
