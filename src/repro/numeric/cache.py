"""Process-global, pattern-keyed cache of symbolic analyses.

Fill-reducing ordering plus symbolic factorization is the expensive,
value-independent half of a direct solve.  In the workloads Spatula
targets (circuit simulation, physics timestepping) many solver instances
are built over the *same* nonzero pattern — so the analysis is a pure
function of (pattern, kind, ordering, relaxation parameters) and can be
shared process-wide.

:class:`AnalysisCache` is a small thread-safe LRU keyed on a SHA-1 digest
of the exact CSC pattern bytes plus the analysis parameters.  A hit
returns the *same* :class:`~repro.symbolic.analyze.SymbolicFactorization`
object, which also carries the cached
:class:`~repro.numeric.engine.NumericContext` scatter maps — so a second
``SparseSolver`` on an already-analyzed pattern skips ordering, symbolic
factorization, *and* assembly-map construction, going straight to the
numeric phase.

Hits, misses, and evictions are counted in the global metrics registry
(``numeric.analysis_cache.hits`` / ``.misses`` / ``.evictions``, plus
``.size`` / ``.capacity`` / ``.hit_rate`` gauges) so run artifacts show
whether the amortization actually happened — and, under a multi-tenant
workload, whether the working set of patterns fits the configured
capacity.  The global cache's capacity defaults to
:data:`DEFAULT_CAPACITY` and can be set with the
``REPRO_ANALYSIS_CACHE_CAP`` environment variable or
:meth:`AnalysisCache.set_capacity` at runtime.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import global_registry
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization, symbolic_factorize


#: Default bound on the number of cached analyses.  Each entry holds the
#: full symbolic factorization plus (lazily) the numeric scatter maps,
#: so the bound is a memory bound, not an entry-count nicety.
DEFAULT_CAPACITY = 32

#: Environment override for the process-global cache's capacity.
ENV_CAPACITY = "REPRO_ANALYSIS_CACHE_CAP"


def pattern_digest(matrix: CSCMatrix) -> str:
    """SHA-1 digest of a CSC matrix's exact nonzero pattern."""
    h = hashlib.sha1()
    h.update(np.int64(matrix.n_rows).tobytes())
    h.update(np.int64(matrix.n_cols).tobytes())
    h.update(np.ascontiguousarray(matrix.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(matrix.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


class AnalysisCache:
    """Thread-safe LRU cache of symbolic factorizations.

    Keys are (pattern digest, kind, ordering, relax_small, relax_ratio);
    values are the shared analysis objects.  For LU the caller passes the
    *post-static-pivoting* work matrix: the row matching is value
    dependent, so only the matched pattern identifies the analysis.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, SymbolicFactorization]
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(matrix: CSCMatrix, kind: str, ordering: str,
            relax_small: int, relax_ratio: float) -> tuple:
        return (pattern_digest(matrix), kind, ordering,
                int(relax_small), float(relax_ratio))

    def get_or_analyze(
        self,
        matrix: CSCMatrix,
        kind: str,
        ordering: str,
        relax_small: int = 8,
        relax_ratio: float = 0.3,
    ) -> SymbolicFactorization:
        """Return the cached analysis for this pattern, or run and cache it."""
        key = self.key(matrix, kind, ordering, relax_small, relax_ratio)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                global_registry().counter(
                    "numeric.analysis_cache.hits").inc()
                self._export_hit_rate()
                return cached
        # Analyze outside the lock: ordering + symbolic can be slow, and a
        # duplicate analysis under contention is merely wasted work, never
        # wrong (last writer wins; both results are identical).
        symbolic = symbolic_factorize(
            matrix, kind=kind, ordering=ordering,
            relax_small=relax_small, relax_ratio=relax_ratio,
        )
        with self._lock:
            self.misses += 1
            global_registry().counter("numeric.analysis_cache.misses").inc()
            self._entries[key] = symbolic
            self._entries.move_to_end(key)
            self._evict_to_capacity()
            self._export_state()
        return symbolic

    def set_capacity(self, capacity: int) -> None:
        """Rebound the cache, evicting LRU entries if it shrank."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._lock:
            self.capacity = capacity
            self._evict_to_capacity()
            self._export_state()

    def _evict_to_capacity(self) -> None:
        # Caller holds the lock.
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            global_registry().counter(
                "numeric.analysis_cache.evictions").inc()

    def _export_state(self) -> None:
        # Caller holds the lock (or the state is self-consistent enough:
        # gauges are last-writer-wins).  hit_rate is watched by the trend
        # gate (repro.obs.artifact.WATCHED_METRICS).
        reg = global_registry()
        reg.gauge("numeric.analysis_cache.size").set(len(self._entries))
        reg.gauge("numeric.analysis_cache.capacity").set(self.capacity)
        total = self.hits + self.misses
        if total:
            reg.gauge("numeric.analysis_cache.hit_rate").set(
                self.hits / total)

    # Backwards-compatible alias used by the hit path.
    def _export_hit_rate(self) -> None:
        self._export_state()

    def stats(self) -> dict:
        """Point-in-time counters (for artifacts and serving stats)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop all cached analyses (hit/miss/eviction totals are kept)."""
        with self._lock:
            self._entries.clear()
            self._export_state()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _capacity_from_env() -> int:
    raw = os.environ.get(ENV_CAPACITY)
    if not raw:
        return DEFAULT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


_global_cache = AnalysisCache(capacity=_capacity_from_env())


def analysis_cache() -> AnalysisCache:
    """The process-global analysis cache used by ``SparseSolver``."""
    return _global_cache
