"""Interchangeable numeric-phase schedulers.

Three backends behind one interface (see :mod:`.base` for the model):

========  ================================================================
level     etree level sets with a barrier per level (baseline)
dag       barrier-free task graph: supernodes fire when children finish
procs     independent subtrees on forked worker processes over shared
          memory; tree top finished by the DAG scheduler in the parent
========  ================================================================

All three produce bitwise-identical factors for every worker count.
Pick with ``run_scheduled(job, scheduler, workers)`` or through the
``scheduler`` knob on :class:`repro.numeric.tuning.NumericTuning`,
:class:`repro.numeric.SparseSolver`, and ``repro solve --scheduler``.
"""

from __future__ import annotations

from .base import (
    SCHEDULER_NAMES,
    ScheduleStats,
    SupernodeJob,
    TaskTimer,
    WorkerLanes,
)
from .dag import run_dag
from .level import run_level, run_level_scheduled
from .partition import partition_subtrees, subtree_work
from .procs import run_procs

__all__ = [
    "SCHEDULER_NAMES",
    "ScheduleStats",
    "SupernodeJob",
    "TaskTimer",
    "WorkerLanes",
    "partition_subtrees",
    "run_dag",
    "run_level",
    "run_level_scheduled",
    "run_procs",
    "run_scheduled",
    "subtree_work",
]


def run_scheduled(
    job: SupernodeJob,
    scheduler: str,
    workers: int,
    parallel_threshold: int = 2,
) -> ScheduleStats:
    """Run ``job`` under the named scheduler and return its stats."""
    if scheduler == "level":
        return run_level(job, workers, parallel_threshold)
    if scheduler == "dag":
        return run_dag(job, workers)
    if scheduler == "procs":
        return run_procs(job, workers, parallel_threshold)
    raise ValueError(
        f"unknown scheduler {scheduler!r}; expected one of {SCHEDULER_NAMES}"
    )
