"""Shared machinery of the numeric-phase schedulers.

A *scheduler* executes the per-supernode tasks of one numeric
factorization in some dependence-respecting order.  The work itself is
described by a :class:`SupernodeJob` — assembly of a frontal matrix from
A's entries plus the children's update matrices, a blocked partial
factorization, and storage of the resulting factor block(s) — while the
scheduler decides *where and when* each supernode runs:

* :mod:`repro.numeric.schedule.level` — level sets with a barrier
  between levels (the baseline);
* :mod:`repro.numeric.schedule.dag` — barrier-free task-graph
  dispatch: a supernode fires the moment its last etree child finishes;
* :mod:`repro.numeric.schedule.procs` — subtree-parallel worker
  *processes* over shared-memory factor buffers, with the top of the
  tree finished by the DAG scheduler in the parent.

Every scheduler must preserve the bit-identity invariant: the stored
factor is bitwise equal for every scheduler and worker count, because
each supernode's computation is a pure function of its assembled front
(children extend-added in fixed ascending order) and the blocked
kernels are deterministic.

Schedulers return a :class:`ScheduleStats` — the evidence record the
attribution layer turns into scheduler-idle / load-imbalance buckets
(ready-queue depth, dispatch latency, per-worker busy/idle seconds).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Scheduler names accepted across the stack (tuning, CLI, benchmarks).
SCHEDULER_NAMES = ("level", "dag", "procs")

#: Longest ready-depth / latency series kept verbatim in attribution
#: output; longer series are decimated (aggregates are exact regardless).
MAX_SERIES = 256


class TaskTimer:
    """Per-supernode wall-clock accumulator (disjoint slots, no locking)."""

    def __init__(self, n: int) -> None:
        self.busy = np.zeros(n)

    def time(self, i: int):
        return _TimeSlot(self.busy, i)

    def total(self) -> float:
        return float(self.busy.sum())


class _TimeSlot:
    __slots__ = ("_busy", "_i", "_t0")

    def __init__(self, busy: np.ndarray, i: int) -> None:
        self._busy = busy
        self._i = i

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._busy[self._i] += time.perf_counter() - self._t0
        return False


class WorkerLanes:
    """Per-worker-thread busy/task accounting.

    Each executing thread accumulates into its own lane (keyed by thread
    identity); ``dict.setdefault`` and per-lane list mutation are
    GIL-atomic enough for the accounting here (each lane is only ever
    written by its own thread).
    """

    def __init__(self) -> None:
        self._lanes: dict[int, list[float]] = {}

    def record(self, seconds: float) -> None:
        lane = self._lanes.setdefault(threading.get_ident(), [0.0, 0.0])
        lane[0] += seconds
        lane[1] += 1.0

    def busy(self) -> list[float]:
        return [lane[0] for lane in self._lanes.values()]

    def tasks(self) -> list[int]:
        return [int(lane[1]) for lane in self._lanes.values()]


def _decimate(series: list, limit: int = MAX_SERIES) -> list:
    if len(series) <= limit:
        return list(series)
    idx = np.linspace(0, len(series) - 1, limit).astype(int)
    return [series[i] for i in idx]


@dataclass
class ScheduleStats:
    """What one scheduler run looked like, for attribution and metrics.

    Attributes:
        scheduler: which backend ran ("level" | "dag" | "procs").
        workers: requested worker count.
        wall_s: scheduler wall-clock (dispatch through last completion).
        dispatched: tasks executed off the inline main-thread path
            (thread-pool tasks, or subtree tasks in worker processes).
        inline_tasks: tasks run inline on the main thread.
        worker_busy_s: per-worker-lane busy seconds (threads for
            level/dag, processes for procs; the main inline lane is not
            included).
        worker_tasks: per-worker-lane task counts.
        ready_depth: ready-queue depth sampled at each dispatch (level
            width at each barrier for the level scheduler).
        dispatch_latency_s: per-task ready-to-running latency samples.
        n_subtrees: independent subtrees farmed to processes (procs
            only).
        top_tasks: supernodes finished by the parent's DAG phase (procs
            only).
    """

    scheduler: str
    workers: int
    wall_s: float = 0.0
    dispatched: int = 0
    inline_tasks: int = 0
    worker_busy_s: list[float] = field(default_factory=list)
    worker_tasks: list[int] = field(default_factory=list)
    ready_depth: list[int] = field(default_factory=list)
    dispatch_latency_s: list[float] = field(default_factory=list)
    n_subtrees: int = 0
    top_tasks: int = 0

    def worker_idle_s(self) -> list[float]:
        """Per-worker idle seconds (wall minus busy, floored at 0)."""
        return [max(0.0, self.wall_s - b) for b in self.worker_busy_s]

    def idle_seconds(self) -> float:
        """Total scheduler-idle seconds across worker lanes."""
        return float(sum(self.worker_idle_s()))

    def task_imbalance(self) -> float:
        """Max-over-mean deviation of per-worker task counts (0 = even)."""
        if not self.worker_tasks:
            return 0.0
        mean = sum(self.worker_tasks) / len(self.worker_tasks)
        if mean <= 0.0:
            return 0.0
        return max(self.worker_tasks) / mean - 1.0

    def summary(self) -> dict:
        """The attribution-ready dict view of this run."""
        depth = np.asarray(self.ready_depth, dtype=float)
        lat = np.asarray(self.dispatch_latency_s, dtype=float)
        return {
            "scheduler": self.scheduler,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "dispatched": self.dispatched,
            "inline_tasks": self.inline_tasks,
            "n_subtrees": self.n_subtrees,
            "top_tasks": self.top_tasks,
            "worker_busy_s": list(self.worker_busy_s),
            "worker_idle_s": self.worker_idle_s(),
            "worker_tasks": list(self.worker_tasks),
            "idle_s": self.idle_seconds(),
            "task_imbalance": self.task_imbalance(),
            "ready_depth": {
                "mean": float(depth.mean()) if depth.size else 0.0,
                "max": int(depth.max()) if depth.size else 0,
                "series": _decimate(self.ready_depth),
            },
            "dispatch_latency_ms": {
                "mean": float(lat.mean() * 1e3) if lat.size else 0.0,
                "max": float(lat.max() * 1e3) if lat.size else 0.0,
            },
        }


class SupernodeJob:
    """One numeric factorization as schedulable per-supernode tasks.

    Owns the state previously closured inside ``multifrontal_cholesky``
    / ``multifrontal_lu``: the pattern-cached numeric context, the
    permuted input values, the in-flight update matrices, and the
    per-supernode outputs.  :meth:`compute` is the task body every
    scheduler runs; it is safe to call concurrently for *independent*
    supernodes (each task writes only its own slots and consumes only
    its children's — all of which completed first).

    Subclasses implement the kind-specific ``_factor`` step plus the
    output transport hooks the process backend uses to ship factor
    blocks through shared memory (:meth:`output_shapes` /
    :meth:`output_arrays` / :meth:`load_outputs`, and the per-supernode
    scalar channel for LU's perturbed-pivot counts).
    """

    def __init__(self, ctx, permuted_data: np.ndarray, block: int) -> None:
        symbolic = ctx.symbolic
        tree = symbolic.tree
        self.ctx = ctx
        self.symbolic = symbolic
        self.supernodes = tree.supernodes
        self.child_maps = tree.child_maps
        self.n_supernodes = tree.n_supernodes
        self.sn_parent = ctx.sn_parent
        self.levels = ctx.levels
        self.permuted_data = permuted_data
        self.block = block
        self.updates: list[np.ndarray | None] = [None] * self.n_supernodes
        self.timer = TaskTimer(self.n_supernodes)

    def compute(self, i: int) -> None:
        """Assemble, extend-add, factor, and store supernode ``i``."""
        with self.timer.time(i):
            sn = self.supernodes[i]
            size = sn.front_size
            values = np.zeros((size, size))
            values.flat[self.ctx.flat_pos[i]] = \
                self.permuted_data[self.ctx.data_idx[i]]
            # Extend-add children in fixed (ascending) order so the
            # result does not depend on which worker computed each child.
            for child in sn.children:
                pos = self.child_maps[child]
                if pos is None:
                    continue
                child_update = self.updates[child]
                self.updates[child] = None
                values[pos[:, None], pos] += child_update
            self._factor(i, sn, values)
            if sn.parent >= 0 and sn.n_update_rows > 0:
                self.updates[i] = values[sn.n_cols:, sn.n_cols:].copy()

    def check_consumed(self) -> None:
        """Every update matrix must have been extend-added exactly once."""
        if any(u is not None for u in self.updates):
            raise AssertionError("unconsumed update matrices remain")

    # -- kind-specific --------------------------------------------------------

    def _factor(self, i: int, sn, values: np.ndarray) -> None:
        raise NotImplementedError

    # -- shared-memory transport hooks (process backend) ----------------------

    def output_shapes(self, i: int) -> list[tuple[int, ...]]:
        """Shapes of supernode ``i``'s stored factor arrays — a pure
        function of the symbolic analysis (known before computing)."""
        raise NotImplementedError

    def output_arrays(self, i: int) -> list[np.ndarray]:
        """The stored factor arrays of a *computed* supernode."""
        raise NotImplementedError

    def load_outputs(self, i: int, arrays: list[np.ndarray]) -> None:
        """Adopt factor arrays computed in another process."""
        raise NotImplementedError

    def scalar_output(self, i: int) -> float:
        """Optional per-supernode scalar channel (LU perturbed pivots)."""
        return 0.0

    def load_scalar(self, i: int, value: float) -> None:
        pass
