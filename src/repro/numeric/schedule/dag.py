"""Barrier-free DAG scheduling of the numeric phase.

Instead of synchronizing at every elimination-tree level, each
supernode carries a dependence count (its number of etree children);
completion of a child decrements the parent's count, and the parent is
submitted to the thread pool the moment the count hits zero.  This is
the CKTSO-style pipelined task-graph numeric phase: a slow supernode
only delays its own ancestors, never unrelated subtrees, so
wide-but-uneven level profiles no longer serialize on their slowest
member.

Bit-identity is preserved because the *result* of each supernode task
is order-independent (children extend-added in fixed ascending order
inside ``SupernodeJob.compute``); only the execution interleaving
changes.

``run_dag`` also accepts a node subset so the process backend can use
it to finish the top of the tree after the subtree phase.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.obs import telemetry

from .base import ScheduleStats, SupernodeJob, WorkerLanes


def run_dag(
    job: SupernodeJob,
    workers: int,
    nodes: Sequence[int] | np.ndarray | None = None,
) -> ScheduleStats:
    """Run ``job`` over ``nodes`` (default: all supernodes) dataflow-style.

    ``nodes`` must be closed under the "all children inside or already
    computed" rule: a node's children are either in ``nodes`` too or
    have had their update matrices loaded into ``job.updates`` already
    (the process backend's boundary case).  Dependence counts only
    track children *inside* the subset.
    """
    if nodes is None:
        node_list = list(range(job.n_supernodes))
    else:
        node_list = [int(i) for i in nodes]
    stats = ScheduleStats("dag", workers)
    t_start = time.perf_counter()

    if workers <= 1 or len(node_list) <= 1:
        # Ascending index order is a valid bottom-up traversal
        # (children are always numbered before their parents).
        for i in sorted(node_list):
            job.compute(i)
        stats.inline_tasks = len(node_list)
        stats.wall_s = time.perf_counter() - t_start
        return stats

    in_set = np.zeros(job.n_supernodes, dtype=bool)
    in_set[node_list] = True
    deps = {
        i: sum(1 for c in job.supernodes[i].children if in_set[c])
        for i in node_list
    }

    total = len(node_list)
    cond = threading.Condition()
    state = {"submitted": 0, "finished": 0, "error": None, "ready": 0}
    ready_at: dict[int, float] = {}
    lanes = WorkerLanes()
    traced = telemetry.active()

    def submit(pool: ThreadPoolExecutor, i: int, now: float) -> None:
        # Caller holds ``cond``.
        ready_at[i] = now
        state["submitted"] += 1
        state["ready"] += 1
        stats.ready_depth.append(state["ready"])
        pool.submit(run_task, pool, i)

    def run_task(pool: ThreadPoolExecutor, i: int) -> None:
        t0 = time.perf_counter()
        with cond:
            state["ready"] -= 1
            if state["error"] is not None:
                # Drain without computing once a task has failed.
                state["finished"] += 1
                cond.notify()
                return
        stats.dispatch_latency_s.append(t0 - ready_at[i])
        try:
            if traced:
                with telemetry.task_span("numeric.supernode", sn=i):
                    job.compute(i)
            else:
                job.compute(i)
        except BaseException as exc:  # noqa: BLE001 - repropagated below
            with cond:
                if state["error"] is None:
                    state["error"] = exc
                state["finished"] += 1
                cond.notify()
            return
        t1 = time.perf_counter()
        lanes.record(t1 - t0)
        with cond:
            parent = int(job.sn_parent[i])
            if parent >= 0 and in_set[parent] and state["error"] is None:
                deps[parent] -= 1
                if deps[parent] == 0:
                    submit(pool, parent, t1)
            state["finished"] += 1
            cond.notify()

    with ThreadPoolExecutor(max_workers=workers) as pool:
        with cond:
            now = time.perf_counter()
            for i in node_list:
                if deps[i] == 0:
                    submit(pool, i, now)
            # Done when nothing is in flight and either everything ran
            # or an error stopped further submissions.
            while not (
                state["finished"] == state["submitted"]
                and (state["error"] is not None or state["finished"] == total)
            ):
                cond.wait()
    if state["error"] is not None:
        raise state["error"]

    stats.dispatched = total
    stats.worker_busy_s = lanes.busy()
    stats.worker_tasks = lanes.tasks()
    stats.wall_s = time.perf_counter() - t_start
    return stats
