"""Subtree-parallel numeric phase over worker *processes*.

Threads give real overlap only while NumPy's BLAS holds the GIL
released; the bushy bottom of the tree — thousands of small fronts —
is orchestration-bound Python where threads serialize.  This backend
sidesteps the GIL entirely: the elimination tree is carved into
independent subtrees (:mod:`repro.numeric.schedule.partition`), each
subtree is farmed to a forked worker process, and the factor blocks
plus each subtree root's boundary update matrix travel back through
one shared-memory segment.  The parent then finishes the (small) top
of the tree with the DAG scheduler in-process.

Transport is exact float64 copies and every supernode is still
computed by the unchanged ``SupernodeJob.compute`` body, so the
bit-identity invariant survives the process boundary.

Fork specifics: the job (symbolic analysis, assembly maps, input
values) is published via module globals *before* the pool forks, so
children inherit it copy-on-write — nothing is pickled.  Children
write through the inherited shared-memory mapping rather than
re-attaching by name, which keeps the resource tracker quiet.  When
fork is unavailable (non-POSIX start methods), the partition is
degenerate (< 2 subtrees), or we are already inside a daemonic pool
worker (daemons cannot fork children), the call falls back to the DAG
scheduler transparently.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.obs import telemetry

from .base import ScheduleStats, SupernodeJob
from .dag import run_dag
from .partition import partition_subtrees

_ITEMSIZE = 8  # float64 transport throughout


@dataclass
class _ShmLayout:
    """Byte offsets of every array a worker writes into shared memory."""

    size: int = 0
    # supernode -> [(offset, shape), ...] for its stored factor arrays
    outputs: dict[int, list[tuple[int, tuple[int, ...]]]] = \
        field(default_factory=dict)
    # subtree root -> (offset, shape) of its boundary update matrix
    updates: dict[int, tuple[int, tuple[int, int]]] = \
        field(default_factory=dict)
    # supernode -> offset of its scalar channel slot
    scalars: dict[int, int] = field(default_factory=dict)
    # supernode -> offset of its task-timer busy-seconds slot
    busy: dict[int, int] = field(default_factory=dict)

    def reserve(self, shape: tuple[int, ...]) -> int:
        offset = self.size
        self.size += int(np.prod(shape)) * _ITEMSIZE
        return offset


def _build_layout(
    job: SupernodeJob, subtrees: list[np.ndarray]
) -> _ShmLayout:
    layout = _ShmLayout()
    for nodes in subtrees:
        for i in nodes:
            i = int(i)
            layout.outputs[i] = [
                (layout.reserve(shape), shape)
                for shape in job.output_shapes(i)
            ]
            layout.scalars[i] = layout.reserve((1,))
            layout.busy[i] = layout.reserve((1,))
        root = int(nodes[-1])
        sn = job.supernodes[root]
        if sn.parent >= 0 and sn.n_update_rows > 0:
            u = sn.n_update_rows
            layout.updates[root] = (layout.reserve((u, u)), (u, u))
    return layout


# Published before the pool forks; inherited copy-on-write by workers.
_FORK_JOB: SupernodeJob | None = None
_FORK_LAYOUT: _ShmLayout | None = None
_FORK_SHM: shared_memory.SharedMemory | None = None
_FORK_SUBTREES: list[np.ndarray] | None = None


def _worker_init() -> None:
    telemetry.init_worker()


def _shm_view(offset: int, shape: tuple[int, ...]) -> np.ndarray:
    return np.ndarray(shape, dtype=np.float64,
                      buffer=_FORK_SHM.buf, offset=offset)


def _run_subtree(part: int) -> dict:
    """Pool task: factor one subtree, write results into shared memory."""
    job, layout = _FORK_JOB, _FORK_LAYOUT
    nodes = _FORK_SUBTREES[part]
    t0 = time.perf_counter()
    traced = telemetry.active()
    for i in nodes:
        i = int(i)
        if traced:
            with telemetry.task_span("numeric.supernode", sn=i, subtree=part):
                job.compute(i)
        else:
            job.compute(i)
    busy = time.perf_counter() - t0
    for i in nodes:
        i = int(i)
        for (offset, shape), arr in zip(
            layout.outputs[i], job.output_arrays(i)
        ):
            view = _shm_view(offset, shape)
            view[...] = arr
            del view
        scalar = _shm_view(layout.scalars[i], (1,))
        scalar[0] = job.scalar_output(i)
        del scalar
        slot = _shm_view(layout.busy[i], (1,))
        slot[0] = job.timer.busy[i]
        del slot
    root = int(nodes[-1])
    if root in layout.updates:
        offset, shape = layout.updates[root]
        view = _shm_view(offset, shape)
        view[...] = job.updates[root]
        del view
    return {"pid": os.getpid(), "busy_s": busy, "tasks": len(nodes)}


def run_procs(
    job: SupernodeJob, workers: int, parallel_threshold: int = 2
) -> ScheduleStats:
    """Subtree-parallel process run; falls back to DAG when not viable."""
    n = job.n_supernodes
    t_start = time.perf_counter()
    if workers <= 1 or n <= 1:
        stats = ScheduleStats("procs", workers)
        for i in range(n):
            job.compute(i)
        stats.inline_tasks = n
        stats.wall_s = time.perf_counter() - t_start
        return stats

    viable = (
        "fork" in multiprocessing.get_all_start_methods()
        and not multiprocessing.current_process().daemon
    )
    if viable:
        flops = np.array(job.symbolic.supernode_flops(), dtype=float)
        subtrees, top = partition_subtrees(job.sn_parent, flops, workers)
        viable = len(subtrees) >= 2
    if not viable:
        stats = run_dag(job, workers)
        stats.scheduler = "procs"
        return stats

    layout = _build_layout(job, subtrees)
    shm = shared_memory.SharedMemory(create=True,
                                     size=max(layout.size, _ITEMSIZE))
    global _FORK_JOB, _FORK_LAYOUT, _FORK_SHM, _FORK_SUBTREES
    _FORK_JOB, _FORK_LAYOUT = job, layout
    _FORK_SHM, _FORK_SUBTREES = shm, subtrees
    try:
        ctx = multiprocessing.get_context("fork")
        # Heaviest subtrees first (longest-processing-time order) so the
        # pool balances uneven partitions.
        order = sorted(
            range(len(subtrees)),
            key=lambda k: -float(flops[subtrees[k]].sum()),
        )
        with ctx.Pool(min(workers, len(subtrees)),
                      initializer=_worker_init) as pool:
            results = pool.map(_run_subtree, order, chunksize=1)
        # Adopt worker-computed state from shared memory.
        for nodes in subtrees:
            for i in nodes:
                i = int(i)
                arrays = [
                    _shm_view(offset, shape).copy()
                    for offset, shape in layout.outputs[i]
                ]
                job.load_outputs(i, arrays)
                job.load_scalar(i, float(_shm_view(layout.scalars[i], (1,))[0]))
                job.timer.busy[i] = float(_shm_view(layout.busy[i], (1,))[0])
            root = int(nodes[-1])
            if root in layout.updates:
                offset, shape = layout.updates[root]
                job.updates[root] = _shm_view(offset, shape).copy()
    finally:
        _FORK_JOB = _FORK_LAYOUT = _FORK_SHM = _FORK_SUBTREES = None
        shm.close()
        shm.unlink()

    top_stats = run_dag(job, workers, nodes=top) if len(top) else None

    stats = ScheduleStats("procs", workers)
    stats.n_subtrees = len(subtrees)
    stats.top_tasks = int(len(top))
    stats.dispatched = int(sum(len(nodes) for nodes in subtrees))
    # Several subtrees may have run on the same pool process; report
    # busy/task lanes per worker process, not per subtree.
    by_pid: dict[int, list[float]] = {}
    for r in results:
        lane = by_pid.setdefault(r["pid"], [0.0, 0])
        lane[0] += r["busy_s"]
        lane[1] += r["tasks"]
    stats.worker_busy_s = [lane[0] for lane in by_pid.values()]
    stats.worker_tasks = [int(lane[1]) for lane in by_pid.values()]
    stats.ready_depth = [len(subtrees)]
    if top_stats is not None:
        stats.dispatched += top_stats.dispatched
        stats.inline_tasks = top_stats.inline_tasks
        stats.ready_depth.extend(top_stats.ready_depth)
        stats.dispatch_latency_s.extend(top_stats.dispatch_latency_s)
    stats.wall_s = time.perf_counter() - t_start
    return stats
