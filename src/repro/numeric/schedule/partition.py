"""Proportional-mapping subtree partition of the assembly tree.

The process backend needs coarse-grained, completely independent units
of work: disjoint subtrees whose factorization touches no shared state
except the update matrix each subtree root hands its parent.  Following
the proportional-mapping idea (Pothen/Sun; used by every subtree-level
parallel multifrontal code), we start from the forest roots and
repeatedly split the heaviest candidate subtree into its children —
promoting the split node to the sequential "top" set — until the
candidates are numerous and light enough to balance across workers.

Work per supernode comes from the symbolic flop model
(:func:`repro.tasks.flops.supernode_factor_flops` via
``SymbolicFactorization.supernode_flops``), so the cut adapts to skewed
supernode sizes, not just node counts.

Supernodes are numbered children-before-parents (assembly order), which
the propagation loops below rely on.
"""

from __future__ import annotations

import heapq

import numpy as np


def subtree_work(sn_parent: np.ndarray, work: np.ndarray) -> np.ndarray:
    """Total work in the subtree rooted at each node.

    ``work[i]`` is node i's own cost; children accumulate into parents
    in one ascending pass (valid because children precede parents).
    """
    total = np.asarray(work, dtype=float).copy()
    for i in range(len(total)):
        p = int(sn_parent[i])
        if p >= 0:
            total[p] += total[i]
    return total


def partition_subtrees(
    sn_parent: np.ndarray,
    work: np.ndarray,
    n_parts: int,
    max_parts: int | None = None,
    oversubscribe: float = 2.0,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Carve the forest into independent subtrees plus a top set.

    Returns ``(subtrees, top)`` where each element of ``subtrees`` is an
    ascending array of supernode indices forming one complete subtree
    (root included, every descendant included), and ``top`` is the
    upward-closed remainder: every node whose subtree was split, i.e.
    every proper ancestor of every subtree root.  Together they cover
    all nodes exactly once.

    Splitting stops once every candidate subtree is lighter than
    ``total_work / (n_parts * oversubscribe)`` (oversubscription gives
    the worker pool slack to balance uneven subtrees) or when
    ``max_parts`` candidates exist (default ``4 * n_parts``; bounds the
    sequential top set on chain-shaped trees, which have no subtree
    parallelism to extract anyway).
    """
    n = len(sn_parent)
    if n == 0:
        return [], np.empty(0, dtype=np.int64)
    if max_parts is None:
        max_parts = max(2, 4 * n_parts)

    work = np.asarray(work, dtype=float)
    # Guard against all-zero flop estimates (e.g. 1x1 supernodes).
    if not np.any(work > 0.0):
        work = np.ones(n)
    total = subtree_work(sn_parent, work)

    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for i in range(n):
        p = int(sn_parent[i])
        if p >= 0:
            children[p].append(i)
        else:
            roots.append(i)

    grand_total = float(total[roots].sum())
    threshold = grand_total / max(1.0, n_parts * oversubscribe)

    # Max-heap of candidate subtree roots by subtree work; ``done``
    # collects candidates that can no longer or need no longer split.
    heap = [(-total[r], r) for r in roots]
    heapq.heapify(heap)
    done: list[int] = []
    top: list[int] = []
    while heap and len(heap) + len(done) < max_parts:
        neg_w, v = heapq.heappop(heap)
        if -neg_w <= threshold or not children[v]:
            done.append(v)
            continue
        top.append(v)
        for c in children[v]:
            heapq.heappush(heap, (-total[c], c))
    done.extend(v for _, v in heap)

    # Propagate subtree labels root-downward.  Parents have higher
    # indices than children, so a descending sweep sees each node's
    # parent first; top nodes keep label -1 (their children are always
    # either designated roots or top nodes themselves).
    label = np.full(n, -2, dtype=np.int64)
    for k, r in enumerate(done):
        label[r] = k
    for v in top:
        label[v] = -1
    for i in range(n - 1, -1, -1):
        if label[i] != -2:
            continue
        label[i] = label[int(sn_parent[i])]

    subtrees = [np.flatnonzero(label == k) for k in range(len(done))]
    top_nodes = np.flatnonzero(label == -1)
    return subtrees, top_nodes
