"""Level-scheduled execution: etree level sets with a barrier per level.

The baseline scheduler from PR 2.  Supernodes grouped by height in the
assembly tree run concurrently within a level; a barrier separates
levels, so dependencies are trivially satisfied but one slow supernode
stalls its whole level.  Kept both as the reference for bit-identity
comparisons and because its fixed level-by-level sweep is the cheapest
dispatch loop for small or chain-shaped trees.

``run_level_scheduled`` keeps the original generic callable interface
(re-exported from :mod:`repro.numeric.engine` for back-compat) but now
drains each level with ``as_completed`` so the first worker failure
propagates promptly instead of after the whole level finishes.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np

from repro.obs import telemetry

from .base import ScheduleStats, SupernodeJob, WorkerLanes


def run_level_scheduled(
    levels: Sequence[np.ndarray],
    n_supernodes: int,
    task: Callable[[int], None],
    workers: int,
    parallel_threshold: int = 2,
    trace: bool = True,
) -> int:
    """Run ``task`` over every supernode, level by level.

    Returns the number of tasks dispatched to pool workers.  Levels
    narrower than ``parallel_threshold`` run inline on the calling
    thread (pool dispatch costs more than it buys there).  A failing
    task raises as soon as its future completes — remaining futures in
    the level are cancelled rather than drained.
    """
    if workers <= 1:
        for i in range(n_supernodes):
            task(i)
        return 0

    traced = trace and telemetry.active()

    def traced_task(i: int) -> None:
        with telemetry.task_span("numeric.supernode", sn=i):
            task(i)

    pool_task = traced_task if traced else task
    dispatched = 0
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for depth, level in enumerate(levels):
            with telemetry.task_span(
                "numeric.level", level=depth, width=len(level)
            ):
                if len(level) < parallel_threshold:
                    for i in level:
                        task(int(i))
                    continue
                futures = [pool.submit(pool_task, int(i)) for i in level]
                dispatched += len(futures)
                try:
                    for future in as_completed(futures):
                        future.result()
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
    return dispatched


def run_level(
    job: SupernodeJob, workers: int, parallel_threshold: int = 2
) -> ScheduleStats:
    """Level-scheduled run of a :class:`SupernodeJob`, with stats."""
    stats = ScheduleStats("level", workers)
    t_start = time.perf_counter()
    if workers <= 1:
        for i in range(job.n_supernodes):
            job.compute(i)
        stats.inline_tasks = job.n_supernodes
        stats.wall_s = time.perf_counter() - t_start
        return stats

    lanes = WorkerLanes()
    traced = telemetry.active()
    # The barrier start time of the level currently dispatching; pool
    # tasks read it to measure ready-to-running latency.  Safe because
    # the barrier guarantees no task of level L runs after L+1 starts.
    level_t0 = [t_start]

    def pool_task(i: int) -> None:
        t0 = time.perf_counter()
        stats.dispatch_latency_s.append(t0 - level_t0[0])
        if traced:
            with telemetry.task_span("numeric.supernode", sn=i):
                job.compute(i)
        else:
            job.compute(i)
        lanes.record(time.perf_counter() - t0)

    def inline_task(i: int) -> None:
        job.compute(i)
        stats.inline_tasks += 1

    dispatched = 0
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for depth, level in enumerate(job.levels):
            with telemetry.task_span(
                "numeric.level", level=depth, width=len(level)
            ):
                if len(level) < parallel_threshold:
                    for i in level:
                        inline_task(int(i))
                    continue
                level_t0[0] = time.perf_counter()
                stats.ready_depth.append(len(level))
                futures = [pool.submit(pool_task, int(i)) for i in level]
                dispatched += len(futures)
                try:
                    for future in as_completed(futures):
                        future.result()
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
    stats.dispatched = dispatched
    stats.worker_busy_s = lanes.busy()
    stats.worker_tasks = lanes.tasks()
    stats.wall_s = time.perf_counter() - t_start
    return stats
