"""Multifrontal sparse LU with static pivoting (Section 2.4).

Same structure as multifrontal Cholesky, with full-square fronts: the first
N_k columns of a front hold L's columns, the first N_k *rows* hold U's rows,
and the trailing square is the update matrix.  Static pivoting (row
matching) happens before the symbolic analysis; tiny pivots encountered
during factorization are bumped by ``sqrt(eps) * ||A||_max`` as in
static-pivoted solvers.

Like the Cholesky side, assembly runs through the pattern-cached scatter
maps of :mod:`repro.numeric.engine`, the partial factorization is the
blocked BLAS-3 kernel, and ``workers > 1`` runs independent supernodes of
each elimination-tree level on a thread pool with bit-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.numeric.cholesky import _supernode_triangle
from repro.numeric.dense import partial_lu
from repro.numeric.engine import (
    TaskTimer,
    export_factor_metrics,
    numeric_context,
    run_level_scheduled,
)
from repro.numeric.tuning import (
    get_tuning,
    resolve_block_size,
    resolve_workers,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization


@dataclass
class LUFactors:
    """Numeric output of multifrontal LU.

    Attributes:
        symbolic: the analysis this factor was computed under.
        fronts: per-supernode (rows, l_block, u_block): l_block is the
            front's first n_cols columns (L, unit diagonal implicit in U
            convention below); u_block is the first n_cols rows (U,
            including the diagonal).
        perturbed_pivots: number of pivots bumped by the static-pivoting
            perturbation (0 for well-conditioned diagonally dominant
            inputs).
    """

    symbolic: SymbolicFactorization
    fronts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    perturbed_pivots: int = 0

    def to_csc(self) -> tuple[CSCMatrix, CSCMatrix]:
        """Materialize (L, U) of the permuted matrix as CSC.

        L has unit diagonal (stored); U holds the pivots on its diagonal.
        Whole supernode blocks are assembled at once with vectorized
        ``np.repeat`` / ``np.concatenate`` index arithmetic.
        """
        n = self.symbolic.n
        l_rows, l_cols, l_vals = [], [], []
        u_rows, u_cols, u_vals = [], [], []
        for sn, (rows, l_block, u_block) in zip(
            self.symbolic.tree.supernodes, self.fronts
        ):
            ii, jj = _supernode_triangle(rows, sn.n_cols)
            # L: column first_col + j holds rows[i] for i >= j; the
            # diagonal (i == j) is stored as the unit 1.0.
            vals = l_block[ii, jj]
            vals[ii == jj] = 1.0
            l_rows.append(rows[ii])
            l_cols.append(sn.first_col + jj)
            l_vals.append(vals)
            # U: row first_col + j holds columns rows[i] for i >= j,
            # including the pivot diagonal.
            u_rows.append(sn.first_col + jj)
            u_cols.append(rows[ii])
            u_vals.append(u_block[jj, ii])
        lower = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(l_rows), np.concatenate(l_cols),
            np.concatenate(l_vals),
        ))
        upper = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(u_rows), np.concatenate(u_cols),
            np.concatenate(u_vals),
        ))
        return lower, upper


def multifrontal_lu(
    matrix: CSCMatrix,
    symbolic: SymbolicFactorization,
    perturb: float | None = None,
    workers: int | None = None,
    block_size: int | None = None,
) -> LUFactors:
    """Numerically LU-factor a matrix under an existing symbolic analysis.

    Args:
        matrix: the original (unpermuted, already statically row-pivoted)
            matrix.
        symbolic: analysis with kind == "lu".
        perturb: small-pivot threshold; defaults to sqrt(eps) * max|A|.
        workers: thread count for level-scheduled parallel traversal
            (defaults to the global tuning; bit-identical for every N).
        block_size: dense-kernel panel width (defaults to tuning).
    """
    if symbolic.kind != "lu":
        raise ValueError("symbolic analysis is not for LU")
    workers = resolve_workers(workers)
    block = resolve_block_size(block_size)
    t_start = time.perf_counter()

    ctx = numeric_context(symbolic, matrix)
    permuted_data = ctx.permuted_data(matrix)
    if perturb is None:
        amax = float(np.abs(matrix.data).max()) if matrix.nnz else 1.0
        perturb = np.sqrt(np.finfo(np.float64).eps) * amax

    tree = symbolic.tree
    n_sn = tree.n_supernodes
    supernodes = tree.supernodes
    child_maps = tree.child_maps
    updates: list[np.ndarray | None] = [None] * n_sn
    fronts: list[tuple[np.ndarray, np.ndarray, np.ndarray] | None]
    fronts = [None] * n_sn
    perturbed = np.zeros(n_sn, dtype=np.int64)
    timer = TaskTimer(n_sn)

    def task(i: int) -> None:
        with timer.time(i):
            sn = supernodes[i]
            size = sn.front_size
            k = sn.n_cols
            values = np.zeros((size, size))
            values.flat[ctx.flat_pos[i]] = permuted_data[ctx.data_idx[i]]
            for child in sn.children:
                pos = child_maps[child]
                if pos is None:
                    continue
                child_update = updates[child]
                updates[child] = None
                values[pos[:, None], pos] += child_update
            before = np.abs(np.diag(values)[:k])
            perturbed[i] = int(np.sum(before < perturb))
            partial_lu(values, k, perturb=perturb, block=block)
            fronts[i] = (sn.rows.copy(),
                         np.tril(values[:, :k]),
                         np.triu(values[:k, :]))
            if sn.parent >= 0 and sn.n_update_rows > 0:
                updates[i] = values[k:, k:].copy()

    dispatched = run_level_scheduled(
        ctx.levels, n_sn, task, workers,
        parallel_threshold=get_tuning().parallel_threshold,
    )
    if any(u is not None for u in updates):
        raise AssertionError("unconsumed update matrices remain")
    export_factor_metrics(
        symbolic, time.perf_counter() - t_start, workers, block,
        ctx.levels, timer.total(), dispatched,
    )
    return LUFactors(symbolic=symbolic, fronts=fronts,
                     perturbed_pivots=int(perturbed.sum()))
