"""Multifrontal sparse LU with static pivoting (Section 2.4).

Same structure as multifrontal Cholesky, with full-square fronts: the first
N_k columns of a front hold L's columns, the first N_k *rows* hold U's rows,
and the trailing square is the update matrix.  Static pivoting (row
matching) happens before the symbolic analysis; tiny pivots encountered
during factorization are bumped by ``sqrt(eps) * ||A||_max`` as in
static-pivoted solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numeric.dense import partial_lu
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization
from repro.symbolic.assembly import initial_front_values_lu
from repro.symbolic.csq import CSQMatrix


@dataclass
class LUFactors:
    """Numeric output of multifrontal LU.

    Attributes:
        symbolic: the analysis this factor was computed under.
        fronts: per-supernode (rows, l_block, u_block): l_block is the
            front's first n_cols columns (L, unit diagonal implicit in U
            convention below); u_block is the first n_cols rows (U,
            including the diagonal).
        perturbed_pivots: number of pivots bumped by the static-pivoting
            perturbation (0 for well-conditioned diagonally dominant
            inputs).
    """

    symbolic: SymbolicFactorization
    fronts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    perturbed_pivots: int = 0

    def to_csc(self) -> tuple[CSCMatrix, CSCMatrix]:
        """Materialize (L, U) of the permuted matrix as CSC.

        L has unit diagonal (stored); U holds the pivots on its diagonal.
        """
        n = self.symbolic.n
        l_rows, l_cols, l_vals = [], [], []
        u_rows, u_cols, u_vals = [], [], []
        for sn, (rows, l_block, u_block) in zip(
            self.symbolic.tree.supernodes, self.fronts
        ):
            for local in range(sn.n_cols):
                col = sn.first_col + local
                # L column: unit diagonal + subdiagonal entries.
                col_rows = rows[local:]
                vals = l_block[local:, local].copy()
                vals[0] = 1.0
                l_rows.append(col_rows)
                l_cols.append(np.full(len(col_rows), col, dtype=np.int64))
                l_vals.append(vals)
                # U row `col`: diagonal + superdiagonal entries, stored
                # column-wise (entry (col, rows[j]) for j >= local).
                row_cols = rows[local:]
                u_rows.append(np.full(len(row_cols), col, dtype=np.int64))
                u_cols.append(row_cols)
                u_vals.append(u_block[local, local:])
        lower = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(l_rows), np.concatenate(l_cols),
            np.concatenate(l_vals),
        ))
        upper = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(u_rows), np.concatenate(u_cols),
            np.concatenate(u_vals),
        ))
        return lower, upper


def multifrontal_lu(
    matrix: CSCMatrix,
    symbolic: SymbolicFactorization,
    perturb: float | None = None,
) -> LUFactors:
    """Numerically LU-factor a matrix under an existing symbolic analysis.

    Args:
        matrix: the original (unpermuted, already statically row-pivoted)
            matrix.
        symbolic: analysis with kind == "lu".
        perturb: small-pivot threshold; defaults to sqrt(eps) * max|A|.
    """
    if symbolic.kind != "lu":
        raise ValueError("symbolic analysis is not for LU")
    permuted = matrix.permuted(symbolic.perm)
    permuted_csr = permuted.transpose()
    if perturb is None:
        amax = float(np.abs(permuted.data).max()) if permuted.nnz else 1.0
        perturb = np.sqrt(np.finfo(np.float64).eps) * amax

    tree = symbolic.tree
    updates: dict[int, CSQMatrix] = {}
    fronts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    perturbed = 0

    for sn in tree.supernodes:
        values = initial_front_values_lu(permuted, permuted_csr, sn)
        front = CSQMatrix(sn.rows, values)
        for child in sn.children:
            front.extend_add(updates.pop(child))
        before = np.abs(np.diag(front.values)[: sn.n_cols])
        partial_lu(front.values, sn.n_cols, perturb=perturb)
        perturbed += int(np.sum(before < perturb))
        l_block = np.tril(front.values)[:, : sn.n_cols].copy()
        u_block = np.triu(front.values)[: sn.n_cols, :].copy()
        fronts.append((sn.rows.copy(), l_block, u_block))
        if sn.parent >= 0 and sn.n_update_rows > 0:
            updates[sn.index] = front.submatrix(sn.n_cols)
    if updates:
        raise AssertionError("unconsumed update matrices remain")
    return LUFactors(symbolic=symbolic, fronts=fronts,
                     perturbed_pivots=perturbed)
