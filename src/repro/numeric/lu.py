"""Multifrontal sparse LU with static pivoting (Section 2.4).

Same structure as multifrontal Cholesky, with full-square fronts: the first
N_k columns of a front hold L's columns, the first N_k *rows* hold U's rows,
and the trailing square is the update matrix.  Static pivoting (row
matching) happens before the symbolic analysis; tiny pivots encountered
during factorization are bumped by ``sqrt(eps) * ||A||_max`` as in
static-pivoted solvers.

Like the Cholesky side, assembly runs through the pattern-cached scatter
maps of :mod:`repro.numeric.engine`, the partial factorization is the
blocked BLAS-3 kernel, and ``workers > 1`` runs independent supernodes
under any of the :mod:`repro.numeric.schedule` backends with
bit-identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.numeric.cholesky import _supernode_triangle
from repro.numeric.dense import partial_lu
from repro.numeric.engine import (
    export_factor_metrics,
    numeric_context,
)
from repro.numeric.schedule import SupernodeJob, run_scheduled
from repro.numeric.tuning import (
    get_tuning,
    resolve_block_size,
    resolve_scheduler,
    resolve_workers,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import SymbolicFactorization


@dataclass
class LUFactors:
    """Numeric output of multifrontal LU.

    Attributes:
        symbolic: the analysis this factor was computed under.
        fronts: per-supernode (rows, l_block, u_block): l_block is the
            front's first n_cols columns (L, unit diagonal implicit in U
            convention below); u_block is the first n_cols rows (U,
            including the diagonal).
        perturbed_pivots: number of pivots bumped by the static-pivoting
            perturbation (0 for well-conditioned diagonally dominant
            inputs).
    """

    symbolic: SymbolicFactorization
    fronts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    perturbed_pivots: int = 0

    def to_csc(self) -> tuple[CSCMatrix, CSCMatrix]:
        """Materialize (L, U) of the permuted matrix as CSC.

        L has unit diagonal (stored); U holds the pivots on its diagonal.
        Whole supernode blocks are assembled at once with vectorized
        ``np.repeat`` / ``np.concatenate`` index arithmetic.
        """
        n = self.symbolic.n
        l_rows, l_cols, l_vals = [], [], []
        u_rows, u_cols, u_vals = [], [], []
        for sn, (rows, l_block, u_block) in zip(
            self.symbolic.tree.supernodes, self.fronts
        ):
            ii, jj = _supernode_triangle(rows, sn.n_cols)
            # L: column first_col + j holds rows[i] for i >= j; the
            # diagonal (i == j) is stored as the unit 1.0.
            vals = l_block[ii, jj]
            vals[ii == jj] = 1.0
            l_rows.append(rows[ii])
            l_cols.append(sn.first_col + jj)
            l_vals.append(vals)
            # U: row first_col + j holds columns rows[i] for i >= j,
            # including the pivot diagonal.
            u_rows.append(sn.first_col + jj)
            u_cols.append(rows[ii])
            u_vals.append(u_block[jj, ii])
        lower = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(l_rows), np.concatenate(l_cols),
            np.concatenate(l_vals),
        ))
        upper = CSCMatrix.from_coo(COOMatrix(
            n, n, np.concatenate(u_rows), np.concatenate(u_cols),
            np.concatenate(u_vals),
        ))
        return lower, upper


class LUJob(SupernodeJob):
    """The per-supernode LU task body (see ``SupernodeJob``)."""

    def __init__(self, ctx, permuted_data: np.ndarray, block: int,
                 perturb: float) -> None:
        super().__init__(ctx, permuted_data, block)
        self.perturb = perturb
        self.fronts: list[
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ] = [None] * self.n_supernodes
        self.perturbed = np.zeros(self.n_supernodes, dtype=np.int64)

    def _factor(self, i: int, sn, values: np.ndarray) -> None:
        k = sn.n_cols
        before = np.abs(np.diag(values)[:k])
        self.perturbed[i] = int(np.sum(before < self.perturb))
        partial_lu(values, k, perturb=self.perturb, block=self.block)
        self.fronts[i] = (sn.rows.copy(),
                          np.tril(values[:, :k]),
                          np.triu(values[:k, :]))

    def output_shapes(self, i: int) -> list[tuple[int, ...]]:
        sn = self.supernodes[i]
        size, k = sn.front_size, sn.n_cols
        return [(size, k), (k, size)]

    def output_arrays(self, i: int) -> list[np.ndarray]:
        return [self.fronts[i][1], self.fronts[i][2]]

    def load_outputs(self, i: int, arrays: list[np.ndarray]) -> None:
        self.fronts[i] = (self.supernodes[i].rows.copy(),
                          arrays[0], arrays[1])

    def scalar_output(self, i: int) -> float:
        return float(self.perturbed[i])

    def load_scalar(self, i: int, value: float) -> None:
        self.perturbed[i] = int(value)


def multifrontal_lu(
    matrix: CSCMatrix,
    symbolic: SymbolicFactorization,
    perturb: float | None = None,
    workers: int | None = None,
    block_size: int | None = None,
    scheduler: str | None = None,
) -> LUFactors:
    """Numerically LU-factor a matrix under an existing symbolic analysis.

    Args:
        matrix: the original (unpermuted, already statically row-pivoted)
            matrix.
        symbolic: analysis with kind == "lu".
        perturb: small-pivot threshold; defaults to sqrt(eps) * max|A|.
        workers: worker count for the parallel schedulers (defaults to
            the global tuning; bit-identical for every N).
        block_size: dense-kernel panel width (defaults to tuning).
        scheduler: "level" | "dag" | "procs" (defaults to tuning; see
            :mod:`repro.numeric.schedule`).  Bit-identical across all.
    """
    if symbolic.kind != "lu":
        raise ValueError("symbolic analysis is not for LU")
    workers = resolve_workers(workers)
    block = resolve_block_size(block_size)
    scheduler = resolve_scheduler(scheduler)
    t_start = time.perf_counter()

    ctx = numeric_context(symbolic, matrix)
    if perturb is None:
        amax = float(np.abs(matrix.data).max()) if matrix.nnz else 1.0
        perturb = np.sqrt(np.finfo(np.float64).eps) * amax

    job = LUJob(ctx, ctx.permuted_data(matrix), block, perturb)
    stats = run_scheduled(
        job, scheduler, workers,
        parallel_threshold=get_tuning().parallel_threshold,
    )
    job.check_consumed()
    export_factor_metrics(
        symbolic, time.perf_counter() - t_start, block,
        ctx.levels, job.timer.total(), stats,
    )
    return LUFactors(symbolic=symbolic, fronts=job.fronts,
                     perturbed_pivots=int(job.perturbed.sum()))
