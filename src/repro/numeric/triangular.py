"""Sparse triangular solves (the fast phase of Figure 2).

Once L (and U) are computed, solving Ax = b is two sparse triangular
substitutions.  These run column-at-a-time over CSC factors; they are
O(nnz(L)) per right-hand side and validated against dense solves in tests.

Right-hand sides may be a vector or an (n, k) panel: each column of the
factor is applied to all k right-hand sides at once (a rank-1 panel
update), so k systems cost one sweep over the factor instead of k.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix


def _as_panel(b: np.ndarray, n: int, context: str
              ) -> tuple[np.ndarray, bool]:
    y = np.array(b, dtype=np.float64, copy=True)
    if y.shape[0] != n:
        raise ValueError(f"dimension mismatch in {context}")
    if y.ndim == 1:
        return y.reshape(-1, 1), True
    if y.ndim != 2:
        raise ValueError(f"{context}: b must be a vector or (n, k) array")
    return y, False


def solve_lower_csc(
    lower: CSCMatrix, b: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve L Y = B by forward substitution (L lower-triangular CSC)."""
    n = lower.n_cols
    y, was_vector = _as_panel(b, n, "forward solve")
    for j in range(n):
        rows = lower.col_rows(j)
        vals = lower.col_vals(j)
        if len(rows) == 0 or rows[0] != j:
            raise ValueError(f"missing diagonal in column {j}")
        if not unit_diagonal:
            y[j] /= vals[0]
        if len(rows) > 1:
            y[rows[1:]] -= np.outer(vals[1:], y[j])
    return y[:, 0] if was_vector else y


def solve_upper_csc(upper_as_lower: CSCMatrix, b: np.ndarray,
                    unit_diagonal: bool = False) -> np.ndarray:
    """Solve L^T X = Y given L in CSC (i.e. an upper solve via L's columns).

    Uses the dot-product (up-looking) form: processing columns of L in
    reverse order computes rows of L^T.
    """
    n = upper_as_lower.n_cols
    x, was_vector = _as_panel(b, n, "backward solve")
    for j in range(n - 1, -1, -1):
        rows = upper_as_lower.col_rows(j)
        vals = upper_as_lower.col_vals(j)
        if len(rows) == 0 or rows[0] != j:
            raise ValueError(f"missing diagonal in column {j}")
        if len(rows) > 1:
            x[j] -= vals[1:] @ x[rows[1:]]
        if not unit_diagonal:
            x[j] /= vals[0]
    return x[:, 0] if was_vector else x


def solve_upper_csc_direct(upper: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Solve U X = B with U stored directly as upper-triangular CSC."""
    n = upper.n_cols
    x, was_vector = _as_panel(b, n, "backward solve")
    for j in range(n - 1, -1, -1):
        rows = upper.col_rows(j)
        vals = upper.col_vals(j)
        if len(rows) == 0 or rows[-1] != j:
            raise ValueError(f"missing diagonal in column {j}")
        x[j] /= vals[-1]
        if len(rows) > 1:
            x[rows[:-1]] -= np.outer(vals[:-1], x[j])
    return x[:, 0] if was_vector else x
