"""Numeric factorization and solve (the functional model).

This subpackage is the *algorithmic* reference implementation of everything
Spatula accelerates: dense tile kernels, multifrontal Cholesky and LU over
CSQ fronts, sparse triangular solves, and an end-to-end ``analyze /
factorize / solve`` API mirroring the solver structure of Figure 2.

The Spatula simulator (:mod:`repro.arch`) models the *timing* of this exact
computation; tests verify the two agree on work performed, and that this
model's factors satisfy ||A - LL^T|| (resp. ||A - LU||) ~ machine epsilon.

Performance machinery (see ``docs/PERFORMANCE.md``): blocked BLAS-3 dense
kernels with a :mod:`~repro.numeric.tuning` block-size knob,
interchangeable parallel schedulers (:mod:`~repro.numeric.schedule`:
level barriers, barrier-free DAG dispatch, subtree-parallel worker
processes — all bit-identical), pattern-cached assembly maps
(:mod:`~repro.numeric.engine`), and a process-global
:class:`~repro.numeric.cache.AnalysisCache`.
"""

from repro.numeric.dense import (
    dense_cholesky,
    dense_lu_nopivot,
    solve_lower_dense,
    solve_upper_dense,
    tsolve_lower_inplace,
    tsolve_upper_inplace,
)
from repro.numeric.cache import AnalysisCache, analysis_cache
from repro.numeric.cholesky import CholeskyFactor, multifrontal_cholesky
from repro.numeric.lu import LUFactors, multifrontal_lu
from repro.numeric.triangular import (
    solve_lower_csc,
    solve_upper_csc,
)
from repro.numeric.refinement import RefinementResult, iterative_refinement
from repro.numeric.supernodal_solve import cholesky_solve, lu_solve
from repro.numeric.schedule import SCHEDULER_NAMES, ScheduleStats
from repro.numeric.solver import SparseSolver
from repro.numeric.tuning import NumericTuning, get_tuning, set_tuning, tuned

__all__ = [
    "SCHEDULER_NAMES",
    "ScheduleStats",
    "dense_cholesky",
    "dense_lu_nopivot",
    "solve_lower_dense",
    "solve_upper_dense",
    "tsolve_lower_inplace",
    "tsolve_upper_inplace",
    "AnalysisCache",
    "analysis_cache",
    "CholeskyFactor",
    "multifrontal_cholesky",
    "LUFactors",
    "multifrontal_lu",
    "solve_lower_csc",
    "solve_upper_csc",
    "RefinementResult",
    "iterative_refinement",
    "cholesky_solve",
    "lu_solve",
    "SparseSolver",
    "NumericTuning",
    "get_tuning",
    "set_tuning",
    "tuned",
]
