"""Iterative refinement.

Static pivoting (Section 2.4) trades pivot quality for a static task
graph; the standard companion — used by SuperLU-DIST and every
static-pivoted solver — is iterative refinement: after the direct solve,
repeatedly solve for the residual correction

    r = b - A x;   A dx = r;   x += dx

using the same (slightly perturbed) factors.  Each sweep costs only two
triangular solves, and a handful of sweeps recovers full precision even
when pivots were perturbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix


@dataclass
class RefinementResult:
    """Outcome of iterative refinement."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    history: list[float]


def iterative_refinement(
    matrix: CSCMatrix,
    solve,
    b: np.ndarray,
    max_iterations: int = 10,
    tolerance: float = 1e-14,
) -> RefinementResult:
    """Refine a direct solve to (near) working precision.

    Args:
        matrix: the original matrix A.
        solve: a callable computing an (approximate) solution of A y = r —
            typically ``SparseSolver.solve``.
        b: right-hand side — a vector of length n or an (n, k) panel of
            k right-hand sides (refined together; norms are Frobenius, so
            convergence is judged across the whole panel).
        max_iterations: refinement sweep limit.
        tolerance: stop when the relative residual drops below this.

    Returns:
        the refined solution plus convergence diagnostics.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim not in (1, 2):
        raise ValueError("b must be a vector or an (n, k) panel")
    b_norm = float(np.linalg.norm(b)) or 1.0
    x = solve(b)
    history: list[float] = []
    rel = float(np.linalg.norm(matrix.matvec(x) - b)) / b_norm
    history.append(rel)
    iterations = 0
    while rel > tolerance and iterations < max_iterations:
        r = b - matrix.matvec(x)
        x = x + solve(r)
        iterations += 1
        new_rel = float(np.linalg.norm(matrix.matvec(x) - b)) / b_norm
        history.append(new_rel)
        if new_rel >= rel * 0.5:
            # Stagnation: further sweeps cannot help (the factorization
            # is too inaccurate or the matrix too ill-conditioned).
            rel = min(rel, new_rel)
            break
        rel = new_rel
    return RefinementResult(
        x=x,
        iterations=iterations,
        residual_norm=rel,
        converged=rel <= tolerance,
        history=history,
    )
