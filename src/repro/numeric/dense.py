"""Dense kernels: the numeric payload of Spatula's task types (Table 1).

These are the computations a PE's systolic array performs.  They are
*blocked right-looking* implementations: each kernel factors a narrow panel
with the textbook per-pivot loop (Listing 1), then applies the panel to the
trailing submatrix with matrix-matrix products, so nearly all FLOPs land in
BLAS-3 ``@`` calls instead of per-pivot ``np.outer`` updates.  The panel
width comes from :mod:`repro.numeric.tuning` (``block_size``); ``1``
recovers the unblocked textbook algorithm exactly.

The factors computed are identical (up to floating-point reassociation of
the update sums) to the per-pivot algorithms the paper cites (Brent & Luk's
systolic Cholesky, Kung & Leiserson's systolic tsolve) and are validated
against ``numpy.linalg`` in tests.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.tuning import resolve_block_size

#: Base-case size below which the recursive triangular solves run the
#: unblocked substitution loop directly.
_TRSM_BASE = 32


# -- blocked dense triangular solves (multi-RHS) -----------------------------


def _solve_lower_inplace(tri: np.ndarray, x: np.ndarray, unit: bool) -> None:
    """Solve ``tri @ X = B`` in place (tri lower-triangular, X 2-D).

    Recursive blocked forward substitution: halve the system, solve the
    leading block, eliminate it from the trailing rows with one matmul,
    recurse on the trailing block.
    """
    n = tri.shape[0]
    if n <= _TRSM_BASE:
        for j in range(n):
            if not unit:
                x[j] /= tri[j, j]
            if j + 1 < n:
                x[j + 1:] -= tri[j + 1:, j][:, None] * x[j]
        return
    h = n // 2
    _solve_lower_inplace(tri[:h, :h], x[:h], unit)
    x[h:] -= tri[h:, :h] @ x[:h]
    _solve_lower_inplace(tri[h:, h:], x[h:], unit)


def _solve_upper_inplace(tri: np.ndarray, x: np.ndarray, unit: bool) -> None:
    """Solve ``tri @ X = B`` in place (tri upper-triangular, X 2-D)."""
    n = tri.shape[0]
    if n <= _TRSM_BASE:
        for j in range(n - 1, -1, -1):
            if not unit:
                x[j] /= tri[j, j]
            if j > 0:
                x[:j] -= tri[:j, j][:, None] * x[j]
        return
    h = n // 2
    _solve_upper_inplace(tri[h:, h:], x[h:], unit)
    x[:h] -= tri[:h, h:] @ x[h:]
    _solve_upper_inplace(tri[:h, :h], x[:h], unit)


def solve_lower_dense(tri: np.ndarray, rhs: np.ndarray,
                      unit: bool = False) -> np.ndarray:
    """Solve ``tri @ X = B`` for a dense lower-triangular ``tri``.

    ``rhs`` may be a vector or an (n, k) panel of right-hand sides; the
    result has the same shape.  With ``unit=True`` the diagonal (and the
    strict upper triangle) of ``tri`` is never read.
    """
    x = np.array(rhs, dtype=np.float64, copy=True)
    panel = x.reshape(x.shape[0], -1) if x.ndim == 1 else x
    _solve_lower_inplace(tri, panel, unit)
    return x


def solve_upper_dense(tri: np.ndarray, rhs: np.ndarray,
                      unit: bool = False) -> np.ndarray:
    """Solve ``tri @ X = B`` for a dense upper-triangular ``tri``.

    Same conventions as :func:`solve_lower_dense`.
    """
    x = np.array(rhs, dtype=np.float64, copy=True)
    panel = x.reshape(x.shape[0], -1) if x.ndim == 1 else x
    _solve_upper_inplace(tri, panel, unit)
    return x


# -- blocked factorization kernels -------------------------------------------


def _cholesky_panel(f: np.ndarray, k0: int, k1: int) -> None:
    """Per-pivot factorization of panel columns [k0, k1) against all rows.

    Updates stay within the panel; the trailing matrix is handled by the
    caller's rank-``(k1-k0)`` matmul update.
    """
    for j in range(k0, k1):
        pivot = f[j, j]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise ValueError(f"non-SPD pivot {pivot} at front position {j}")
        f[j, j] = np.sqrt(pivot)
        if j + 1 < f.shape[0]:
            f[j + 1:, j] /= f[j, j]
            if j + 1 < k1:
                f[j + 1:, j + 1:k1] -= (f[j + 1:, j][:, None]
                                        * f[j + 1:k1, j])


def partial_cholesky(front: np.ndarray, n_pivots: int,
                     block: int | None = None) -> np.ndarray:
    """Run ``n_pivots`` Cholesky steps on a front, in place (Listing 2).

    Blocked right-looking: factor a panel of ``block`` columns, then apply
    one symmetric rank-``block`` update ``A22 -= L21 @ L21.T`` to the
    trailing block.  After the call, the leading ``n_pivots`` columns hold
    final L values and the trailing lower triangle holds the
    Schur-complement update matrix (the strict upper triangle of the
    trailing block is not maintained; consumers read the lower triangle,
    as the per-pivot algorithm's callers already did).
    """
    f = front
    r = f.shape[0]
    bs = resolve_block_size(block)
    for k0 in range(0, n_pivots, bs):
        k1 = min(k0 + bs, n_pivots)
        _cholesky_panel(f, k0, k1)
        if k1 < r:
            panel = f[k1:, k0:k1]
            f[k1:, k1:] -= panel @ panel.T
    return f


def _lu_panel(f: np.ndarray, k0: int, k1: int, perturb: float) -> None:
    """Per-pivot LU of panel columns [k0, k1); updates stay in the panel."""
    for k in range(k0, k1):
        pivot = f[k, k]
        if abs(pivot) < perturb:
            pivot = perturb if pivot >= 0 else -perturb
            f[k, k] = pivot
        if pivot == 0.0:
            raise ValueError(f"zero pivot at front position {k}")
        if k + 1 < f.shape[0]:
            f[k + 1:, k] /= pivot
            if k + 1 < k1:
                f[k + 1:, k + 1:k1] -= (f[k + 1:, k][:, None]
                                        * f[k, k + 1:k1])


def partial_lu(front: np.ndarray, n_pivots: int,
               perturb: float = 0.0, block: int | None = None) -> np.ndarray:
    """Run ``n_pivots`` LU steps on a full-square front, in place.

    Blocked right-looking with the static-pivoting small-pivot bump
    (pivots with ``|pivot| < perturb`` are replaced by ``+/- perturb``;
    Li & Demmel).  Per panel: per-pivot panel factorization, a unit-lower
    triangular solve for the U panel rows, and one matmul trailing update.
    """
    f = front
    r = f.shape[0]
    bs = resolve_block_size(block)
    for k0 in range(0, n_pivots, bs):
        k1 = min(k0 + bs, n_pivots)
        _lu_panel(f, k0, k1, perturb)
        if k1 < r:
            # U12 panel: solve unit-lower L11 @ U12 = A12 (diagonal of the
            # pivot block holds U values, never read with unit=True).
            _solve_lower_inplace(f[k0:k1, k0:k1], f[k0:k1, k1:], True)
            f[k1:, k1:] -= f[k1:, k0:k1] @ f[k0:k1, k1:]
    return f


def dense_cholesky(a: np.ndarray, block: int | None = None) -> np.ndarray:
    """Blocked dense Cholesky; returns lower-triangular L with A = L @ L.T.

    Raises ValueError on a non-positive pivot (matrix not SPD).
    """
    m = np.array(a, dtype=np.float64, copy=True)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError("dense_cholesky requires a square matrix")
    partial_cholesky(m, n, block=block)
    return np.tril(m)


def dense_lu_nopivot(a: np.ndarray, perturb: float = 0.0,
                     block: int | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Blocked dense LU without pivoting (static pivoting happens first).

    Returns (L, U) with unit-diagonal L.  ``perturb`` is the static-pivoting
    small-pivot bump: pivots with |pivot| < perturb are replaced by
    +/- perturb, trading a tiny residual for stability (Li & Demmel).
    """
    m = np.array(a, dtype=np.float64, copy=True)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError("dense_lu requires a square matrix")
    partial_lu(m, n, perturb=perturb, block=block)
    lower = np.tril(m, -1) + np.eye(n)
    upper = np.triu(m)
    return lower, upper


def tsolve_lower_inplace(block: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Solve X @ lower.T = block for X (the Cholesky panel tsolve).

    This is the tsolve task of Figure 11: given the factored diagonal tile
    ``lower`` (L11) and a subdiagonal block B, compute L21 = B @ L11^-T.
    Computed as one blocked forward solve on the transposed system
    ``L11 @ X.T = B.T``.
    """
    return np.ascontiguousarray(solve_lower_dense(lower, block.T).T)


def tsolve_upper_inplace(block: np.ndarray, lower_unit: np.ndarray
                         ) -> np.ndarray:
    """Solve lower_unit @ X = block for X (the LU U-panel tsolve).

    ``lower_unit`` is the unit-diagonal L11 of a dlu task's output; the
    result is the U12 panel.
    """
    return solve_lower_dense(lower_unit, block, unit=True)
