"""Dense kernels: the numeric payload of Spatula's task types (Table 1).

These are the computations a PE's systolic array performs.  They are written
as explicit loop-free NumPy implementations of the textbook algorithms the
paper cites (Brent & Luk's systolic Cholesky computes the same factor;
Kung & Leiserson's systolic tsolve computes the same solve) and validated
against ``numpy.linalg`` in tests.
"""

from __future__ import annotations

import numpy as np


def dense_cholesky(a: np.ndarray) -> np.ndarray:
    """In-place-style dense Cholesky of the leading principal block.

    Returns the lower-triangular L with A = L @ L.T.  Implements exactly the
    loop nest of Listing 1 (vectorized per pivot), the computation a dchol
    task performs on a diagonal tile.

    Raises ValueError on a non-positive pivot (matrix not SPD).
    """
    m = np.array(a, dtype=np.float64, copy=True)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError("dense_cholesky requires a square matrix")
    for i in range(n):
        pivot = m[i, i]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise ValueError(f"non-SPD pivot {pivot} at index {i}")
        m[i, i] = np.sqrt(pivot)
        m[i + 1:, i] /= m[i, i]
        # Outer-product update of the trailing lower triangle.
        m[i + 1:, i + 1:] -= np.outer(m[i + 1:, i], m[i + 1:, i])
    return np.tril(m)


def dense_lu_nopivot(a: np.ndarray,
                     perturb: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Dense LU without pivoting (static pivoting happens beforehand).

    Returns (L, U) with unit-diagonal L.  ``perturb`` is the static-pivoting
    small-pivot bump: pivots with |pivot| < perturb are replaced by
    +/- perturb, trading a tiny residual for stability (Li & Demmel).
    """
    m = np.array(a, dtype=np.float64, copy=True)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError("dense_lu requires a square matrix")
    for k in range(n):
        pivot = m[k, k]
        if abs(pivot) < perturb:
            pivot = perturb if pivot >= 0 else -perturb
            m[k, k] = pivot
        if pivot == 0.0:
            raise ValueError(f"zero pivot at index {k}")
        m[k + 1:, k] /= pivot
        m[k + 1:, k + 1:] -= np.outer(m[k + 1:, k], m[k, k + 1:])
    lower = np.tril(m, -1) + np.eye(n)
    upper = np.triu(m)
    return lower, upper


def tsolve_lower_inplace(block: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Solve X @ lower.T = block for X (the Cholesky panel tsolve).

    This is the tsolve task of Figure 11: given the factored diagonal tile
    ``lower`` (L11) and a subdiagonal block B, compute L21 = B @ L11^-T.
    """
    # Forward substitution, column at a time (matches the systolic flow).
    x = np.array(block, dtype=np.float64, copy=True)
    n = lower.shape[0]
    for j in range(n):
        x[:, j] /= lower[j, j]
        if j + 1 < n:
            x[:, j + 1:] -= np.outer(x[:, j], lower[j + 1:, j])
    return x


def tsolve_upper_inplace(block: np.ndarray, lower_unit: np.ndarray
                         ) -> np.ndarray:
    """Solve lower_unit @ X = block for X (the LU U-panel tsolve).

    ``lower_unit`` is the unit-diagonal L11 of a dlu task's output; the
    result is the U12 panel.
    """
    x = np.array(block, dtype=np.float64, copy=True)
    n = lower_unit.shape[0]
    for i in range(n):
        if i:
            x[i, :] -= lower_unit[i, :i] @ x[:i, :]
        # Unit diagonal: no divide.
    return x


def partial_cholesky(front: np.ndarray, n_pivots: int) -> np.ndarray:
    """Run ``n_pivots`` Cholesky steps on a front, in place (Listing 2).

    After the call, the leading ``n_pivots`` columns hold final L values and
    the trailing block holds the Schur-complement update matrix (negated
    contributions already applied).
    """
    f = front
    r = f.shape[0]
    for i in range(n_pivots):
        pivot = f[i, i]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise ValueError(f"non-SPD pivot {pivot} at front position {i}")
        f[i, i] = np.sqrt(pivot)
        if i + 1 < r:
            f[i + 1:, i] /= f[i, i]
            f[i + 1:, i + 1:] -= np.outer(f[i + 1:, i], f[i + 1:, i])
    return f


def partial_lu(front: np.ndarray, n_pivots: int,
               perturb: float = 0.0) -> np.ndarray:
    """Run ``n_pivots`` LU steps on a full-square front, in place."""
    f = front
    r = f.shape[0]
    for k in range(n_pivots):
        pivot = f[k, k]
        if abs(pivot) < perturb:
            pivot = perturb if pivot >= 0 else -perturb
            f[k, k] = pivot
        if pivot == 0.0:
            raise ValueError(f"zero pivot at front position {k}")
        if k + 1 < r:
            f[k + 1:, k] /= f[k, k]
            f[k + 1:, k + 1:] -= np.outer(f[k + 1:, k], f[k, k + 1:])
    return f
