"""Simulation statistics and the SimReport (everything Section 7 plots).

A single :class:`SimReport` carries the data behind each evaluation figure:
achieved TFLOP/s (Tables 3/4), the PE cycle breakdown (Figure 16), DRAM
traffic by category and average bandwidth (Figure 17), the power breakdown
(Figure 18), and the concurrent-supernode distribution (Figure 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.arch.config import SpatulaConfig
from repro.tasks.task import TaskType

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


@dataclass
class SimReport:
    """The outcome of one Spatula simulation."""

    config: SpatulaConfig
    matrix_name: str
    kind: str
    n: int
    cycles: int
    algorithmic_flops: int
    machine_flops: int
    n_tasks: int
    n_supernodes: int
    busy_cycles_by_type: dict[TaskType, int]
    traffic_bytes: dict[str, int]
    cache_hits: int
    cache_misses: int
    cache_allocations: int
    sn_intervals: list[tuple[int, int]] = field(default_factory=list)
    pe_busy_cycles: list[int] = field(default_factory=list)
    peak_live_front_bytes: int = 0
    # The full metrics registry the report was built from (see
    # from_registry); carries every component counter beyond the typed
    # headline fields above.
    metrics: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    # -- construction from the metrics registry --------------------------------

    @classmethod
    def from_registry(
        cls,
        registry: "MetricsRegistry",
        config: SpatulaConfig,
        matrix_name: str,
        kind: str,
        sn_intervals: list[tuple[int, int]] | None = None,
    ) -> "SimReport":
        """Build a report from an instrumented simulation's registry.

        The registry is the source of truth (the simulator exports every
        component's counters into it under hierarchical names); this
        constructor projects the headline fields out of it instead of
        hand-assembling them from component internals.
        """
        value = registry.value
        busy = {
            t: int(value(f"pe.busy_cycles.{t.value}")) for t in TaskType
        }
        traffic = {
            name[len("hbm.bytes."):]: int(registry.value(name))
            for name in registry.names("hbm.bytes")
            if name != "hbm.bytes.total"
        }
        pe_busy = [
            int(value(f"pe.{i}.busy_cycles")) for i in range(config.n_pes)
        ]
        return cls(
            config=config,
            matrix_name=matrix_name,
            kind=kind,
            n=int(value("sim.n")),
            cycles=int(value("sim.cycles")),
            algorithmic_flops=int(value("sim.algorithmic_flops")),
            machine_flops=int(value("sim.machine_flops")),
            n_tasks=int(value("sim.tasks")),
            n_supernodes=int(value("sim.supernodes")),
            busy_cycles_by_type=busy,
            traffic_bytes=traffic,
            cache_hits=int(value("cache.hits")),
            cache_misses=int(value("cache.misses")),
            cache_allocations=int(value("cache.allocations")),
            sn_intervals=list(sn_intervals or []),
            pe_busy_cycles=pe_busy,
            peak_live_front_bytes=int(value("sim.peak_live_front_bytes")),
            metrics=registry,
        )

    # -- headline numbers ------------------------------------------------------

    @property
    def seconds(self) -> float:
        return self.cycles / (self.config.freq_ghz * 1e9)

    @property
    def achieved_tflops(self) -> float:
        """Algorithmic FLOPs / time — the paper's TFLOP/s metric."""
        return self.algorithmic_flops / self.seconds / 1e12

    @property
    def utilization(self) -> float:
        """Fraction of peak FMA throughput achieved (machine FLOPs)."""
        peak = self.config.peak_flops_per_cycle * self.cycles
        return self.machine_flops / peak if peak else 0.0

    # -- Figure 16: cycle breakdown --------------------------------------------

    def cycle_breakdown(self) -> dict[str, float]:
        """Fraction of PE-cycles per task type, plus stalls."""
        total = self.cycles * self.config.n_pes
        out = {
            t.value: self.busy_cycles_by_type.get(t, 0) / total
            for t in TaskType
        }
        out["stalled"] = max(0.0, 1.0 - sum(out.values()))
        return out

    # -- Figure 17: data movement ------------------------------------------------

    @property
    def total_dram_bytes(self) -> int:
        return sum(self.traffic_bytes.values())

    @property
    def avg_bandwidth_gbs(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.total_dram_bytes / self.seconds / 1e9

    def traffic_fractions(self) -> dict[str, float]:
        total = self.total_dram_bytes or 1
        return {k: v / total for k, v in self.traffic_bytes.items()}

    # -- Figure 19: concurrency ---------------------------------------------------

    def concurrency_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """(levels, cdf): fraction of busy time with <= level supernodes
        concurrently in flight."""
        if not self.sn_intervals:
            return np.array([0]), np.array([1.0])
        events: list[tuple[int, int]] = []
        for start, end in self.sn_intervals:
            if end > start:
                events.append((start, +1))
                events.append((end, -1))
        if not events:
            # Every interval was zero-length (degenerate but possible for
            # all-empty supernodes): same fallback as an empty trace.
            return np.array([0]), np.array([1.0])
        events.sort()
        time_at_level: dict[int, int] = {}
        level = 0
        prev = events[0][0]
        for cycle, delta in events:
            if cycle > prev and level > 0:
                time_at_level[level] = time_at_level.get(level, 0) \
                    + (cycle - prev)
            level += delta
            prev = cycle
        levels = np.array(sorted(time_at_level), dtype=np.int64)
        weights = np.array([time_at_level[k] for k in levels], dtype=float)
        cdf = np.cumsum(weights) / weights.sum()
        return levels, cdf

    def mean_concurrency(self) -> float:
        levels, cdf = self.concurrency_cdf()
        pdf = np.diff(np.concatenate(([0.0], cdf)))
        return float(np.sum(levels * pdf))

    # -- load balance -------------------------------------------------------------

    def load_imbalance(self) -> float:
        """max/mean ratio of per-PE busy cycles (1.0 = perfectly even).

        The paper's scheduler exists to avoid the load imbalance that
        batching causes on GPUs; this quantifies how even Spatula's own
        PE usage ends up.
        """
        if not self.pe_busy_cycles:
            return 1.0
        mean = sum(self.pe_busy_cycles) / len(self.pe_busy_cycles)
        if mean == 0:
            return 1.0
        return max(self.pe_busy_cycles) / mean

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Headline numbers + breakdowns as a JSON-ready dict (the
        ``report`` section of a :class:`repro.obs.RunArtifact`)."""
        return {
            "matrix": self.matrix_name,
            "kind": self.kind,
            "n": self.n,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "achieved_tflops": self.achieved_tflops,
            "utilization": self.utilization,
            "algorithmic_flops": self.algorithmic_flops,
            "machine_flops": self.machine_flops,
            "n_tasks": self.n_tasks,
            "n_supernodes": self.n_supernodes,
            "total_dram_bytes": self.total_dram_bytes,
            "avg_bandwidth_gbs": self.avg_bandwidth_gbs,
            "load_imbalance": self.load_imbalance(),
            "mean_concurrency": self.mean_concurrency(),
            "peak_live_front_bytes": self.peak_live_front_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cycle_breakdown": self.cycle_breakdown(),
            "traffic_bytes": dict(self.traffic_bytes),
        }

    # -- summary ---------------------------------------------------------------

    def summary(self) -> str:
        bd = self.cycle_breakdown()
        return (
            f"{self.matrix_name} [{self.kind}] n={self.n}: "
            f"{self.cycles} cycles, {self.achieved_tflops:.2f} TFLOP/s "
            f"({100 * self.utilization:.0f}% util), "
            f"{self.avg_bandwidth_gbs:.0f} GB/s, "
            f"stalled {100 * bd['stalled']:.0f}%"
        )
