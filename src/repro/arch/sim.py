"""The Spatula simulation engine.

Cycle-accurate discrete-event simulation of a whole factorization on the
machine of :class:`~repro.arch.config.SpatulaConfig`.  Components (PEs,
cache banks, NoC ports, HBM channels, the dispatcher, the supernode
scheduler) are modeled as reservation resources at single-cycle
resolution; PEs execute tasks at task granularity with fixed systolic
latencies, exactly the granularity the paper's own simulator uses
(Section 6).

The engine enforces the architecture's correctness rules and asserts them
at runtime: tasks dispatch only when their scoreboard dependences are
resolved, generators dispatch in-order (unless the dataflow ablation
widens the window), and supernodes launch only after all children are
fully factored.
"""

from __future__ import annotations

import heapq
import logging

import numpy as np

from repro.arch.cache import BankedCache
from repro.arch.config import SpatulaConfig
from repro.arch.generator import Generator
from repro.arch.memory import HBMModel
from repro.arch.noc import CrossbarPort
from repro.arch.pe import PE, PendingTask
from repro.arch.scheduler import SupernodeScheduler
from repro.arch.stats import SimReport
from repro.arch.systolic import task_input_tiles, task_latency
from repro.obs import MetricsRegistry, span
from repro.tasks.plan import FactorizationPlan
from repro.tasks.task import TaskType, TileRef

logger = logging.getLogger(__name__)

_A_ENTRY_BYTES = 12  # 8-byte value + 4-byte packed coordinate


class SpatulaSim:
    """One simulation run: construct, then :meth:`run` once."""

    def __init__(
        self,
        plan: FactorizationPlan,
        config: SpatulaConfig | None = None,
        matrix_name: str = "",
        executor=None,
        trace: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Args:
            plan: tiled execution plan (see repro.tasks.plan.build_plan).
            config: hardware configuration; defaults to the paper machine.
            matrix_name: label stamped into the report.
            executor: optional repro.arch.functional.TileExecutor; when
                given, every retired task also runs its numeric kernel so
                the simulation computes the real factorization (checkable
                with executor.verify()).
            trace: record a per-task execution trace in ``self.trace``
                (see repro.arch.trace for renderers/exporters).
            metrics: registry to export component counters into at end of
                run (a fresh one is created otherwise); the run costs the
                same either way — components count into plain slots during
                the run and are folded into the registry exactly once.
        """
        self.plan = plan
        self.config = config or SpatulaConfig.paper()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if self.config.tile != plan.tile:
            raise ValueError(
                f"plan tiled at T={plan.tile} but config tile is "
                f"{self.config.tile}; rebuild the plan"
            )
        self.matrix_name = matrix_name
        self.executor = executor
        self.trace: list | None = [] if trace else None

        cfg = self.config
        self.hbm = HBMModel(cfg)
        self.cache = BankedCache(cfg, self.hbm)
        self.cache.classify_store = self._classify_store
        self.pes = [
            PE(index=i, n_slots=cfg.task_slots,
               port=CrossbarPort(cfg.pe_port_bytes_per_cycle),
               wport=CrossbarPort(cfg.pe_port_bytes_per_cycle))
            for i in range(cfg.n_pes)
        ]
        self.snsched = SupernodeScheduler(
            tree=plan.symbolic.tree, config=cfg
        )

        # Tile address space.
        self._addr_of: dict[TileRef, int] = {}
        self._ref_of: list[TileRef] = []

        # Active generators, keyed by supernode index.
        self.gens: dict[int, Generator] = {}
        self._free_pe_bindings = list(range(cfg.n_pes - 1, -1, -1))

        # Event queue.
        self._events: list[tuple[int, int, str, object]] = []
        self._seq = 0
        self._now = 0
        # Earliest outstanding pe_try wakeup per PE (dedupe guard).
        self._pe_wake: list[int | None] = [None] * cfg.n_pes

        # Resources with busy-until semantics.
        self._dispatcher_free = 0
        self._next_activation = 0

        # Statistics.
        self._machine_flops = 0
        self._n_tasks_done = 0
        self._n_tasks_total = 0
        self._sn_started: dict[int, int] = {}
        self._sn_intervals: list[tuple[int, int]] = []
        self._gen_peak_outstanding: list[int] = []
        self._last_cycle = 0
        # Live-data footprint tracking (Section 5.2's memory argument):
        # active fronts plus update matrices produced but not yet consumed
        # by their parent (the component post-order traversal minimizes).
        self._live_front_bytes = 0
        self._live_update_bytes = 0
        self.peak_live_front_bytes = 0

        # Compulsory input-traffic bytes per supernode.
        self._comp_bytes = self._compulsory_bytes()

    # -- setup helpers -----------------------------------------------------

    def _compulsory_bytes(self) -> np.ndarray:
        """Bytes of A read when assembling each supernode's front."""
        permuted = self.plan.symbolic.permuted
        col_nnz = np.diff(permuted.indptr)
        if self.plan.kind == "lu":
            row_nnz = np.diff(permuted.transpose().indptr)
            col_nnz = col_nnz + row_nnz
        out = np.zeros(self.plan.n_supernodes, dtype=np.int64)
        for sn in self.plan.symbolic.tree.supernodes:
            out[sn.index] = _A_ENTRY_BYTES * int(
                col_nnz[sn.first_col:sn.last_col + 1].sum()
            )
        return out

    def _addr(self, ref: TileRef) -> int:
        addr = self._addr_of.get(ref)
        if addr is None:
            addr = len(self._ref_of)
            self._addr_of[ref] = addr
            self._ref_of.append(ref)
        return addr

    def _classify_store(self, addr: int) -> str:
        ref = self._ref_of[addr]
        plan = self.plan.supernodes[ref.sn]
        p = plan.grid.n_pivot_blocks
        if plan.symmetric:
            is_result = ref.block_col < p
        else:
            is_result = min(ref.block_row, ref.block_col) < p
        return "store_result" if is_result else "store_spill"

    def _is_result_addr(self, addr: int) -> bool:
        return self._classify_store(addr) == "store_result"

    # -- event machinery -----------------------------------------------------

    def _schedule(self, cycle: int, kind: str, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (int(cycle), self._seq, kind, payload))

    def _schedule_pe_try(self, pe_index: int, cycle: int) -> None:
        """Schedule a PE wakeup, keeping at most one live wakeup per PE
        (the earliest); redundant later wakeups are never enqueued and
        superseded ones are dropped when they fire."""
        cycle = int(cycle)
        current = self._pe_wake[pe_index]
        if current is not None and current <= cycle:
            return
        self._pe_wake[pe_index] = cycle
        self._schedule(cycle, "pe_try", pe_index)

    # -- supernode activation ---------------------------------------------------

    def _activate(self, sn_index: int, cycle: int) -> None:
        graph = self.plan.task_graph(sn_index, order=self.config.order)
        gen = Generator(
            sn=sn_index, graph=graph, window=self.config.dataflow_window
        )
        if self.config.policy == "inter":
            gen.pe_binding = self._free_pe_bindings.pop()
        self.gens[sn_index] = gen
        self._n_tasks_total += graph.n_tasks
        self._sn_started[sn_index] = cycle
        self._live_front_bytes += self._front_bytes(sn_index)
        self._track_peak_footprint()
        if self.executor is not None:
            self.executor.init_front(sn_index)
        # Compulsory read of A's entries for this front.
        self.hbm.read_bulk(int(self._comp_bytes[sn_index]), cycle,
                           "comp_load")
        if graph.n_tasks == 0:
            # Degenerate empty supernode (cannot occur for n_cols >= 1, but
            # keep the engine total): complete immediately.
            self._finish_supernode(gen, cycle)

    def _front_bytes(self, sn_index: int) -> int:
        from repro.symbolic.tiling import front_tile_footprint_bytes

        plan = self.plan.supernodes[sn_index]
        return front_tile_footprint_bytes(plan.grid, plan.symmetric)

    def _update_bytes(self, sn_index: int) -> int:
        sn = self.plan.symbolic.tree.supernodes[sn_index]
        u = sn.n_update_rows
        entries = u * (u + 1) // 2 if self.plan.kind == "cholesky" \
            else u * u
        return entries * 8

    def _track_peak_footprint(self) -> None:
        self.peak_live_front_bytes = max(
            self.peak_live_front_bytes,
            self._live_front_bytes + self._live_update_bytes,
        )

    def _finish_supernode(self, gen: Generator, cycle: int) -> None:
        self._live_front_bytes -= self._front_bytes(gen.sn)
        # This supernode's update matrix stays live until the parent
        # consumes it; its children's updates are now consumed.
        self._live_update_bytes += self._update_bytes(gen.sn)
        for child in self.plan.symbolic.tree.supernodes[gen.sn].children:
            self._live_update_bytes -= self._update_bytes(child)
        self._track_peak_footprint()
        self._gen_peak_outstanding.append(gen.peak_outstanding)
        del self.gens[gen.sn]
        if gen.pe_binding >= 0:
            self._free_pe_bindings.append(gen.pe_binding)
        self._sn_intervals.append((self._sn_started[gen.sn], cycle))
        self.snsched.complete(gen.sn)

    # -- dispatch --------------------------------------------------------------

    def _pick_pe(self, gen: Generator) -> PE | None:
        if gen.pe_binding >= 0:
            pe = self.pes[gen.pe_binding]
            return pe if pe.slots_free > 0 else None
        best: PE | None = None
        for pe in self.pes:
            if pe.slots_free <= 0:
                continue
            if best is None or (pe.slots_free, -pe.array_free) > (
                best.slots_free, -best.array_free
            ):
                best = pe
        return best

    def _dispatch(self, gen: Generator, task_index: int, pe: PE,
                  now: int) -> None:
        cfg = self.config
        t0 = max(now, self._dispatcher_free)
        self._dispatcher_free = t0 + cfg.dispatch_interval
        task = gen.graph.tasks[task_index]
        gen.mark_dispatched(task_index)

        miss_kind = (
            "gather_load" if task.ttype is TaskType.GATHER else "factor_load"
        )
        done_times: list[int] = []
        for ref in task_input_tiles(task):
            ready = self.cache.load(self._addr(ref), t0, miss_kind)
            done_times.append(
                pe.reserve_port(ready, cfg.tile_transfer_cycles)
            )
        # Runnable once the destination tile and the first input pair have
        # arrived; the remaining inputs stream through the FIFO.
        lead = max(done_times[: min(3, len(done_times))])
        item = PendingTask(
            gen_sn=gen.sn,
            task_index=task_index,
            op_ready=lead,
            stream_done=max(done_times),
            latency=task_latency(task, cfg),
            dispatched_at=t0,
        )
        pe.add_pending(item)
        self._schedule_pe_try(pe.index, max(lead, pe.array_free))

    def _pump(self, now: int) -> None:
        cfg = self.config
        # Launch ready supernodes onto free generators.
        while (
            len(self.gens) < self.snsched.max_in_flight
            and self.snsched.has_ready()
        ):
            if now < self._next_activation:
                self._schedule(self._next_activation, "pump", None)
                break
            sn = self.snsched.pop_ready()
            self._activate(sn, now)
            self._next_activation = now + cfg.activation_interval

        # Dispatch: biased toward older (smaller-index) supernodes.
        while True:
            dispatched = False
            for sn in sorted(self.gens):
                gen = self.gens[sn]
                for task_index in gen.ready_tasks():
                    pe = self._pick_pe(gen)
                    if pe is None:
                        break
                    self._dispatch(gen, task_index, pe, now)
                    dispatched = True
                    break
                if dispatched:
                    break
            if not dispatched:
                break

    # -- event handlers -----------------------------------------------------------

    def _on_pe_try(self, pe_index: int, now: int) -> None:
        if self._pe_wake[pe_index] != now:
            return  # superseded by an earlier wakeup
        self._pe_wake[pe_index] = None
        pe = self.pes[pe_index]
        if pe.array_free > now:
            if pe.pending:
                self._schedule_pe_try(pe_index, pe.array_free)
            return
        item = pe.pick_runnable(now)
        if item is None:
            wake = pe.next_wakeup()
            if wake is not None and wake > now:
                self._schedule_pe_try(pe_index, wake)
            return
        task = self.gens[item.gen_sn].graph.tasks[item.task_index]
        end = pe.start_execution(item, now, task.ttype)
        if self.trace is not None:
            from repro.arch.trace import TraceEvent

            self.trace.append(TraceEvent(
                pe=pe_index, start=now, end=end, ttype=task.ttype.value,
                sn=item.gen_sn, task_index=item.task_index,
                dispatch=item.dispatched_at, op_ready=item.op_ready,
            ))
        self._schedule(end, "exec_done",
                       (pe_index, item.gen_sn, item.task_index))
        if pe.pending:
            self._schedule_pe_try(pe_index, max(end, pe.next_wakeup()))

    def _on_exec_done(self, payload: tuple, now: int) -> None:
        pe_index, gen_sn, task_index = payload
        pe = self.pes[pe_index]
        gen = self.gens[gen_sn]
        task = gen.graph.tasks[task_index]
        # Write the destination tile back to the cache (write direction).
        port_done = pe.reserve_write_port(
            now, self.config.tile_transfer_cycles
        )
        wb_done = self.cache.store(self._addr(task.dest), port_done)
        self._schedule(wb_done, "task_final",
                       (pe_index, gen_sn, task_index))
        # The array is free: try the next runnable task.
        if pe.pending:
            self._schedule_pe_try(pe_index, now)

    def _on_task_final(self, payload: tuple, now: int) -> None:
        _pe_index, gen_sn, task_index = payload
        gen = self.gens[gen_sn]
        task = gen.graph.tasks[task_index]
        self._machine_flops += task.flops
        self._n_tasks_done += 1
        if self.executor is not None:
            self.executor.execute(task)
        gen.on_complete(task_index)
        if gen.done:
            self._finish_supernode(gen, now)
        self._pump(now)

    # -- main loop --------------------------------------------------------------

    def run(self) -> SimReport:
        """Execute the simulation and return the report."""
        logger.debug(
            "simulating %s: %d supernodes on %d PEs",
            self.matrix_name or "<unnamed>", self.plan.n_supernodes,
            self.config.n_pes,
        )
        with span("sim.run"):
            self._pump(0)
            while self._events:
                cycle, _seq, kind, payload = heapq.heappop(self._events)
                self._now = max(self._now, cycle)
                if kind == "pe_try":
                    self._on_pe_try(payload, cycle)
                elif kind == "exec_done":
                    self._on_exec_done(payload, cycle)
                elif kind == "task_final":
                    self._on_task_final(payload, cycle)
                elif kind == "pump":
                    self._pump(cycle)
                else:
                    raise AssertionError(f"unknown event kind {kind}")
            if not self.snsched.all_done:
                raise AssertionError(
                    "simulation ended with unfinished supernodes "
                    f"({self.snsched.n_completed}/{self.plan.n_supernodes});"
                    " scheduler deadlock"
                )
            end = self.cache.flush_results(self._now, self._is_result_addr)
            end = max(end, self.hbm.drain_cycle(), self._now)
            self._last_cycle = int(end)
            report = self._report()
        logger.info("simulated %s", report.summary())
        return report

    def _export_metrics(self, registry: MetricsRegistry) -> None:
        """Fold every component's raw counters into the registry.

        Runs exactly once, at end of run — the hierarchical names here
        (``sim.*``, ``pe.*``, ``noc.*``, ``cache.*``, ``hbm.*``,
        ``scheduler.*``, ``generator.*``) are the registry namespace
        documented in docs/OBSERVABILITY.md.
        """
        registry.gauge("sim.cycles").set(self._last_cycle)
        registry.gauge("sim.n").set(self.plan.symbolic.n)
        registry.counter("sim.tasks").inc(self._n_tasks_done)
        registry.counter("sim.supernodes").inc(self.plan.n_supernodes)
        registry.counter("sim.machine_flops").inc(self._machine_flops)
        registry.counter("sim.algorithmic_flops").inc(
            self.plan.symbolic.flops
        )
        registry.gauge("sim.peak_live_front_bytes").set(
            self.peak_live_front_bytes
        )

        busy: dict[TaskType, int] = {t: 0 for t in TaskType}
        port_stalls = wport_stalls = 0
        port_busy = wport_busy = 0
        for pe in self.pes:
            registry.counter(f"pe.{pe.index}.busy_cycles").inc(
                pe.busy_total
            )
            registry.counter(f"pe.{pe.index}.port_stall_cycles").inc(
                pe.port.stall_cycles
            )
            registry.counter(f"pe.{pe.index}.wport_stall_cycles").inc(
                pe.wport.stall_cycles
            )
            for ttype, cycles in pe.busy_by_type.items():
                busy[ttype] += cycles
            port_stalls += pe.port.stall_cycles
            wport_stalls += pe.wport.stall_cycles
            port_busy += pe.port.busy_cycles
            wport_busy += pe.wport.busy_cycles
        for ttype, cycles in busy.items():
            registry.counter(f"pe.busy_cycles.{ttype.value}").inc(cycles)
        registry.counter("noc.port.stall_cycles").inc(port_stalls)
        registry.counter("noc.port.busy_cycles").inc(port_busy)
        registry.counter("noc.wport.stall_cycles").inc(wport_stalls)
        registry.counter("noc.wport.busy_cycles").inc(wport_busy)

        self.cache.stats.export_metrics(registry)
        self.hbm.export_metrics(registry)
        self.snsched.export_metrics(registry)
        gen_hist = registry.histogram("generator.peak_outstanding_tasks")
        for peak in self._gen_peak_outstanding:
            gen_hist.observe(peak)

    def attribution(self) -> dict:
        """Performance attribution for this finished run (schema-v2
        ``RunArtifact.attribution``): per-PE cycle accounting, what-if
        estimates, the critical path, and the utilization timeline.

        Requires ``trace=True`` — the decomposition walks the executed
        timeline's gaps (see :mod:`repro.obs.attribution`).
        """
        from repro.arch.trace import utilization_timeline
        from repro.obs.attribution import attribute_cycles, critical_path

        if self.trace is None:
            raise ValueError(
                "attribution needs the execution trace; construct the sim "
                "with trace=True"
            )
        accounting = attribute_cycles(
            self.trace, self._last_cycle, self.config.n_pes,
            self._sn_intervals, self.metrics,
        )
        path = critical_path(self.trace, self.plan,
                             order=self.config.order)
        return {
            "cycles": accounting.to_dict(),
            "critical_path": path.to_dict(),
            "utilization_timeline": [
                round(float(u), 4)
                for u in utilization_timeline(self.trace,
                                              self.config.n_pes)
            ],
        }

    def _report(self) -> SimReport:
        self._export_metrics(self.metrics)
        return SimReport.from_registry(
            self.metrics,
            config=self.config,
            matrix_name=self.matrix_name,
            kind=self.plan.kind,
            sn_intervals=list(self._sn_intervals),
        )


def simulate(
    matrix,
    kind: str = "cholesky",
    config: SpatulaConfig | None = None,
    ordering: str = "amd",
    matrix_name: str = "",
    symbolic=None,
    plan: FactorizationPlan | None = None,
    check_numerics: bool = False,
    metrics: MetricsRegistry | None = None,
) -> SimReport:
    """Convenience one-call simulation of factoring ``matrix`` on Spatula.

    Args:
        matrix: a :class:`repro.sparse.CSCMatrix` (ignored if ``plan`` is
            given).
        kind: "cholesky" or "lu".
        config: hardware configuration (paper config by default).
        ordering: fill-reducing ordering for the symbolic phase.
        matrix_name: label stamped into the report.
        symbolic: reuse an existing symbolic factorization.
        plan: reuse an existing tiled plan (fastest path for sweeps).
        check_numerics: execute every task's numeric kernel during the
            simulation and assert the computed factor reconstructs the
            matrix (slower; a deep end-to-end check of the scheduler).
        metrics: registry to collect component counters into (see
            :class:`SpatulaSim`).
    """
    from repro.symbolic.analyze import symbolic_factorize
    from repro.tasks.plan import build_plan

    config = config or SpatulaConfig.paper()
    if plan is None:
        if symbolic is None:
            symbolic = symbolic_factorize(matrix, kind=kind,
                                          ordering=ordering)
        plan = build_plan(symbolic, tile=config.tile,
                          supertile=config.supertile)
    executor = None
    if check_numerics:
        from repro.arch.functional import TileExecutor

        executor = TileExecutor(plan, matrix)
    report = SpatulaSim(plan, config, matrix_name=matrix_name,
                        executor=executor, metrics=metrics).run()
    if executor is not None:
        executor.verify()
    return report
