"""Systolic-array timing models (Section 4.3, Figure 12).

Each task type's latency on the 16x16 array, as the paper describes:

* ``dgemm``   — output-stationary dataflow: a column of A and a row of B
  enter per cycle, so n pairs of T-by-T tiles take n*T cycles; fill/drain
  is hidden by double buffering.
* ``dchol`` / ``dlu`` — Brent-Luk dataflow: latency-bound on a critical
  path of T inverse-square-root (resp. divide) operations through the
  corner ALU, plus pipeline drain.
* ``tsolve`` — Kung-Leiserson dataflow: the read-only input streams through
  while each row of the destination cycles through a row of ALUs; ~2T.
* ``gather_updates`` — pure addition: each input tile streams through at a
  row per cycle (T cycles per input tile).

The simulator treats these latencies as fixed per task (given its tile
parameters), exactly as the paper's simulator does (Section 6: "once
started, each task incurs a fixed latency that depends solely on tile size
parameters encoded in the task descriptor").
"""

from __future__ import annotations

from repro.arch.config import SpatulaConfig
from repro.tasks.task import Task, TaskType


def task_latency(task: Task, config: SpatulaConfig) -> int:
    """Execution cycles of a task on one PE's systolic array."""
    t = config.tile
    if task.ttype is TaskType.DGEMM:
        return max(1, task.n_pairs) * t
    if task.ttype is TaskType.TSOLVE:
        return 2 * t
    if task.ttype in (TaskType.DCHOL, TaskType.DLU):
        return t * config.divsqrt_latency + 2 * t
    if task.ttype is TaskType.GATHER:
        return max(1, len(task.inputs)) * t
    raise ValueError(f"unknown task type {task.ttype}")


def task_input_tiles(task: Task) -> list:
    """Distinct tiles a task must fetch (dest + unique inputs)."""
    seen = {task.dest}
    tiles = [task.dest]
    for ref in task.inputs:
        if ref not in seen:
            seen.add(ref)
            tiles.append(ref)
    return tiles
