"""Crossbar NoC model (Section 4.5).

Spatula connects 32 PEs to 32 cache banks with full (bit-sliced) crossbars
— practical at this scale per Passas et al., the model the paper uses.  A
full crossbar is non-blocking: any PE-to-bank pair can communicate as long
as neither endpoint's port is busy.  Contention therefore lives entirely at
the endpoints, which we model as busy-until reservations:

* each PE has one :class:`CrossbarPort` (32 doublewords/cycle = 256 B/cycle
  in the paper config) — owned by :class:`repro.arch.pe.PE`;
* each cache bank has a port of the same width — owned by
  :class:`repro.arch.cache.BankedCache` as the bank reservation.

Aggregate bandwidth at full activity is n_pes x 256 B/cycle = 8 TB/s,
matching the paper's sizing argument.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CrossbarPort:
    """One endpoint port of the crossbar (busy-until reservation).

    Tracks its own occupancy (``busy_cycles``) and head-of-line waiting
    (``stall_cycles`` — cycles a transfer sat behind an earlier one), the
    raw counters behind the ``noc.port.*`` metrics.
    """

    bytes_per_cycle: int
    free_at: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    n_transfers: int = 0

    def reserve(self, cycle: int, n_bytes: int) -> int:
        """Occupy the port for a transfer; returns the completion cycle."""
        cycles = max(1, -(-n_bytes // self.bytes_per_cycle))
        return self.reserve_cycles(cycle, cycles)

    def reserve_cycles(self, cycle: int, cycles: int) -> int:
        """Occupy the port for a known number of cycles."""
        start = max(cycle, self.free_at)
        self.stall_cycles += start - cycle
        self.busy_cycles += cycles
        self.n_transfers += 1
        self.free_at = start + cycles
        return self.free_at


def aggregate_bandwidth_tbs(n_ports: int, bytes_per_cycle: int,
                            freq_ghz: float) -> float:
    """Peak NoC bandwidth in TB/s when every port is active."""
    return n_ports * bytes_per_cycle * freq_ghz / 1e3
