"""Numeric execution of simulator tasks (functional-correctness checking).

The paper validates its simulator by checking functional correctness
against the baselines (Section 6).  This module gives the simulator the
same ability: a :class:`TileExecutor` holds real tile data and applies each
task's kernel when the simulator retires it, so a simulation run *computes
the factorization* — in whatever dynamic order the scheduler chose — and
the result can be compared against the functional multifrontal model.

Kernel semantics per task type (Table 1), including the subtle straddle
case where the last pivot tile-column contains both pivot and Schur
columns (position-based tiling, Figure 10):

* ``dgemm``  — D -= sum_k A_k @ B_k(^T), using only the *pivot* columns of
  each source block;
* ``dchol`` / ``dlu`` — partial factorization of the diagonal tile: factor
  its pivot columns and apply their update to the tile's trailing part;
* ``tsolve`` — solve the tile's pivot columns (rows for U panels) against
  the factored diagonal tile, then apply their rank-p update to the
  tile's trailing columns (rows);
* ``gather_updates`` — coordinate-translated accumulation of child update
  entries into the parent tile (extend-add at tile granularity).

For Cholesky only the lower triangle of the front is meaningful; the
executor writes/reads exactly the entries the algorithm defines and the
extractor compares only the factored columns.
"""

from __future__ import annotations

import numpy as np

from repro.numeric.dense import partial_cholesky, partial_lu
from repro.sparse.csc import CSCMatrix
from repro.symbolic.assembly import (
    initial_front_values,
    initial_front_values_lu,
)
from repro.tasks.plan import FactorizationPlan
from repro.tasks.task import Task, TaskType, TileRef


class TileExecutor:
    """Executes task kernels on real tile data during simulation.

    Args:
        plan: the tiled execution plan being simulated.
        matrix: the original (unpermuted; for LU, already statically
            row-pivoted) matrix to factor.
    """

    def __init__(self, plan: FactorizationPlan, matrix: CSCMatrix):
        self.plan = plan
        self.symmetric = plan.kind == "cholesky"
        self.permuted = matrix.permuted(plan.symbolic.perm)
        self._permuted_csr = (
            None if self.symmetric else self.permuted.transpose()
        )
        self.tile = plan.tile
        self._tiles: dict[TileRef, np.ndarray] = {}
        self.tasks_executed = 0

    # -- front lifecycle ------------------------------------------------------

    def init_front(self, sn_index: int) -> None:
        """Materialize a supernode's initial front from A's entries."""
        sn = self.plan.symbolic.tree.supernodes[sn_index]
        if self.symmetric:
            front = initial_front_values(self.permuted, sn)
        else:
            front = initial_front_values_lu(
                self.permuted, self._permuted_csr, sn
            )
        t = self.tile
        grid = self.plan.supernodes[sn_index].grid
        for bi in range(grid.n_blocks):
            r0, r1 = grid.block_rows(bi)
            for bj in range(grid.n_blocks):
                if self.symmetric and bj > bi:
                    continue
                c0, c1 = grid.block_rows(bj)
                block = np.zeros((t, t))
                block[: r1 - r0, : c1 - c0] = front[r0:r1, c0:c1]
                self._tiles[TileRef(sn_index, bi, bj)] = block

    def _dims(self, ref: TileRef) -> tuple[int, int]:
        grid = self.plan.supernodes[ref.sn].grid
        return grid.block_dim(ref.block_row), grid.block_dim(ref.block_col)

    def _pivots(self, sn: int, block: int) -> int:
        return self.plan.supernodes[sn].grid.pivots_in_block(block)

    # -- kernels ---------------------------------------------------------------

    def execute(self, task: Task) -> None:
        """Apply one task's kernel (call at task retirement)."""
        self.tasks_executed += 1
        if task.ttype is TaskType.DGEMM:
            self._exec_dgemm(task)
        elif task.ttype is TaskType.TSOLVE:
            self._exec_tsolve(task)
        elif task.ttype in (TaskType.DCHOL, TaskType.DLU):
            self._exec_diag(task)
        elif task.ttype is TaskType.GATHER:
            self._exec_gather(task)
        else:
            raise ValueError(f"unknown task type {task.ttype}")

    def _exec_dgemm(self, task: Task) -> None:
        dest = self._tiles[task.dest]
        di, dj = self._dims(task.dest)
        for pair in range(task.n_pairs):
            a_ref = task.inputs[2 * pair]
            b_ref = task.inputs[2 * pair + 1]
            piv = self._pivots(a_ref.sn, a_ref.block_col)
            if piv == 0:
                continue
            a = self._tiles[a_ref][:di, :piv]
            if self.symmetric:
                # B operand is the same block-column's tiles in row j:
                # D -= A @ B^T (outer-product update).
                b = self._tiles[b_ref][:dj, :piv]
                dest[:di, :dj] -= a @ b.T
            else:
                # LU: B is the U tile T[k][j]: D -= L_ik @ U_kj.
                b = self._tiles[b_ref][:piv, :dj]
                dest[:di, :dj] -= a @ b

    def _exec_diag(self, task: Task) -> None:
        dest = self._tiles[task.dest]
        d, _ = self._dims(task.dest)
        piv = self._pivots(task.dest.sn, task.dest.block_col)
        block = dest[:d, :d]
        if task.ttype is TaskType.DCHOL:
            partial_cholesky(block, piv)
        else:
            amax = max(1.0, float(np.abs(self.permuted.data).max()))
            partial_lu(block, piv,
                       perturb=np.sqrt(np.finfo(np.float64).eps) * amax)
        dest[:d, :d] = block

    def _exec_tsolve(self, task: Task) -> None:
        dest_ref = task.dest
        diag_ref = task.inputs[0]
        diag = self._tiles[diag_ref]
        dest = self._tiles[dest_ref]
        dpiv = self._pivots(diag_ref.sn, diag_ref.block_col)
        if self.symmetric or task.tag == "L":
            # Column panel: rows of the destination, solved against the
            # factored diagonal (L11 for Cholesky, U11 for LU — for
            # Cholesky L11 == U11^T so both solve against the lower part).
            di, dj = self._dims(dest_ref)
            if self.symmetric:
                tri = np.tril(diag[:dpiv, :dpiv])
                solved = np.linalg.solve(tri, dest[:di, :dpiv].T).T
            else:
                tri = np.triu(diag[:dpiv, :dpiv])
                solved = np.linalg.solve(tri.T, dest[:di, :dpiv].T).T
            dest[:di, :dpiv] = solved
            if dj > dpiv:
                # Straddle tile: apply the local rank-p update to the
                # tile's own Schur columns.
                if self.symmetric:
                    trailing = diag[dpiv:dj, :dpiv]
                    dest[:di, dpiv:dj] -= solved @ trailing.T
                else:
                    trailing = diag[:dpiv, dpiv:dj]
                    dest[:di, dpiv:dj] -= solved @ trailing
        else:
            # LU U panel: rows of the destination against unit-lower L11.
            di, dj = self._dims(dest_ref)
            lower = np.tril(diag[:dpiv, :dpiv], -1) + np.eye(dpiv)
            solved = np.linalg.solve(lower, dest[:dpiv, :dj])
            dest[:dpiv, :dj] = solved
            if di > dpiv:
                dest[dpiv:di, :dj] -= diag[dpiv:di, :dpiv] @ solved

    def _exec_gather(self, task: Task) -> None:
        parent_ref = task.dest
        parent_sn = self.plan.symbolic.tree.supernodes[parent_ref.sn]
        t = self.tile
        p_r0 = parent_ref.block_row * t
        p_c0 = parent_ref.block_col * t
        p_r1 = min(p_r0 + t, parent_sn.front_size)
        p_c1 = min(p_c0 + t, parent_sn.front_size)
        dest = self._tiles[parent_ref]
        tree = self.plan.symbolic.tree
        for child_ref in task.inputs:
            child_sn = tree.supernodes[child_ref.sn]
            child_map = tree.child_maps[child_ref.sn]
            n_piv = child_sn.n_cols
            front = child_sn.front_size
            # Child tile's update-region row/col position ranges.
            c_r0 = max(child_ref.block_row * t, n_piv)
            c_r1 = min(child_ref.block_row * t + t, front)
            c_c0 = max(child_ref.block_col * t, n_piv)
            c_c1 = min(child_ref.block_col * t + t, front)
            if c_r0 >= c_r1 or c_c0 >= c_c1:
                continue
            rows = np.arange(c_r0, c_r1)
            cols = np.arange(c_c0, c_c1)
            par_rows = child_map[rows - n_piv]
            par_cols = child_map[cols - n_piv]
            rsel = (par_rows >= p_r0) & (par_rows < p_r1)
            csel = (par_cols >= p_c0) & (par_cols < p_c1)
            if not rsel.any() or not csel.any():
                continue
            child_tile = self._tiles[child_ref]
            src = child_tile[
                rows[rsel] - child_ref.block_row * t, :
            ][:, cols[csel] - child_ref.block_col * t]
            if self.symmetric:
                # Only entries at or below the global diagonal are valid.
                gr = par_rows[rsel][:, None]
                gc = par_cols[csel][None, :]
                src = np.where(gr >= gc, src, 0.0)
            dest[np.ix_(par_rows[rsel] - p_r0,
                        par_cols[csel] - p_c0)] += src

    # -- extraction & verification ------------------------------------------------

    def extract_lower(self) -> CSCMatrix:
        """Reconstruct L (of the permuted matrix) from tile data."""
        from repro.sparse.coo import COOMatrix

        rows_all, cols_all, vals_all = [], [], []
        for sn in self.plan.symbolic.tree.supernodes:
            t = self.tile
            for local_col in range(sn.n_cols):
                col = sn.first_col + local_col
                bj = local_col // t
                for local_row in range(local_col, sn.front_size):
                    bi = local_row // t
                    ref = TileRef(sn.index, bi, bj)
                    val = self._tiles[ref][local_row - bi * t,
                                           local_col - bj * t]
                    if self.plan.kind == "lu" and local_row == local_col:
                        val = 1.0
                    rows_all.append(int(sn.rows[local_row]))
                    cols_all.append(col)
                    vals_all.append(float(val))
        n = self.plan.symbolic.n
        return CSCMatrix.from_coo(
            COOMatrix(n, n, rows_all, cols_all, vals_all)
        )

    def extract_upper(self) -> CSCMatrix:
        """Reconstruct U (LU only) from tile data."""
        if self.symmetric:
            raise ValueError("extract_upper is for LU factorizations")
        from repro.sparse.coo import COOMatrix

        rows_all, cols_all, vals_all = [], [], []
        for sn in self.plan.symbolic.tree.supernodes:
            t = self.tile
            for local_row in range(sn.n_cols):
                row = sn.first_col + local_row
                bi = local_row // t
                for local_col in range(local_row, sn.front_size):
                    bj = local_col // t
                    ref = TileRef(sn.index, bi, bj)
                    val = self._tiles[ref][local_row - bi * t,
                                           local_col - bj * t]
                    rows_all.append(row)
                    cols_all.append(int(sn.rows[local_col]))
                    vals_all.append(float(val))
        n = self.plan.symbolic.n
        return CSCMatrix.from_coo(
            COOMatrix(n, n, rows_all, cols_all, vals_all)
        )

    def verify(self, atol: float = 1e-8) -> float:
        """Check the computed factor reconstructs the permuted matrix.

        Returns the max absolute reconstruction error; raises
        AssertionError if it exceeds ``atol``.
        """
        want = self.permuted.to_dense()
        if self.symmetric:
            lower = self.extract_lower().to_dense()
            err = float(np.abs(lower @ lower.T - want).max())
        else:
            lower = self.extract_lower().to_dense()
            upper = self.extract_upper().to_dense()
            err = float(np.abs(lower @ upper - want).max())
        if err > atol:
            raise AssertionError(
                f"simulated factorization is numerically wrong: "
                f"max error {err:.3e} > {atol:.1e}"
            )
        return err
