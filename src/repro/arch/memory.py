"""HBM2E main-memory channel model (Sections 4.5 and 6).

Each cache bank issues accesses to a single HBM channel; because a cache
line is 2 KB (the DRAM row-buffer size), transfers achieve high utilization
and are modeled as fixed-occupancy channel reservations plus access latency.

Traffic is tracked per Figure 17 category:

* ``comp_load``       — compulsory loads of the input matrix A;
* ``gather_load``     — non-compulsory re-loads issued by gather tasks;
* ``factor_load``     — non-compulsory re-loads by other task types;
* ``store_spill``     — write-backs of evicted intermediate tiles;
* ``store_result``    — write-backs of final factor tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import SpatulaConfig

TRAFFIC_KINDS = (
    "comp_load", "gather_load", "factor_load", "store_spill", "store_result",
)


@dataclass
class HBMModel:
    """Busy-until reservation model of the HBM channels."""

    config: SpatulaConfig
    channel_free: list[int] = field(default_factory=list)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_channel: list[int] = field(default_factory=list)
    channel_wait_cycles: int = 0

    def __post_init__(self) -> None:
        self.channel_free = [0] * self.config.hbm_channels
        self.bytes_by_kind = {k: 0 for k in TRAFFIC_KINDS}
        self.bytes_by_channel = [0] * self.config.hbm_channels

    def read_line(self, channel: int, cycle: int, kind: str) -> int:
        """Issue a line read; returns the cycle data is available."""
        occupancy = self.config.hbm_line_cycles
        start = max(cycle, self.channel_free[channel])
        done = start + self.config.hbm_latency + occupancy
        self.channel_free[channel] = start + occupancy
        self.channel_wait_cycles += start - cycle
        self.bytes_by_kind[kind] += self.config.tile_bytes
        self.bytes_by_channel[channel] += self.config.tile_bytes
        return done

    def write_line(self, channel: int, cycle: int, kind: str) -> int:
        """Issue a line write-back; returns when the channel accepts it."""
        occupancy = self.config.hbm_line_cycles
        start = max(cycle, self.channel_free[channel])
        self.channel_free[channel] = start + occupancy
        self.channel_wait_cycles += start - cycle
        self.bytes_by_kind[kind] += self.config.tile_bytes
        self.bytes_by_channel[channel] += self.config.tile_bytes
        return start + occupancy

    def read_bulk(self, n_bytes: int, cycle: int, kind: str) -> int:
        """Stream a bulk read (the compulsory A-matrix input) across all
        channels; returns the completion cycle."""
        if n_bytes <= 0:
            return cycle
        n_channels = self.config.hbm_channels
        per_chan = n_bytes / n_channels
        cycles = per_chan / self.config.hbm_bytes_per_cycle_per_channel
        done = cycle
        for c in range(n_channels):
            start = max(cycle, self.channel_free[c])
            self.channel_free[c] = start + int(cycles) + 1
            done = max(done, self.channel_free[c])
            self.bytes_by_channel[c] += n_bytes // n_channels
        self.bytes_by_kind[kind] += n_bytes
        return done

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    def export_metrics(self, registry, prefix: str = "hbm") -> None:
        """Fold the traffic counters into a metrics registry
        (``hbm.bytes.<kind>``, ``hbm.chan<i>.bytes``)."""
        for kind, n in self.bytes_by_kind.items():
            registry.counter(f"{prefix}.bytes.{kind}").inc(n)
        registry.counter(f"{prefix}.bytes.total").inc(self.total_bytes)
        registry.counter(f"{prefix}.channel_wait_cycles").inc(
            self.channel_wait_cycles
        )
        for c, n in enumerate(self.bytes_by_channel):
            registry.counter(f"{prefix}.chan{c}.bytes").inc(n)

    def drain_cycle(self) -> int:
        """Cycle by which all outstanding channel work completes."""
        return max(self.channel_free) if self.channel_free else 0
