"""Processing-element model (Section 4.3, Figure 12).

Each PE owns a double-buffered systolic array, ``task_slots`` task slots
that decouple operand fetch from execution, and one crossbar port.  The
lifecycle of a task on a PE:

1. *dispatch*: the task occupies a slot; operand loads for the destination
   tile and all input tiles are issued immediately (ahead of use);
2. *runnable*: when the leading operands have arrived (destination tile
   plus the first input pair — the rest stream through the input FIFO
   during execution);
3. *execute*: when the array is free, the runnable task with the earliest
   operand-arrival time starts; execution takes the systolic latency, but
   cannot retire before the full input stream has crossed the PE port;
4. *write-back*: the destination tile is written to the cache; the slot
   frees and dependents may be released.

The PE stalls (tracked per Figure 16) whenever its array is idle because
no slot holds a runnable task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.noc import CrossbarPort
from repro.tasks.task import TaskType


@dataclass
class PendingTask:
    """A task resident in a PE slot, waiting for operands or the array."""

    gen_sn: int
    task_index: int
    op_ready: int
    stream_done: int
    latency: int
    # Cycle the dispatcher placed the task in this slot.  Cycle accounting
    # (repro.obs.attribution) splits a PE's idle gap at this boundary:
    # idle before dispatch is dependency/scheduler wait, idle between
    # dispatch and op_ready is exposed operand (memory-system) wait.
    dispatched_at: int = 0


@dataclass
class PE:
    """Timing state of one processing element."""

    index: int
    n_slots: int
    array_free: int = 0
    # Crossbar endpoint ports (see repro.arch.noc): read (consume)
    # direction and write-back direction — the ports are full duplex.
    port: CrossbarPort = field(default_factory=lambda: CrossbarPort(0))
    wport: CrossbarPort = field(default_factory=lambda: CrossbarPort(0))
    pending: list[PendingTask] = field(default_factory=list)
    busy_by_type: dict[TaskType, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.busy_by_type = {t: 0 for t in TaskType}

    @property
    def slots_free(self) -> int:
        return self.n_slots - len(self.pending)

    @property
    def port_free(self) -> int:
        return self.port.free_at

    @property
    def wport_free(self) -> int:
        return self.wport.free_at

    def reserve_port(self, cycle: int, transfer_cycles: int) -> int:
        """Occupy the PE's read port for one tile; returns finish."""
        return self.port.reserve_cycles(cycle, transfer_cycles)

    def reserve_write_port(self, cycle: int, transfer_cycles: int) -> int:
        """Occupy the PE's write-back port for one tile; returns finish.

        The crossbar ports are full duplex: the read direction is sized for
        the systolic consume rate (32 doublewords/cycle) and write-backs
        use the opposite direction, so they do not steal load bandwidth."""
        return self.wport.reserve_cycles(cycle, transfer_cycles)

    def add_pending(self, item: PendingTask) -> None:
        if self.slots_free <= 0:
            raise AssertionError(f"PE {self.index} has no free slot")
        self.pending.append(item)

    def pick_runnable(self, now: int) -> PendingTask | None:
        """The runnable pending task with the earliest operand arrival."""
        best: PendingTask | None = None
        for item in self.pending:
            if item.op_ready <= now and (
                best is None or item.op_ready < best.op_ready
            ):
                best = item
        return best

    def next_wakeup(self) -> int | None:
        """Earliest future cycle at which a pending task may become
        runnable (None if no tasks are pending)."""
        if not self.pending:
            return None
        return min(item.op_ready for item in self.pending)

    def start_execution(self, item: PendingTask, now: int,
                        ttype: TaskType) -> int:
        """Begin executing; returns the retire cycle."""
        if now < self.array_free:
            raise AssertionError("array is busy")
        end = max(now + item.latency, item.stream_done)
        self.array_free = end
        self.busy_by_type[ttype] += end - now
        self.pending.remove(item)
        return end

    @property
    def busy_total(self) -> int:
        return sum(self.busy_by_type.values())
