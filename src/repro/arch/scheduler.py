"""Supernode-level scheduling (Sections 4.4 and 5.2).

The supernode scheduler (the RISC-V control core in hardware) maintains a
min-heap of *ready* supernodes keyed by their postorder position.  A
supernode becomes ready when all of its children have been fully factored.
Whenever a generator frees up, the scheduler yields the ready supernode
with the smallest postorder key — the dynamic reordering that unlocks
inter-supernode parallelism while staying close to the footprint-minimal
post-order traversal.

The three policies of Figure 14 differ only in how many supernodes may be
in flight and where their tasks may go:

* ``intra+inter`` (default): up to ``n_generators`` concurrent supernodes,
  tasks go to any PE, dispatcher biased toward older supernodes;
* ``intra``: one supernode at a time across all PEs;
* ``inter``: one supernode *per PE* — each active supernode is bound to a
  single PE (the coarse-grained baseline).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.arch.config import SpatulaConfig
from repro.symbolic.assembly import AssemblyTree


@dataclass
class SupernodeScheduler:
    """Readiness tracking + min-heap ordering of supernodes."""

    tree: AssemblyTree
    config: SpatulaConfig
    _children_left: list[int] = field(default_factory=list)
    _ready: list[int] = field(default_factory=list)
    _ready_fifo: deque = field(default_factory=deque)
    n_launched: int = 0
    n_completed: int = 0
    # Ready-queue depth observed at each pop (the raw samples behind the
    # scheduler.queue_depth histogram metric).
    queue_depth_samples: list[int] = field(default_factory=list)
    max_queue_depth: int = 0

    def __post_init__(self) -> None:
        self._children_left = [
            len(sn.children) for sn in self.tree.supernodes
        ]
        leaves = [
            sn.index for sn in self.tree.supernodes if not sn.children
        ]
        if self.config.sn_order == "fifo":
            self._ready_fifo = deque(leaves)
        else:
            self._ready = leaves
            heapq.heapify(self._ready)

    @property
    def max_in_flight(self) -> int:
        if self.config.policy == "intra":
            return 1
        if self.config.policy == "inter":
            return self.config.n_pes
        return self.config.n_generators

    def has_ready(self) -> bool:
        return bool(self._ready) or bool(self._ready_fifo)

    def pop_ready(self) -> int:
        """Yield the next supernode: smallest postorder key (default), or
        arrival order under the "fifo" ablation."""
        self.n_launched += 1
        depth = len(self._ready_fifo) if self.config.sn_order == "fifo" \
            else len(self._ready)
        self.queue_depth_samples.append(depth)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self.config.sn_order == "fifo":
            return self._ready_fifo.popleft()
        return heapq.heappop(self._ready)

    def complete(self, sn_index: int) -> int | None:
        """Mark a supernode factored; returns a parent that became ready."""
        self.n_completed += 1
        parent = self.tree.supernodes[sn_index].parent
        if parent < 0:
            return None
        self._children_left[parent] -= 1
        if self._children_left[parent] == 0:
            if self.config.sn_order == "fifo":
                self._ready_fifo.append(parent)
            else:
                heapq.heappush(self._ready, parent)
            return parent
        return None

    @property
    def all_done(self) -> bool:
        return self.n_completed == self.tree.n_supernodes

    def export_metrics(self, registry, prefix: str = "scheduler") -> None:
        """Fold scheduling counters into a metrics registry."""
        registry.counter(f"{prefix}.launched").inc(self.n_launched)
        registry.counter(f"{prefix}.completed").inc(self.n_completed)
        registry.gauge(f"{prefix}.max_queue_depth").set(
            self.max_queue_depth
        )
        hist = registry.histogram(f"{prefix}.queue_depth")
        for depth in self.queue_depth_samples:
            hist.observe(depth)
