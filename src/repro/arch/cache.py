"""Banked LRU tile cache (Section 4.5).

Lines are tile-sized (2 KB), so one cache line holds exactly one T-by-T
tile.  Banks are interleaved by tile address; each bank is set-associative
with true LRU, write-allocate, write-back.  Lookups model the serial
tag-then-data access (a fixed hit latency) plus bank-port occupancy, and
misses go to the bank's HBM channel.

The cache understands three access flavours:

* ``load``     — read a tile that has been written before (may miss to DRAM);
* ``allocate`` — first-ever touch of a tile: the line is installed
  zero-filled with no DRAM read (fronts are created on-chip; their initial
  A-values are accounted separately as bulk compulsory traffic);
* ``store``    — a PE write-back of a destination tile (write-allocate).

Evictions of dirty lines generate DRAM write traffic classified as spill or
result depending on whether the tile holds final factor output.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

from repro.arch.config import SpatulaConfig
from repro.arch.memory import HBMModel


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    allocations: int = 0
    stores: int = 0
    dirty_evictions: int = 0
    bytes_accessed: int = 0
    mshr_stall_cycles: int = 0
    bank_wait_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.allocations + self.stores

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 1.0

    def export_metrics(self, registry, prefix: str = "cache") -> None:
        """Fold the counters into a metrics registry (``cache.hits``,
        ``cache.misses``, ...)."""
        for name in ("hits", "misses", "allocations", "stores",
                     "dirty_evictions", "bytes_accessed",
                     "mshr_stall_cycles", "bank_wait_cycles"):
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)


class BankedCache:
    """The banked LRU cache plus its DRAM backside."""

    def __init__(self, config: SpatulaConfig, hbm: HBMModel):
        self.config = config
        self.hbm = hbm
        self.n_banks = config.cache_banks
        self.n_sets = config.cache_sets_per_bank
        self.ways = config.cache_ways
        # sets[bank][set] maps address -> dirty flag, in LRU order
        # (oldest first).
        self._sets: list[list[OrderedDict[int, bool]]] = [
            [OrderedDict() for _ in range(self.n_sets)]
            for _ in range(self.n_banks)
        ]
        self._bank_free = [0] * self.n_banks      # read port per bank
        self._bank_wfree = [0] * self.n_banks     # write port per bank
        self._seen: set[int] = set()
        # Outstanding-miss (MSHR) tracking: fill-completion times of
        # in-flight misses, capped at config.max_outstanding_misses.
        self._inflight: list[int] = []
        self.stats = CacheStats()
        # Callback deciding traffic class of an evicted dirty tile:
        # address -> "store_spill" | "store_result".  Installed by the sim.
        self.classify_store = lambda addr: "store_spill"

    # -- address mapping -----------------------------------------------------

    def bank_of(self, addr: int) -> int:
        return addr % self.n_banks

    def set_of(self, addr: int) -> int:
        return (addr // self.n_banks) % self.n_sets

    def channel_of(self, addr: int) -> int:
        return self.bank_of(addr) % self.config.hbm_channels

    # -- internals ------------------------------------------------------------

    def _reserve_bank(self, bank: int, cycle: int) -> int:
        start = max(cycle, self._bank_free[bank])
        self.stats.bank_wait_cycles += start - cycle
        self._bank_free[bank] = start + self.config.bank_transfer_cycles
        return start

    def _reserve_bank_write(self, bank: int, cycle: int) -> int:
        start = max(cycle, self._bank_wfree[bank])
        self.stats.bank_wait_cycles += start - cycle
        self._bank_wfree[bank] = start + self.config.bank_transfer_cycles
        return start

    def _touch(self, bank: int, set_idx: int, addr: int,
               dirty: bool | None) -> None:
        lines = self._sets[bank][set_idx]
        was_dirty = lines.pop(addr, False)
        lines[addr] = was_dirty if dirty is None else (dirty or was_dirty)

    def _install(self, bank: int, set_idx: int, addr: int, dirty: bool,
                 cycle: int) -> None:
        lines = self._sets[bank][set_idx]
        if len(lines) >= self.ways:
            victim, victim_dirty = next(iter(lines.items()))
            del lines[victim]
            if victim_dirty:
                kind = self.classify_store(victim)
                self.hbm.write_line(self.channel_of(victim), cycle, kind)
                self.stats.dirty_evictions += 1
        lines[addr] = dirty

    # -- public accesses -------------------------------------------------------

    def load(self, addr: int, cycle: int, miss_kind: str) -> int:
        """Read a tile; returns the cycle its data leaves the bank."""
        bank = self.bank_of(addr)
        set_idx = self.set_of(addr)
        lines = self._sets[bank][set_idx]
        start = self._reserve_bank(bank, cycle)
        self.stats.bytes_accessed += self.config.tile_bytes
        if addr in lines:
            self.stats.hits += 1
            self._touch(bank, set_idx, addr, None)
            return start + self.config.cache_hit_latency \
                + self.config.bank_transfer_cycles
        if addr not in self._seen:
            # First touch: allocate zero-filled, no DRAM read.
            self._seen.add(addr)
            self.stats.allocations += 1
            self._install(bank, set_idx, addr, dirty=False, cycle=start)
            return start + self.config.cache_hit_latency \
                + self.config.bank_transfer_cycles
        # Genuine miss: fetch from the bank's HBM channel, subject to
        # MSHR availability (up to 256 concurrent misses, Table 2).
        self.stats.misses += 1
        tag_done = start + self.config.cache_hit_latency
        while self._inflight and self._inflight[0] <= tag_done:
            heapq.heappop(self._inflight)
        if len(self._inflight) >= self.config.max_outstanding_misses:
            wait_until = heapq.heappop(self._inflight)
            self.stats.mshr_stall_cycles += max(0, wait_until - tag_done)
            tag_done = max(tag_done, wait_until)
        fill = self.hbm.read_line(self.channel_of(addr), tag_done, miss_kind)
        heapq.heappush(self._inflight, fill)
        self._install(bank, set_idx, addr, dirty=False, cycle=fill)
        return fill + self.config.bank_transfer_cycles

    def store(self, addr: int, cycle: int) -> int:
        """Write a tile back from a PE (write-allocate, write-back)."""
        bank = self.bank_of(addr)
        set_idx = self.set_of(addr)
        lines = self._sets[bank][set_idx]
        start = self._reserve_bank_write(bank, cycle)
        self.stats.stores += 1
        self.stats.bytes_accessed += self.config.tile_bytes
        self._seen.add(addr)
        if addr in lines:
            self._touch(bank, set_idx, addr, dirty=True)
        else:
            self._install(bank, set_idx, addr, dirty=True, cycle=start)
        return start + self.config.bank_transfer_cycles

    # -- end-of-run flush ------------------------------------------------------

    def flush_results(self, cycle: int, is_result) -> int:
        """Write back dirty *result* tiles at the end of the run.

        Dead intermediates (consumed update tiles) are dropped without
        traffic — the scheduler knows they will never be read again.
        Returns the drain-completion cycle.
        """
        done = cycle
        for bank in range(self.n_banks):
            for set_idx in range(self.n_sets):
                for addr, dirty in self._sets[bank][set_idx].items():
                    if dirty and is_result(addr):
                        done = max(
                            done,
                            self.hbm.write_line(
                                self.channel_of(addr), cycle, "store_result"
                            ),
                        )
        return done
