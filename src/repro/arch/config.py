"""Spatula hardware configuration (Table 2).

``SpatulaConfig.paper()`` is the evaluated configuration: 32 PEs with 16x16
systolic arrays at 1 GHz, a 16 MB 32-bank 16-way LRU cache with 2 KB
(tile-sized) lines, crossbar NoC, and 2 HBM2E PHYs (1 TB/s).  Smaller
configurations are provided for fast tests, and every knob is sweepable for
the design-space exploration of Figure 20.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SpatulaConfig:
    """All architectural parameters of a Spatula instance.

    Attributes mirror Table 2; timing constants derive from the synthesis
    targets the paper reports (1 GHz, serial tag/data cache banks, HBM2E
    channel structure).
    """

    # Compute.
    n_pes: int = 32
    tile: int = 16                  # T: systolic array edge / tile edge
    task_slots: int = 4             # per-PE decoupling slots
    divsqrt_latency: int = 12       # cycles per inverse-sqrt/divide stage
    freq_ghz: float = 1.0

    # Scheduler.
    n_generators: int = 16
    dispatch_interval: int = 1      # min cycles between task dispatches
    # (the paper quotes one task per 3-20 cycles as the *demand* each
    # generator must sustain; the dispatcher itself issues one per cycle)
    activation_interval: int = 20   # min cycles between supernode launches
    supertile: int = 70             # S: tiles per supertile edge
    policy: str = "intra+inter"     # "intra+inter" | "intra" | "inter"
    sn_order: str = "postorder"     # ready-supernode priority:
    # "postorder" (min-heap by postorder key, Section 5.2) or "fifo"
    # (arrival order — the ablation showing why the min-heap matters)
    order: str = "bf"               # generator emission order ("bf"/"rowmajor")
    dataflow_window: int = 1        # >1 enables out-of-order dispatch ablation

    # Cache.
    cache_mb: float = 16.0
    cache_banks: int = 32
    cache_ways: int = 16
    cache_hit_latency: int = 4      # serial tag + data access
    bank_port_bytes_per_cycle: int = 256
    max_outstanding_misses: int = 256   # MSHR capacity (Table 2)

    # NoC (full crossbar; per-PE port bandwidth).
    pe_port_bytes_per_cycle: int = 256   # 32 doublewords/cycle

    # Main memory (HBM2E).
    hbm_phys: int = 2
    hbm_gbs_per_phy: float = 512.0  # GB/s per PHY
    hbm_channels_per_phy: int = 8
    hbm_latency: int = 30           # cycles of DRAM access latency

    def __post_init__(self) -> None:
        if self.n_pes < 1 or self.tile < 2 or self.task_slots < 1:
            raise ValueError("invalid PE configuration")
        if self.policy not in ("intra+inter", "intra", "inter"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.sn_order not in ("postorder", "fifo"):
            raise ValueError(f"unknown sn_order {self.sn_order!r}")

    # -- derived quantities --------------------------------------------------

    @property
    def tile_bytes(self) -> int:
        """Bytes of one tile == one cache line (2 KB at T=16)."""
        return self.tile * self.tile * 8

    @property
    def peak_flops_per_cycle(self) -> int:
        """2 FLOPs per FMAC per cycle across all PEs."""
        return self.n_pes * self.tile * self.tile * 2

    @property
    def peak_tflops(self) -> float:
        """Peak throughput in TFLOP/s (16.384 for the paper config)."""
        return self.peak_flops_per_cycle * self.freq_ghz / 1e3

    @property
    def hbm_channels(self) -> int:
        return self.hbm_phys * self.hbm_channels_per_phy

    @property
    def hbm_bytes_per_cycle_per_channel(self) -> float:
        total = self.hbm_phys * self.hbm_gbs_per_phy  # GB/s
        per_chan = total / self.hbm_channels
        return per_chan / self.freq_ghz  # bytes per cycle

    @property
    def cache_lines(self) -> int:
        return int(self.cache_mb * 2 ** 20 // self.tile_bytes)

    @property
    def cache_sets_per_bank(self) -> int:
        lines_per_bank = max(self.cache_ways,
                             self.cache_lines // self.cache_banks)
        return max(1, lines_per_bank // self.cache_ways)

    @property
    def tile_transfer_cycles(self) -> int:
        """Cycles to move one tile over a PE port."""
        return max(1, self.tile_bytes // self.pe_port_bytes_per_cycle)

    @property
    def bank_transfer_cycles(self) -> int:
        """Cycles a bank port is occupied per line access."""
        return max(1, self.tile_bytes // self.bank_port_bytes_per_cycle)

    @property
    def hbm_line_cycles(self) -> int:
        """Cycles an HBM channel is occupied per line transfer."""
        return max(
            1, round(self.tile_bytes / self.hbm_bytes_per_cycle_per_channel)
        )

    # -- named configurations ------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "SpatulaConfig":
        """The Table 2 configuration (16.384 TFLOP/s peak)."""
        return replace(cls(), **overrides) if overrides else cls()

    @classmethod
    def small(cls, **overrides) -> "SpatulaConfig":
        """A scaled-down instance for fast tests (8 PEs, 8x8 tiles, 2 MB)."""
        base = cls(
            n_pes=8, tile=8, n_generators=8, cache_mb=2.0, cache_banks=8,
            hbm_phys=1, supertile=16,
            pe_port_bytes_per_cycle=64, bank_port_bytes_per_cycle=64,
        )
        return replace(base, **overrides) if overrides else base

    @classmethod
    def tiny(cls, **overrides) -> "SpatulaConfig":
        """A minimal instance for unit tests (2 PEs, 4x4 tiles)."""
        base = cls(
            n_pes=2, tile=4, task_slots=2, n_generators=2, cache_mb=0.125,
            cache_banks=2, cache_ways=4, hbm_phys=1,
            hbm_channels_per_phy=2, supertile=4,
            pe_port_bytes_per_cycle=16, bank_port_bytes_per_cycle=16,
            dispatch_interval=1, activation_interval=2,
        )
        return replace(base, **overrides) if overrides else base
