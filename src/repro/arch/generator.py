"""Generator units: per-supernode task production (Section 4.4, Figure 15).

A generator is configured with one supernode and emits that supernode's
tasks in a fixed order (the breadth-first loop nest of Section 5.1).  Its
*completion scoreboard* tracks which inputs are available; a task is
released to the dispatcher only when all its inputs have been computed.

The hardware scoreboard encodes "last available column tile per row tile"
in ~500 bits; this model tracks the same information exactly as per-task
indegree counters over the materialized task graph, which is equivalent
because emission order is topological (children of a dependence edge are
always emitted first — validated by
:meth:`repro.tasks.graph.SupernodeTaskGraph.validate_topological`).

Dispatch is in-order (``dataflow_window == 1``): out-of-order *completion*
is allowed, out-of-order *dispatch* is not — except in the Section 5.1
ablation, where a window of up to ``dataflow_window`` pending tasks may
dispatch out of order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tasks.graph import SupernodeTaskGraph


@dataclass
class Generator:
    """One active supernode's task stream."""

    sn: int
    graph: SupernodeTaskGraph
    window: int = 1
    head: int = 0
    n_done: int = 0
    n_dispatched: int = 0
    peak_outstanding: int = 0   # max tasks dispatched but not yet complete
    indegree: list[int] = field(default_factory=list)
    dependents: list[list[int]] = field(default_factory=list)
    dispatched: list[bool] = field(default_factory=list)
    pe_binding: int = -1  # for the "inter" policy: tasks go only here

    def __post_init__(self) -> None:
        n = self.graph.n_tasks
        self.indegree = [len(d) for d in self.graph.deps]
        self.dependents = [[] for _ in range(n)]
        for t, deps in enumerate(self.graph.deps):
            for d in deps:
                self.dependents[d].append(t)
        self.dispatched = [False] * n

    @property
    def n_tasks(self) -> int:
        return self.graph.n_tasks

    @property
    def done(self) -> bool:
        return self.n_done == self.graph.n_tasks

    def ready_tasks(self) -> list[int]:
        """Dispatchable task indices under the in-order / windowed rule."""
        self._advance_head()
        ready: list[int] = []
        scanned = 0
        t = self.head
        n = self.graph.n_tasks
        while t < n and scanned < self.window:
            if not self.dispatched[t]:
                scanned += 1
                if self.indegree[t] == 0:
                    ready.append(t)
                elif self.window == 1:
                    break  # strict in-order: blocked head blocks the stream
            t += 1
        return ready

    def _advance_head(self) -> None:
        n = self.graph.n_tasks
        while self.head < n and self.dispatched[self.head]:
            self.head += 1

    def mark_dispatched(self, t: int) -> None:
        if self.dispatched[t]:
            raise AssertionError(f"task {t} dispatched twice")
        if self.indegree[t] != 0:
            raise AssertionError(
                f"task {t} dispatched with unresolved dependences"
            )
        self.dispatched[t] = True
        self.n_dispatched += 1
        outstanding = self.n_dispatched - self.n_done
        if outstanding > self.peak_outstanding:
            self.peak_outstanding = outstanding
        self._advance_head()

    def on_complete(self, t: int) -> None:
        self.n_done += 1
        for d in self.dependents[t]:
            self.indegree[d] -= 1
            if self.indegree[d] < 0:
                raise AssertionError("dependence counter underflow")
