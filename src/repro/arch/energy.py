"""Area and power models (Table 2, Figure 18, Figure 20).

The paper gets area and power from RTL synthesis at 12/14 nm plus prior
work for the HBM PHYs.  We reproduce the same breakdown with per-component
constants calibrated to the published totals:

* Table 2 area: 32 PEs = 43.5 mm^2, scheduler = 0.05, 16 MB cache = 17.6,
  NoC = 16.7, 2 HBM PHYs = 29.8 -> 107.7 mm^2 total;
* Figure 18 power: 146 W average at gmean 10.7 TFLOP/s, with PEs taking
  more than half on almost all matrices.

Energy constants are per-operation (pJ/FLOP, pJ/byte) and are combined
with simulated activity factors exactly as the paper does.
"""

from __future__ import annotations


from repro.arch.config import SpatulaConfig
from repro.arch.stats import SimReport

# -- area constants (mm^2, 12/14 nm), calibrated to Table 2 -------------------

_PE_AREA_16 = 43.5 / 32          # one 16x16 double-buffered systolic PE
_SCHEDULER_AREA = 0.05           # 16 generators + RISC-V control core
_CACHE_AREA_PER_MB = 17.6 / 16.0
_NOC_AREA_32x32 = 16.7           # 5 bit-sliced 32x32 crossbars (4 TB/s)
_HBM_PHY_AREA = 29.8 / 2         # one HBM2E PHY


def area_breakdown(config: SpatulaConfig) -> dict[str, float]:
    """Component areas in mm^2 for a configuration (Table 2 layout).

    PE area scales with the square of tile size (FMAC count); NoC area
    scales with port count on each side (PEs x banks) relative to the
    32x32 reference, following the bit-sliced crossbar model of Passas
    et al. that the paper uses.
    """
    pe_scale = (config.tile / 16.0) ** 2
    noc_scale = (config.n_pes / 32.0) * (config.cache_banks / 32.0)
    areas = {
        "PEs": config.n_pes * _PE_AREA_16 * pe_scale,
        "Scheduler": _SCHEDULER_AREA,
        "Cache": config.cache_mb * _CACHE_AREA_PER_MB,
        "NoC": _NOC_AREA_32x32 * noc_scale,
        "HBM PHYs": config.hbm_phys * _HBM_PHY_AREA,
    }
    areas["Total"] = sum(areas.values())
    return areas


# -- energy constants (picojoules), calibrated to Figure 18 -------------------

_PJ_PER_FLOP = 7.0          # FMA datapath + registers, 12 nm
_PJ_PER_CACHE_BYTE = 4.0    # bank access (serial tag + data), per byte
_PJ_PER_NOC_BYTE = 2.0      # crossbar traversal, per byte
_PJ_PER_DRAM_BYTE = 50.0    # HBM2E access energy, per byte
_STATIC_W_PER_MM2 = 0.12    # leakage + clock distribution


def power_breakdown(report: SimReport) -> dict[str, float]:
    """Average power in watts by component for one simulation.

    Dynamic energy = activity x per-op constants; static power scales with
    component area.  Matches Figure 18's grouping (PEs / Cache / NoC / HBM).
    """
    seconds = report.seconds
    if seconds <= 0:
        return {"PEs": 0.0, "Cache": 0.0, "NoC": 0.0, "HBM": 0.0,
                "Total": 0.0}
    areas = area_breakdown(report.config)
    cache_bytes = (
        report.cache_hits + report.cache_misses + report.cache_allocations
    ) * report.config.tile_bytes
    # Every cache access crosses the NoC once; DRAM fills cross it again.
    noc_bytes = cache_bytes + report.total_dram_bytes

    def watts(pj: float) -> float:
        return pj * 1e-12 / seconds

    power = {
        "PEs": watts(_PJ_PER_FLOP * report.machine_flops)
        + _STATIC_W_PER_MM2 * areas["PEs"],
        "Cache": watts(_PJ_PER_CACHE_BYTE * cache_bytes)
        + _STATIC_W_PER_MM2 * areas["Cache"],
        "NoC": watts(_PJ_PER_NOC_BYTE * noc_bytes)
        + _STATIC_W_PER_MM2 * areas["NoC"],
        "HBM": watts(_PJ_PER_DRAM_BYTE * report.total_dram_bytes)
        + _STATIC_W_PER_MM2 * areas["HBM PHYs"],
    }
    power["Total"] = sum(power.values())
    return power
