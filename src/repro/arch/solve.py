"""Triangular-solve phase on Spatula (the "fast" box of Figure 2).

The paper evaluates numeric factorization because it dominates end-to-end
time; the solve phase that follows is two supernodal panel sweeps (forward
L y = b in postorder, backward L^T x = y / U x = y in reverse).  This
module models that phase on the same hardware so the library can quantify
the full Figure 2 story — how many solves a factorization amortizes over.

The model reflects what a supernodal solve actually is on this machine:

* each supernode is one *panel task*: stream the supernode's factor tiles
  from cache/HBM through a PE while the systolic array applies one
  triangular solve per diagonal tile and one GEMV per off-diagonal tile
  (arithmetic intensity is O(1) — the sweep is bandwidth-bound, which is
  why the paper calls solves "fast" relative to the O(n^3)-flavored
  factorization);
* tree dependences serialize ancestors: children before parents on the
  forward sweep, parents before children on the backward sweep;
* independent subtrees run on different PEs.

Factor tiles are assumed cold in DRAM at the start of each sweep (the
factorization wrote them back; a solve typically happens much later in
the application loop), so each sweep reads nnz(L)-proportional bytes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.arch.cache import BankedCache
from repro.arch.config import SpatulaConfig
from repro.arch.memory import HBMModel
from repro.obs import span
from repro.tasks.plan import FactorizationPlan


@dataclass
class SolveReport:
    """Modeled timing of one triangular-solve pass (both sweeps)."""

    config: SpatulaConfig
    forward_cycles: int
    backward_cycles: int
    dram_bytes: int
    n_supernodes: int

    @property
    def cycles(self) -> int:
        return self.forward_cycles + self.backward_cycles

    @property
    def seconds(self) -> float:
        return self.cycles / (self.config.freq_ghz * 1e9)

    @property
    def avg_bandwidth_gbs(self) -> float:
        return self.dram_bytes / self.seconds / 1e9 if self.seconds else 0.0


class SolveSim:
    """Discrete-event model of the supernodal triangular solve."""

    def __init__(self, plan: FactorizationPlan,
                 config: SpatulaConfig | None = None):
        self.plan = plan
        self.config = config or SpatulaConfig.paper()
        if self.config.tile != plan.tile:
            raise ValueError("plan tile size does not match config")

    # -- per-supernode panel cost ------------------------------------------------

    def _panel_tiles(self, sn_index: int) -> int:
        grid = self.plan.supernodes[sn_index].grid
        # The solve touches the pivot panel: diagonal blocks plus the
        # sub-diagonal blocks of the first P tile-columns.
        p = grid.n_pivot_blocks
        b = grid.n_blocks
        return sum(b - k for k in range(p))

    def _panel_exec_cycles(self, sn_index: int) -> int:
        """Array cycles: one tsolve per diagonal tile (2T), one GEMV per
        off-diagonal panel tile (T)."""
        grid = self.plan.supernodes[sn_index].grid
        t = self.config.tile
        p = grid.n_pivot_blocks
        b = grid.n_blocks
        diag = p * 2 * t
        offdiag = sum(b - k - 1 for k in range(p)) * t
        return diag + offdiag

    # -- the sweep ---------------------------------------------------------------

    def _sweep(self, topdown: bool) -> tuple[int, int]:
        """Run one sweep; returns (makespan cycles, DRAM bytes)."""
        cfg = self.config
        tree = self.plan.symbolic.tree
        hbm = HBMModel(cfg)
        cache = BankedCache(cfg, hbm)
        n_sn = tree.n_supernodes

        if topdown:
            deps_left = [0 if tree.supernodes[k].parent < 0 else 1
                         for k in range(n_sn)]
        else:
            deps_left = [len(tree.supernodes[k].children)
                         for k in range(n_sn)]
        ready = [k for k in range(n_sn) if deps_left[k] == 0]
        heapq.heapify(ready)

        pe_free = [0] * cfg.n_pes
        running: list[tuple[int, int, int]] = []  # (finish, sn, pe)
        now = 0
        makespan = 0
        next_addr = 0
        done = 0
        while done < n_sn:
            while ready:
                # Earliest-free PE executes the next ready supernode.
                pe = min(range(cfg.n_pes), key=lambda i: pe_free[i])
                sn = heapq.heappop(ready)
                start = max(now, pe_free[pe])
                # Stream the panel: cold reads issued back-to-back (the
                # decoupled prefetcher pipelines them; DRAM latency
                # overlaps, channel occupancy is the real cost).
                tiles = self._panel_tiles(sn)
                data_ready = start
                for _ in range(tiles):
                    fill = hbm.read_line(
                        cache.channel_of(next_addr), start, "factor_load"
                    )
                    data_ready = max(data_ready, fill)
                    next_addr += 1
                exec_end = max(start + self._panel_exec_cycles(sn),
                               data_ready)
                pe_free[pe] = exec_end
                heapq.heappush(running, (exec_end, sn, pe))
            if not running:
                raise AssertionError("solve sweep deadlocked")
            finish, sn, _pe = heapq.heappop(running)
            now = max(now, finish)
            makespan = max(makespan, now)
            done += 1
            if topdown:
                for child in tree.supernodes[sn].children:
                    deps_left[child] -= 1
                    if deps_left[child] == 0:
                        heapq.heappush(ready, child)
            else:
                parent = tree.supernodes[sn].parent
                if parent >= 0:
                    deps_left[parent] -= 1
                    if deps_left[parent] == 0:
                        heapq.heappush(ready, parent)
        return makespan, hbm.total_bytes

    def run(self) -> SolveReport:
        with span("sim.solve"):
            forward, bytes_fwd = self._sweep(topdown=False)
            backward, bytes_bwd = self._sweep(topdown=True)
        return SolveReport(
            config=self.config,
            forward_cycles=forward,
            backward_cycles=backward,
            dram_bytes=bytes_fwd + bytes_bwd,
            n_supernodes=self.plan.n_supernodes,
        )


def simulate_solve(plan: FactorizationPlan,
                   config: SpatulaConfig | None = None) -> SolveReport:
    """Model one triangular-solve pass (forward + backward sweeps)."""
    return SolveSim(plan, config).run()
