"""Execution tracing: per-task timelines from a simulation run.

Pass ``trace=True`` to :class:`~repro.arch.sim.SpatulaSim` (or
``simulate``) and the engine records one :class:`TraceEvent` per executed
task.  The trace can be rendered as an ASCII Gantt chart for quick
inspection, summarized into a utilization timeline, or exported in the
Chrome trace-event JSON format (open in ``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    """One task execution on one PE."""

    pe: int
    start: int
    end: int
    ttype: str
    sn: int
    task_index: int
    # Gap-attribution timestamps (-1 when the producer predates them):
    # the cycle the dispatcher placed the task in its PE slot, and the
    # cycle its leading operands had arrived.  The idle gap before
    # ``start`` splits at these boundaries into dependency/scheduler wait
    # (before dispatch) and exposed memory wait (dispatch -> op_ready).
    dispatch: int = -1
    op_ready: int = -1

    @property
    def duration(self) -> int:
        return self.end - self.start


_GANTT_GLYPH = {
    "dgemm": "#",
    "tsolve": "t",
    "dchol": "C",
    "dlu": "U",
    "gather_updates": "g",
}


def render_gantt(events: list[TraceEvent], n_pes: int,
                 width: int = 100) -> str:
    """ASCII Gantt chart: one row per PE, one glyph per time bucket.

    Glyphs: ``#`` dgemm, ``t`` tsolve, ``C`` dchol, ``U`` dlu,
    ``g`` gather, ``.`` idle.  When several tasks share a bucket the
    longest-running type wins.
    """
    if not events:
        return "(no events)"
    horizon = max(e.end for e in events)
    scale = max(1, -(-horizon // width))
    rows = []
    for pe in range(n_pes):
        buckets = [dict() for _ in range(width)]
        for e in events:
            if e.pe != pe:
                continue
            first = e.start // scale
            last = min(width - 1, max(first, (e.end - 1) // scale))
            for b in range(first, last + 1):
                lo = max(e.start, b * scale)
                hi = min(e.end, (b + 1) * scale)
                buckets[b][e.ttype] = buckets[b].get(e.ttype, 0) + hi - lo
        line = "".join(
            _GANTT_GLYPH.get(max(b, key=b.get), "?") if b else "."
            for b in buckets
        )
        rows.append(f"PE{pe:>3} |{line}|")
    legend = "  ".join(f"{g}={t}" for t, g in _GANTT_GLYPH.items())
    return "\n".join(rows) + f"\n       ({scale} cycles/char; {legend})"


def utilization_timeline(events: list[TraceEvent], n_pes: int,
                         n_buckets: int = 50) -> np.ndarray:
    """Fraction of PE-cycles busy per time bucket (machine utilization
    over time — shows ramp-up, steady state, and the root-supernode
    tail)."""
    if not events:
        return np.zeros(n_buckets)
    horizon = max(e.end for e in events)
    scale = max(1, -(-horizon // n_buckets))
    busy = np.zeros(n_buckets)
    for e in events:
        first = e.start // scale
        last = min(n_buckets - 1, max(first, (e.end - 1) // scale))
        for b in range(first, last + 1):
            lo = max(e.start, b * scale)
            hi = min(e.end, (b + 1) * scale)
            busy[b] += hi - lo
    return busy / (scale * n_pes)


def export_chrome_trace(events: list[TraceEvent], path: str | Path,
                        freq_ghz: float = 1.0, spans=None) -> None:
    """Write the trace in Chrome trace-event JSON format.

    Each PE becomes a "thread" of process 0; durations are reported in
    microseconds of simulated time (cycles / frequency).

    Args:
        events: PE task events recorded by ``SpatulaSim(..., trace=True)``.
        path: output file (open in chrome://tracing or Perfetto).
        freq_ghz: clock frequency used for the cycles -> us conversion.
        spans: optional host-side pipeline spans
            (:class:`repro.obs.Span` objects or their dicts); they are
            emitted as process 1 ("host pipeline") in wall-clock
            microseconds rebased so the earliest span starts at 0, letting
            one Perfetto view hold host phases next to simulated cycles.
            (The two processes share a timeline but not a time base.)
    """
    records = []
    for e in events:
        records.append({
            "name": f"{e.ttype} S{e.sn}#{e.task_index}",
            "cat": e.ttype,
            "ph": "X",
            "ts": e.start / (freq_ghz * 1e3),   # cycles -> us
            "dur": max(e.duration, 1) / (freq_ghz * 1e3),
            "pid": 0,
            "tid": e.pe,
            "args": {"supernode": e.sn, "task": e.task_index},
        })
    span_dicts = [s if isinstance(s, dict) else s.to_dict()
                  for s in (spans or [])]
    if span_dicts:
        records.append({"name": "process_name", "ph": "M", "pid": 0,
                        "args": {"name": "Spatula PEs (simulated time)"}})
        records.append({"name": "process_name", "ph": "M", "pid": 1,
                        "args": {"name": "host pipeline (wall clock)"}})
        t0 = min(s["start_s"] for s in span_dicts)
        for s in span_dicts:
            args = {"parent": s.get("parent")}
            if s.get("peak_mem_bytes") is not None:
                args["peak_mem_bytes"] = s["peak_mem_bytes"]
            records.append({
                "name": s["name"],
                "cat": "host",
                "ph": "X",
                "ts": (s["start_s"] - t0) * 1e6,      # seconds -> us
                "dur": max(s["duration_s"] * 1e6, 0.001),
                "pid": 1,
                "tid": s.get("depth", 0),
                "args": args,
            })
    other = {"source": "repro (Spatula reproduction)"}
    # Cross-reference the wall-clock telemetry run (if one is recording)
    # so a simulated-cycle trace can be matched to the telemetry
    # streams/trace of the `repro simulate --telemetry-dir` invocation
    # that produced it.
    from repro.obs import telemetry
    context = telemetry.current_context()
    if context is not None:
        other["telemetry_run"] = context.run_id
    payload = {
        "traceEvents": records,
        "displayTimeUnit": "ns",
        "otherData": other,
    }
    with open(path, "w") as f:
        json.dump(payload, f)
