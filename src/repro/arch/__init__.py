"""The Spatula architecture simulator (Sections 4-6 of the paper).

A cycle-accurate discrete-event model of the accelerator:

* 32 processing elements, each a 16x16 double-buffered systolic array with
  four task slots and decoupled operand fetch (:mod:`repro.arch.pe`);
* a two-level scheduler — a supernode scheduler (min-heap over postorder,
  Section 5.2) feeding generator FSMs whose scoreboards release tasks
  in-order to a biased task dispatcher (:mod:`repro.arch.scheduler`);
* a banked, 16-way LRU, 2 KB-line cache with write-back semantics
  (:mod:`repro.arch.cache`) in front of an HBM2E channel model
  (:mod:`repro.arch.memory`), connected by crossbar ports
  (:mod:`repro.arch.noc`);
* area and power models calibrated to Table 2 (:mod:`repro.arch.energy`).

Entry point: :class:`repro.arch.sim.SpatulaSim` /
:func:`repro.arch.sim.simulate`.
"""

from repro.arch.config import SpatulaConfig
from repro.arch.stats import SimReport
from repro.arch.sim import SpatulaSim, simulate
from repro.arch.solve import SolveReport, SolveSim, simulate_solve
from repro.arch.energy import area_breakdown, power_breakdown

__all__ = [
    "SpatulaConfig",
    "SimReport",
    "SpatulaSim",
    "simulate",
    "SolveReport",
    "SolveSim",
    "simulate_solve",
    "area_breakdown",
    "power_breakdown",
]
