"""Reverse Cuthill-McKee ordering.

Bandwidth-reducing BFS ordering: cheap, deterministic, and a good choice for
long thin mesh problems.  Also used as the leaf ordering inside nested
dissection.  Validated against ``scipy.sparse.csgraph.reverse_cuthill_mckee``
in tests.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.graph import pattern_graph, pseudo_peripheral_vertex
from repro.sparse.csc import CSCMatrix


def rcm(matrix: CSCMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee permutation (new index -> old index)."""
    n = matrix.n_rows
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("RCM requires a square matrix")
    indptr, indices = pattern_graph(matrix)
    degrees = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []

    for component_seed in np.argsort(degrees):
        seed = int(component_seed)
        if visited[seed]:
            continue
        start = pseudo_peripheral_vertex(indptr, indices, seed,
                                         mask=~visited)
        # Cuthill-McKee BFS: visit neighbors in increasing-degree order.
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            nbrs = indices[indptr[v]:indptr[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
            for u in fresh:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    return np.asarray(order[::-1], dtype=np.int64)
