"""Per-matrix-family autotuner over ordering x block size x workers.

The numeric engine exposes three knobs that interact with the matrix
structure — the fill-reducing ordering, the dense-kernel block size,
and the worker count.  This module sweeps them, times warm
refactorization with a real :class:`~repro.numeric.solver.SparseSolver`,
and records every trial into the :class:`~repro.obs.history.HistoryStore`
(``trials.jsonl``) keyed by a coarse *matrix-family fingerprint*.  The
store is the experience database: the next solve of a structurally
similar matrix (``SparseSolver(ordering="auto")``, ``solve --ordering
auto``, or a serve-layer pattern registration with a tune store) reads
the cached best config instead of re-sweeping.

The fingerprint deliberately buckets hard: matrices of the same family
(meshes of similar size, power-law graphs of similar skew) should
collide so experience transfers, while meshes and hub graphs should
not.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.history import HistoryStore
from repro.obs.metrics import global_registry
from repro.sparse.csc import CSCMatrix

logger = logging.getLogger(__name__)

TRIAL_SCHEMA_VERSION = 1

#: Sweep grids per budget preset: (orderings or None for the full
#: registry, block sizes, worker counts, factorize timing repeats).
BUDGETS: dict[str, dict] = {
    "small": {
        "orderings": ("amd", "rcm"),
        "block_sizes": (32, 64),
        "workers": (1,),
        "repeats": 1,
    },
    "medium": {
        "orderings": ("amd", "nd", "rcm"),
        "block_sizes": (32, 48, 64, 96),
        "workers": (1, 2),
        "repeats": 2,
    },
    "full": {
        "orderings": None,  # every registered ordering
        "block_sizes": (16, 32, 48, 64, 96, 128),
        "workers": (1, 2, 4),
        "repeats": 3,
    },
}


def matrix_fingerprint(matrix: CSCMatrix, kind: str = "cholesky") -> str:
    """Coarse structural bucket identifying a matrix *family*.

    Combines the factorization kind, structural symmetry, log2-bucketed
    size and mean degree, degree skew (hub-ness), and a bandwidth
    bucket.  Same-family matrices (e.g. 2-D meshes of similar size)
    share a fingerprint; structurally different matrices do not.
    """
    n = matrix.n_rows
    coo = matrix.to_coo()
    off = coo.rows != coo.cols
    nnz = matrix.nnz
    mean_deg = nnz / max(1, n)
    degrees = np.bincount(coo.cols, minlength=n)
    max_deg = int(degrees.max()) if n else 0
    skew = int(round(math.log2(max(1.0, max_deg / max(1e-9, mean_deg)))))
    if off.any():
        band = float(np.abs(coo.rows[off] - coo.cols[off]).mean()) / max(1, n)
    else:
        band = 0.0
    return (
        f"v1:{kind}"
        f":s{int(matrix.is_structurally_symmetric())}"
        f":n{int(round(math.log2(max(1, n))))}"
        f":d{int(round(2 * math.log2(1.0 + mean_deg)))}"
        f":k{skew}"
        f":b{min(9, int(band * 10))}"
    )


@dataclass(frozen=True)
class TunedConfig:
    """A tuner-recommended solver configuration.

    ``block_size``/``workers`` are ``None`` when the tuner has no
    evidence (fallback), meaning "keep the caller's defaults".
    """

    ordering: str
    block_size: int | None = None
    workers: int | None = None
    source: str = "tuned"  # "tuned" | "fallback"


@dataclass(frozen=True)
class Trial:
    """One autotuner measurement, as persisted in ``trials.jsonl``."""

    fingerprint: str
    matrix: str
    kind: str
    n: int
    ordering: str
    block_size: int
    workers: int
    analyze_s: float
    factorize_s: float
    fill: int
    flops: int
    schema_version: int = TRIAL_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Trial":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class AutotuneResult:
    """Outcome of :func:`autotune`: the pick plus how it was obtained."""

    config: TunedConfig
    fingerprint: str
    trials: list[Trial]
    from_cache: bool


def best_config(store: HistoryStore, fingerprint: str,
                kind: str | None = None) -> TunedConfig | None:
    """The lowest-``factorize_s`` trial recorded for a fingerprint."""
    best: Trial | None = None
    for payload in store.trials(fingerprint=fingerprint):
        try:
            trial = Trial.from_dict(payload)
        except TypeError:
            logger.warning("skipping malformed trial record: %r", payload)
            continue
        if kind is not None and trial.kind != kind:
            continue
        if best is None or trial.factorize_s < best.factorize_s:
            best = trial
    if best is None:
        return None
    return TunedConfig(ordering=best.ordering, block_size=best.block_size,
                       workers=best.workers, source="tuned")


def resolve_auto(
    matrix: CSCMatrix,
    kind: str = "cholesky",
    store: HistoryStore | str | None = None,
) -> TunedConfig:
    """Resolve ``ordering="auto"`` against the experience store.

    Returns the cached best config for the matrix's family fingerprint,
    or an AMD fallback (``source="fallback"``) when there is no store
    or no recorded experience.
    """
    reg = global_registry()
    if store is None:
        reg.counter("ordering.autotune.fallbacks").inc()
        return TunedConfig(ordering="amd", source="fallback")
    if not isinstance(store, HistoryStore):
        store = HistoryStore(store)
    fingerprint = matrix_fingerprint(matrix, kind=kind)
    tuned = best_config(store, fingerprint, kind=kind)
    if tuned is None:
        reg.counter("ordering.autotune.fallbacks").inc()
        return TunedConfig(ordering="amd", source="fallback")
    reg.counter("ordering.autotune.cache_hits").inc()
    return tuned


def autotune(
    matrix: CSCMatrix,
    store: HistoryStore | str,
    kind: str = "cholesky",
    budget: str = "small",
    matrix_name: str = "matrix",
    force: bool = False,
) -> AutotuneResult:
    """Sweep ordering x block size x workers and record the trials.

    A warm store (existing trials for this matrix's fingerprint) short-
    circuits the sweep unless ``force=True`` — the whole point of the
    experience database is to not re-measure known families.
    """
    from repro.numeric.solver import SparseSolver
    from repro.ordering.registry import available_orderings

    if not isinstance(store, HistoryStore):
        store = HistoryStore(store)
    try:
        grid = BUDGETS[budget]
    except KeyError:
        raise ValueError(
            f"unknown budget {budget!r}; choose from "
            f"{tuple(sorted(BUDGETS))}") from None
    fingerprint = matrix_fingerprint(matrix, kind=kind)
    reg = global_registry()

    if not force:
        cached = best_config(store, fingerprint, kind=kind)
        if cached is not None:
            reg.counter("ordering.autotune.cache_hits").inc()
            logger.info("autotune cache hit for %s: %s", fingerprint, cached)
            return AutotuneResult(config=cached, fingerprint=fingerprint,
                                  trials=[], from_cache=True)

    orderings = grid["orderings"] or available_orderings()
    repeats = grid["repeats"]
    trials: list[Trial] = []
    for ordering in orderings:
        for block_size in grid["block_sizes"]:
            for workers in grid["workers"]:
                t0 = time.perf_counter()
                try:
                    solver = SparseSolver(
                        matrix, kind=kind, ordering=ordering,
                        block_size=block_size, workers=workers,
                        use_cache=False,
                    )
                except (ValueError, np.linalg.LinAlgError) as exc:
                    logger.warning(
                        "autotune trial %s/b%d/w%d failed: %s",
                        ordering, block_size, workers, exc)
                    continue
                analyze_s = time.perf_counter() - t0
                # Time *warm* refactorization: the steady-state cost a
                # cached best-config actually buys in serving.
                best_s = math.inf
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    solver.factorize()
                    best_s = min(best_s, time.perf_counter() - t0)
                trial = Trial(
                    fingerprint=fingerprint, matrix=matrix_name, kind=kind,
                    n=matrix.n_rows, ordering=ordering,
                    block_size=block_size, workers=workers,
                    analyze_s=analyze_s, factorize_s=best_s,
                    fill=int(solver.symbolic.factor_nnz),
                    flops=int(solver.symbolic.flops),
                )
                store.add_trial(trial.to_dict())
                trials.append(trial)
    if not trials:
        raise ValueError(
            f"autotune produced no successful trials for {matrix_name}")
    winner = min(trials, key=lambda t: t.factorize_s)
    reg.gauge("ordering.autotune.trials").set(float(len(trials)))
    reg.gauge("ordering.autotune.best.factorize_s").set(winner.factorize_s)
    logger.info(
        "autotune %s [%s]: %d trials, best %s/b%d/w%d (%.4fs factorize)",
        matrix_name, fingerprint, len(trials), winner.ordering,
        winner.block_size, winner.workers, winner.factorize_s,
    )
    return AutotuneResult(
        config=TunedConfig(ordering=winner.ordering,
                           block_size=winner.block_size,
                           workers=winner.workers, source="tuned"),
        fingerprint=fingerprint, trials=trials, from_cache=False,
    )
