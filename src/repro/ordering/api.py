"""Top-level ordering entry point."""

from __future__ import annotations

import numpy as np

from repro.obs import span
from repro.ordering.dissection import nested_dissection
from repro.ordering.mindeg import minimum_degree
from repro.ordering.rcm import rcm
from repro.sparse.csc import CSCMatrix

_METHODS = ("amd", "nd", "rcm", "natural")


def fill_reducing_ordering(
    matrix: CSCMatrix, method: str = "amd"
) -> np.ndarray:
    """Compute a fill-reducing permutation (new index -> old index).

    Args:
        matrix: square sparse matrix (symmetrized pattern is used).
        method: "amd" (quotient-graph minimum degree), "nd" (nested
            dissection), "rcm" (reverse Cuthill-McKee), or "natural"
            (identity — useful for matrices pre-ordered by the generator).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown ordering {method!r}; choose from {_METHODS}")
    with span(f"ordering.{method}"):
        if method == "amd":
            return minimum_degree(matrix)
        if method == "nd":
            return nested_dissection(matrix)
        if method == "rcm":
            return rcm(matrix)
        return np.arange(matrix.n_rows, dtype=np.int64)
