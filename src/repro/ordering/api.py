"""Top-level ordering entry point."""

from __future__ import annotations

import numpy as np

from repro.obs import span
from repro.ordering.registry import get_ordering
from repro.sparse.csc import CSCMatrix


def fill_reducing_ordering(
    matrix: CSCMatrix, method: str = "amd", **params: object
) -> np.ndarray:
    """Compute a fill-reducing permutation (new index -> old index).

    Dispatches through :mod:`repro.ordering.registry`, so any registered
    method — built-in ("amd", "nd", "rcm", "natural", "local_refine") or
    plugin — is accepted, and the error message for an unknown name is
    always the current registry contents.

    Args:
        matrix: square sparse matrix (symmetrized pattern is used).
        method: registered ordering name.
        **params: method-specific keywords (e.g. ``seed=``/``budget=``
            for search-based orderings) forwarded to the implementation.
    """
    entry = get_ordering(method)
    with span(f"ordering.{method}"):
        perm = entry.fn(matrix, **params)
    return np.asarray(perm, dtype=np.int64)
