"""Quotient-graph approximate minimum degree ordering (AMD).

This is the ordering family packages like CHOLMOD use by default.  We
implement the quotient-graph formulation with Amestoy-Davis-Duff
approximate degrees: eliminated vertices become *elements*; a variable's
adjacency is its remaining direct neighbors plus the union of the
variables of its adjacent elements.

The degree of a neighbor u of the pivot p is estimated as

    d(u) = |direct vars| + |L_p \\ u| + sum over elements e of |L_e \\ L_p|

where the overlap |L_e intersect L_p| is computed for all touched elements
in one counting pass (the "w" trick of the AMD paper).  This is exact when
u's elements overlap only through L_p — the common case — and an upper
bound otherwise, which is what makes AMD fast *and* high-quality on mesh
problems.  Elements fully covered by L_p are absorbed.  Indistinguishable
variables are merged into supervariables (weighted by member count), which
also seeds good supernodes.

Hub/dense vertices are deferred to the end of the ordering (the standard
dense-row guard), which matters for the power-law circuit matrices in the
evaluation suite.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.ordering.graph import pattern_graph
from repro.sparse.csc import CSCMatrix


def minimum_degree(matrix: CSCMatrix,
                   dense_threshold: float = 0.5) -> np.ndarray:
    """Compute an approximate-minimum-degree permutation.

    Args:
        matrix: the matrix to order; its symmetrized pattern is used.
        dense_threshold: variables whose degree exceeds this fraction of the
            remaining vertices are deferred to the end (the usual "dense
            row" guard against hub vertices).

    Returns:
        perm mapping new index -> old index.
    """
    n = matrix.n_rows
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("minimum degree requires a square matrix")
    indptr, indices = pattern_graph(matrix)

    var_nbrs: list[set[int]] = [
        set(indices[indptr[v]:indptr[v + 1]].tolist()) for v in range(n)
    ]
    elem_nbrs: list[set[int]] = [set() for _ in range(n)]
    elem_vars: dict[int, set[int]] = {}
    weight = np.ones(n, dtype=np.int64)  # supervariable member counts
    members: list[list[int]] = [[v] for v in range(n)]
    alive = np.ones(n, dtype=bool)
    degree = np.array([len(s) for s in var_nbrs], dtype=np.int64)

    heap: list[tuple[int, int]] = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order: list[int] = []
    deferred: list[tuple[int, int]] = []
    remaining = n

    def esize(e: int) -> int:
        return int(sum(weight[x] for x in elem_vars[e] if alive[x]))

    while remaining > 0:
        entry = None
        while heap:
            deg, v = heapq.heappop(heap)
            if alive[v] and deg == degree[v]:
                entry = (deg, v)
                break
        if entry is None:
            live = [u for u in range(n) if alive[u]]
            if not live:
                break
            heap = [(int(degree[u]), u) for u in live]
            heapq.heapify(heap)
            continue
        deg, v = entry
        if remaining > 32 and deg > dense_threshold * remaining:
            alive[v] = False
            deferred.append((deg, v))
            remaining -= len(members[v])
            continue

        # Form element p = v: its variables are v's full adjacency.
        adj = set(var_nbrs[v])
        for e in elem_nbrs[v]:
            adj |= elem_vars[e]
        adj.discard(v)
        adj = {u for u in adj if alive[u]}

        alive[v] = False
        order.extend(members[v])
        remaining -= len(members[v])
        elem_vars[v] = adj
        absorbed = set(elem_nbrs[v])
        for u in adj:
            elem_nbrs[u] -= absorbed
            elem_nbrs[u].add(v)
            var_nbrs[u].discard(v)
            var_nbrs[u] -= adj  # clique edges become implicit via p
        for e in absorbed:
            elem_vars.pop(e, None)

        # Amestoy's counting pass: overlap of every touched element with
        # L_p, plus memoized element sizes for this round.
        overlap: dict[int, int] = {}
        sizes: dict[int, int] = {}
        for u in adj:
            wu = int(weight[u])
            for e in elem_nbrs[u]:
                if e == v:
                    continue
                overlap[e] = overlap.get(e, 0) + wu
        for e in overlap:
            sizes[e] = esize(e)

        adj_weight = int(sum(weight[u] for u in adj))

        # Degree update + element absorption + supervariable merging.
        signature: dict[tuple, int] = {}
        for u in list(adj):
            if not alive[u]:
                continue
            # Absorb elements entirely covered by L_p.
            dead_elems = {
                e for e in elem_nbrs[u]
                if e != v and sizes.get(e, 1) == overlap.get(e, 0)
            }
            if dead_elems:
                elem_nbrs[u] -= dead_elems
                for e in dead_elems:
                    elem_vars.pop(e, None)
            ext = adj_weight - int(weight[u])
            ext += int(sum(weight[x] for x in var_nbrs[u] if alive[x]))
            for e in elem_nbrs[u]:
                if e == v:
                    continue
                ext += max(0, sizes.get(e, esize(e)) - overlap.get(e, 0))
            degree[u] = max(1, min(ext, remaining - 1)) \
                if remaining > 1 else 0

            # Supervariable detection: cheap exact signature on small
            # adjacencies (the common interior-of-mesh case).
            if len(var_nbrs[u]) <= 8 and len(elem_nbrs[u]) <= 4:
                sig = (frozenset(elem_nbrs[u]), frozenset(var_nbrs[u]))
                twin = signature.get(sig)
                if twin is not None and alive[twin] and twin != u:
                    members[twin].extend(members[u])
                    weight[twin] += weight[u]
                    alive[u] = False
                    for e in elem_nbrs[u]:
                        if e in elem_vars:
                            elem_vars[e].discard(u)
                    for x in var_nbrs[u]:
                        var_nbrs[x].discard(u)
                    heapq.heappush(heap, (int(degree[twin]), twin))
                    continue
                signature[sig] = u
            heapq.heappush(heap, (int(degree[u]), u))

    for _deg, v in sorted(deferred):
        order.extend(members[v])
    if len(order) != n:
        raise AssertionError(
            f"minimum degree ordered {len(order)} of {n} vertices"
        )
    return np.asarray(order, dtype=np.int64)
