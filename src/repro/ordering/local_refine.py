"""Search-based ordering: local refinement over a heuristic seed.

Factorization-in-the-loop ordering studies (PAPERS.md) treat the
permutation as an optimization variable rather than the output of a
fixed heuristic.  This module implements the simplest useful instance:
seeded hill-climbing over an AMD (or any registered) seed permutation
against the exact symbolic fill objective.

Moves are cheap structural perturbations — window reversals, adjacent
window swaps, and single-node relocations — drawn from a seeded
generator; a candidate is accepted only when it *strictly* reduces
fill.  Two consequences the property tests rely on:

* the result never scores worse than its seed ordering, and
* the search is bit-reproducible for a fixed ``(seed, budget)``.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.registry import register_ordering
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.structure import column_counts


def _symbolic_fill(pattern: CSCMatrix, perm: np.ndarray) -> int:
    """Exact predicted nnz(L) of ``pattern`` under ``perm``."""
    permuted = pattern.permuted(perm)
    parent = elimination_tree(permuted)
    return int(column_counts(permuted, parent).sum())


def _propose(perm: np.ndarray, rng: np.random.Generator,
             window: int) -> np.ndarray:
    """One candidate move: window reversal, window swap, or node move."""
    n = len(perm)
    out = perm.copy()
    kind = int(rng.integers(0, 3))
    if kind == 0:
        # Reverse a short window.
        w = int(rng.integers(2, min(window, n) + 1))
        i = int(rng.integers(0, n - w + 1))
        out[i:i + w] = out[i:i + w][::-1]
    elif kind == 1:
        # Swap two positions at most `window` apart.
        i = int(rng.integers(0, n - 1))
        j = min(n - 1, i + int(rng.integers(1, window + 1)))
        out[i], out[j] = out[j], out[i]
    else:
        # Relocate one node to a nearby position.
        i = int(rng.integers(0, n))
        shift = int(rng.integers(1, window + 1))
        j = min(n - 1, max(0, i + (shift if rng.integers(0, 2) else -shift)))
        node = out[i]
        out = np.delete(out, i)
        out = np.insert(out, j, node)
    return out


@register_ordering(
    "local_refine", builtin=True, seeded=True, search=True,
    default_params={"seed_method": "amd", "seed": 0,
                    "budget": 32, "window": 8},
    description="hill-climbing window-swap refinement of an AMD seed "
                "against the fill objective",
)
def local_refine(
    matrix: CSCMatrix,
    seed_method: str = "amd",
    seed: int = 0,
    budget: int = 32,
    window: int = 8,
) -> np.ndarray:
    """Refine a heuristic seed ordering by seeded hill-climbing on fill.

    Args:
        matrix: square sparse matrix (symmetrized pattern is used).
        seed_method: registered ordering producing the starting point.
        seed: RNG seed for the move proposals (bit-reproducible).
        budget: number of candidate permutations to evaluate.
        window: locality of the moves (max reversal length / swap span).

    Returns:
        perm (new index -> old index) whose symbolic fill is <= the
        seed ordering's fill.
    """
    from repro.ordering.api import fill_reducing_ordering

    if budget < 0:
        raise ValueError("budget must be >= 0")
    if window < 2:
        raise ValueError("window must be >= 2")
    best = fill_reducing_ordering(matrix, seed_method)
    n = matrix.n_rows
    if n <= 2 or budget == 0:
        return best
    pattern = (matrix if matrix.is_structurally_symmetric()
               else matrix.pattern_symmetrized())
    best_fill = _symbolic_fill(pattern, best)
    floor = n + (pattern.nnz - n) // 2  # fill can never drop below nnz(L(A))
    rng = np.random.default_rng(seed)
    for _ in range(budget):
        if best_fill <= floor:
            break
        candidate = _propose(best, rng, window)
        fill = _symbolic_fill(pattern, candidate)
        if fill < best_fill:
            best, best_fill = candidate, fill
    return best
