"""Ordering quality harness: score any permutation on any matrix.

Spatula's speedups hinge on the structure the ordering induces — fill
sets memory and numeric work, the elimination-tree shape sets available
parallelism, and front sizes set simulated cycles.  This module turns
those into one comparable record, :class:`OrderingScore`, computed for
an arbitrary permutation (registry method, plugin, or hand-rolled):

* ``fill`` / ``fill_ratio`` — predicted nnz(L) and its ratio to nnz(A);
* ``flops`` — symbolic factorization FLOPs (LU counts both triangles);
* ``etree_height`` — length of the critical dependency chain;
* level widths / ``occupancy`` — how wide the etree level sets are,
  i.e. how much column-level parallelism the ordering exposes;
* optionally ``cycles`` — simulated Spatula cycles on a tiny config.

Scores are exported as ``ordering.quality.*`` gauges into the global
metrics registry (so they land in solve artifacts and are watched by
the history trend gate) and embedded in
:class:`~repro.symbolic.analyze.SymbolicFactorization` results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree, etree_heights
from repro.symbolic.structure import (
    cholesky_flops_from_counts,
    column_counts,
    lu_flops_from_counts,
)

#: Gauge-name prefix for exported scores.
QUALITY_PREFIX = "ordering.quality"


@dataclass(frozen=True)
class OrderingScore:
    """Structural quality of one permutation on one matrix.

    Lower is better for every field except ``level_occupancy`` (fraction
    of the widest level that the average level fills; higher means a
    more uniformly parallel etree).
    """

    method: str
    n: int
    nnz: int
    fill: int
    fill_ratio: float
    flops: int
    etree_height: int
    n_levels: int
    max_level_width: int
    mean_level_width: float
    level_occupancy: float
    cycles: int | None = None
    ordering_seconds: float | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "OrderingScore":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def flat_metrics(self) -> dict[str, float]:
        """The exported gauge values, keyed by full metric name."""
        out = {
            f"{QUALITY_PREFIX}.fill": float(self.fill),
            f"{QUALITY_PREFIX}.fill_ratio": float(self.fill_ratio),
            f"{QUALITY_PREFIX}.flops": float(self.flops),
            f"{QUALITY_PREFIX}.etree_height": float(self.etree_height),
            f"{QUALITY_PREFIX}.levels": float(self.n_levels),
            f"{QUALITY_PREFIX}.level_width.max": float(self.max_level_width),
            f"{QUALITY_PREFIX}.level_width.mean": float(self.mean_level_width),
            f"{QUALITY_PREFIX}.occupancy": float(self.level_occupancy),
        }
        if self.cycles is not None:
            out[f"{QUALITY_PREFIX}.cycles"] = float(self.cycles)
        return out


def validate_permutation(perm: np.ndarray, n: int) -> np.ndarray:
    """Check ``perm`` is a bijection of ``range(n)``; return it as int64."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        raise ValueError(
            f"permutation has shape {perm.shape}, expected ({n},)")
    if not np.issubdtype(perm.dtype, np.integer):
        raise ValueError(f"permutation dtype {perm.dtype} is not integral")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True  # raises IndexError on out-of-range entries
    if not seen.all():
        raise ValueError("permutation is not a bijection of range(n)")
    return perm.astype(np.int64, copy=False)


def score_from_counts(
    method: str,
    n: int,
    nnz: int,
    parent: np.ndarray,
    counts: np.ndarray,
    kind: str = "cholesky",
    cycles: int | None = None,
    ordering_seconds: float | None = None,
) -> OrderingScore:
    """Build a score from an already-computed etree + column counts.

    This is the cheap path :func:`repro.symbolic.symbolic_factorize`
    uses — the analysis has the etree and counts anyway, so scoring a
    solve's ordering is nearly free.
    """
    heights = etree_heights(parent)
    widths = np.bincount(heights, minlength=1)
    n_levels = int(heights.max()) + 1 if n else 0
    max_width = int(widths.max()) if n else 0
    mean_width = float(n / n_levels) if n_levels else 0.0
    fill = int(np.asarray(counts).sum())
    if kind == "cholesky":
        flops = cholesky_flops_from_counts(counts)
    else:
        flops = lu_flops_from_counts(counts)
    return OrderingScore(
        method=method,
        n=int(n),
        nnz=int(nnz),
        fill=fill,
        fill_ratio=float(fill / nnz) if nnz else 0.0,
        flops=int(flops),
        etree_height=n_levels,
        n_levels=n_levels,
        max_level_width=max_width,
        mean_level_width=mean_width,
        level_occupancy=float(mean_width / max_width) if max_width else 0.0,
        cycles=cycles,
        ordering_seconds=ordering_seconds,
    )


def score_ordering(
    matrix: CSCMatrix,
    perm: np.ndarray,
    method: str = "custom",
    kind: str = "cholesky",
    simulate: bool = False,
    ordering_seconds: float | None = None,
) -> OrderingScore:
    """Score an arbitrary permutation on a matrix.

    Args:
        matrix: square sparse matrix.
        perm: permutation (new index -> old index); validated.
        method: label recorded in the score.
        kind: "cholesky" (pattern used as-is) or "lu" (A + A^T pattern),
            matching :func:`repro.symbolic.symbolic_factorize`.
        simulate: also run the cycle simulator on a tiny Spatula config
            and record ``cycles`` (orders of magnitude slower; off by
            default).
        ordering_seconds: optional wall-clock cost of computing ``perm``.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("ordering quality requires a square matrix")
    n = matrix.n_rows
    perm = validate_permutation(perm, n)
    permuted = matrix.permuted(perm)
    pattern = permuted if kind == "cholesky" else permuted.pattern_symmetrized()
    if kind == "cholesky" and not pattern.is_structurally_symmetric():
        pattern = pattern.pattern_symmetrized()
    parent = elimination_tree(pattern)
    counts = column_counts(pattern, parent)
    cycles = None
    if simulate:
        cycles = _simulated_cycles(matrix, perm, kind)
    return score_from_counts(
        method, n, matrix.nnz, parent, counts, kind=kind,
        cycles=cycles, ordering_seconds=ordering_seconds,
    )


def _simulated_cycles(matrix: CSCMatrix, perm: np.ndarray, kind: str) -> int:
    from repro.arch.config import SpatulaConfig
    from repro.arch.sim import SpatulaSim
    from repro.symbolic.analyze import symbolic_factorize
    from repro.tasks.plan import build_plan

    config = SpatulaConfig.tiny()
    symbolic = symbolic_factorize(matrix, kind=kind, perm=perm)
    plan = build_plan(symbolic, tile=config.tile, supertile=config.supertile)
    return int(SpatulaSim(plan, config, matrix_name="quality").run().cycles)


def export_quality_gauges(
    score: OrderingScore, registry: MetricsRegistry | None = None
) -> None:
    """Set ``ordering.quality.*`` gauges from a score.

    Defaults to the process-global registry so the values land in any
    artifact snapshotting it (``solve --metrics``, the serve layer, CI).
    """
    reg = registry if registry is not None else global_registry()
    for name, value in score.flat_metrics().items():
        reg.gauge(name).set(value)


def compare_orderings(
    matrix: CSCMatrix,
    methods: tuple[str, ...] | None = None,
    kind: str = "cholesky",
    simulate: bool = False,
) -> dict[str, OrderingScore]:
    """Score several registered orderings on one matrix, name -> score."""
    from repro.ordering.api import fill_reducing_ordering
    from repro.ordering.registry import available_orderings

    out: dict[str, OrderingScore] = {}
    for name in methods if methods is not None else available_orderings():
        perm = fill_reducing_ordering(matrix, name)
        out[name] = score_ordering(
            matrix, perm, method=name, kind=kind, simulate=simulate)
    return out
