"""Static pivoting for sparse LU (Section 2.4).

Following Li & Demmel's static-pivoting approach (SuperLU-DIST), we permute
rows *before* factorization so that large entries land on the diagonal, then
factor without dynamic pivoting.  The row permutation is computed as a
weight-greedy bipartite matching with Kuhn-style augmentation, a practical
stand-in for MC64: every column is matched to some row (so the diagonal is
structurally nonzero) and the greedy phase prefers the largest magnitudes.

:func:`apply_static_pivoting` also supports the small-pivot perturbation
used by static-pivoted solvers: pivots smaller than
``sqrt(eps) * ||A||_max`` are bumped during numeric factorization (see
``repro.numeric.lu``).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix


def static_pivoting(matrix: CSCMatrix) -> np.ndarray:
    """Compute a row permutation moving large entries onto the diagonal.

    Returns ``row_perm`` with ``row_perm[j]`` = the original row placed at
    row ``j``, i.e. the permuted matrix is ``A[row_perm, :]`` and its
    diagonal entry in column ``j`` is ``A[row_perm[j], j]``.

    Raises ValueError if the matrix is structurally singular (no perfect
    matching between rows and columns exists).
    """
    n = matrix.n_rows
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("static pivoting requires a square matrix")

    # match_col[j] = row matched to column j; match_row[i] = column of row i.
    match_col = np.full(n, -1, dtype=np.int64)
    match_row = np.full(n, -1, dtype=np.int64)

    # Greedy phase: visit columns by decreasing best-entry magnitude, match
    # each to its largest unmatched row.
    best = np.zeros(n)
    for j in range(n):
        vals = matrix.col_vals(j)
        best[j] = np.abs(vals).max() if len(vals) else 0.0
    for j in np.argsort(-best):
        j = int(j)
        rows = matrix.col_rows(j)
        vals = np.abs(matrix.col_vals(j))
        for k in np.argsort(-vals):
            i = int(rows[k])
            if match_row[i] < 0:
                match_row[i] = j
                match_col[j] = i
                break

    # Augmentation phase (Kuhn's algorithm): complete the matching for any
    # columns the greedy pass left unmatched.
    import sys

    def augment(j: int, seen_rows: set[int]) -> bool:
        for i in matrix.col_rows(j):
            i = int(i)
            if i in seen_rows:
                continue
            seen_rows.add(i)
            if match_row[i] < 0 or augment(int(match_row[i]), seen_rows):
                match_row[i] = j
                match_col[j] = i
                return True
        return False

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n + 100))
    try:
        for j in range(n):
            if match_col[j] < 0 and not augment(j, set()):
                raise ValueError("matrix is structurally singular")
    finally:
        sys.setrecursionlimit(old_limit)

    # Column j should receive original row match_col[j].
    return match_col.copy()


def apply_static_pivoting(matrix: CSCMatrix) -> tuple[CSCMatrix, np.ndarray]:
    """Row-permute a matrix so large entries sit on the diagonal.

    Returns (permuted matrix, row_perm) with the convention of
    :func:`static_pivoting`.
    """
    row_perm = static_pivoting(matrix)
    inverse = np.empty_like(row_perm)
    inverse[row_perm] = np.arange(len(row_perm))
    coo = matrix.to_coo()
    from repro.sparse.coo import COOMatrix

    permuted = COOMatrix(
        matrix.n_rows, matrix.n_cols,
        inverse[coo.rows], coo.cols, coo.vals,
    )
    return CSCMatrix.from_coo(permuted), row_perm
