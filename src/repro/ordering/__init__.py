"""Fill-reducing orderings, quality scoring, search, and autotuning.

Symbolic factorization quality (and hence the supernode structure the whole
paper revolves around) depends on a fill-reducing permutation of the matrix.
This subpackage implements the standard ordering toolbox used by multifrontal
packages, organized as a plugin registry (see docs/ORDERING.md):

* :func:`minimum_degree` — quotient-graph minimum degree (AMD-family);
* :func:`rcm` — reverse Cuthill-McKee (bandwidth reduction);
* :func:`nested_dissection` — recursive vertex-separator bisection;
* :func:`local_refine` — seeded hill-climbing refinement of an AMD seed
  against the exact symbolic fill objective (:mod:`repro.ordering
  .local_refine`);
* :func:`static_pivoting` — row matching that moves large entries to the
  diagonal for numerically stable LU without dynamic pivoting (Section 2.4).

On top of the registry (:mod:`repro.ordering.registry`) sit two layers:
a quality harness (:mod:`repro.ordering.quality`) scoring any permutation
— fill, symbolic FLOPs, etree height, level occupancy, optionally
simulated cycles — and a per-matrix-family autotuner
(:mod:`repro.ordering.autotune`) that sweeps ordering x block size x
workers and serves cached best-configs from the history store to
``SparseSolver(ordering="auto")`` / ``solve --ordering auto``.

All orderings return a permutation array ``perm`` mapping new index -> old
index, usable directly with :meth:`repro.sparse.CSCMatrix.permuted`.
"""

from repro.ordering.graph import adjacency_sets, pattern_graph
from repro.ordering.mindeg import minimum_degree
from repro.ordering.rcm import rcm
from repro.ordering.dissection import nested_dissection
from repro.ordering.pivoting import static_pivoting
from repro.ordering.registry import (
    OrderingMethod,
    available_orderings,
    get_ordering,
    ordering_capabilities,
    register_ordering,
    unregister_ordering,
)
from repro.ordering.api import fill_reducing_ordering
from repro.ordering.local_refine import local_refine
from repro.ordering.quality import (
    OrderingScore,
    compare_orderings,
    export_quality_gauges,
    score_ordering,
    validate_permutation,
)
from repro.ordering.autotune import (
    AutotuneResult,
    Trial,
    TunedConfig,
    autotune,
    best_config,
    matrix_fingerprint,
    resolve_auto,
)

__all__ = [
    "adjacency_sets",
    "pattern_graph",
    "minimum_degree",
    "rcm",
    "nested_dissection",
    "static_pivoting",
    "fill_reducing_ordering",
    # registry
    "OrderingMethod",
    "register_ordering",
    "unregister_ordering",
    "get_ordering",
    "available_orderings",
    "ordering_capabilities",
    # search
    "local_refine",
    # quality harness
    "OrderingScore",
    "score_ordering",
    "compare_orderings",
    "export_quality_gauges",
    "validate_permutation",
    # autotuner
    "Trial",
    "TunedConfig",
    "AutotuneResult",
    "autotune",
    "best_config",
    "matrix_fingerprint",
    "resolve_auto",
]
