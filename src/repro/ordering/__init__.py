"""Fill-reducing orderings and static pivoting.

Symbolic factorization quality (and hence the supernode structure the whole
paper revolves around) depends on a fill-reducing permutation of the matrix.
This subpackage implements the standard ordering toolbox used by multifrontal
packages:

* :func:`minimum_degree` — quotient-graph minimum degree (AMD-family);
* :func:`rcm` — reverse Cuthill-McKee (bandwidth reduction);
* :func:`nested_dissection` — recursive vertex-separator bisection;
* :func:`static_pivoting` — row matching that moves large entries to the
  diagonal for numerically stable LU without dynamic pivoting (Section 2.4).

All orderings return a permutation array ``perm`` mapping new index -> old
index, usable directly with :meth:`repro.sparse.CSCMatrix.permuted`.
"""

from repro.ordering.graph import adjacency_sets, pattern_graph
from repro.ordering.mindeg import minimum_degree
from repro.ordering.rcm import rcm
from repro.ordering.dissection import nested_dissection
from repro.ordering.pivoting import static_pivoting
from repro.ordering.api import fill_reducing_ordering

__all__ = [
    "adjacency_sets",
    "pattern_graph",
    "minimum_degree",
    "rcm",
    "nested_dissection",
    "static_pivoting",
    "fill_reducing_ordering",
]
