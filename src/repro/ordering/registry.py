"""Pluggable registry of fill-reducing ordering methods.

Every ordering the stack knows about — the built-in heuristics
(amd/nd/rcm/natural), the search-based ``local_refine``, and any
third-party method registered via :func:`register_ordering` — lives here
as a named :class:`OrderingMethod` with capability metadata.  The
dispatch entry point :func:`~repro.ordering.api.fill_reducing_ordering`,
the CLI's ``--ordering`` choices, the autotuner's sweep space, and the
error messages users see all derive from this single table, so plugins
never drift out of sync with the rest of the stack.

Registering a new ordering::

    from repro.ordering.registry import register_ordering

    @register_ordering("metis_like", description="my external ordering",
                       deterministic=True)
    def metis_like(matrix):
        ...
        return perm  # np.int64, new index -> old index

The callable takes a :class:`~repro.sparse.csc.CSCMatrix` (plus optional
keyword parameters) and returns a permutation mapping *new index -> old
index*, exactly like the built-ins.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.ordering.dissection import nested_dissection
from repro.ordering.mindeg import minimum_degree
from repro.ordering.rcm import rcm
from repro.sparse.csc import CSCMatrix

OrderingFn = Callable[..., np.ndarray]


@dataclass(frozen=True)
class OrderingMethod:
    """One registered ordering method.

    Attributes:
        name: registry key (also the ``--ordering`` CLI value).
        fn: ``fn(matrix, **params) -> perm`` (new index -> old index).
        description: one-line summary for ``repro autotune``/docs.
        deterministic: same matrix always yields the same permutation
            (seeded methods are deterministic *given* their seed).
        seeded: accepts a ``seed=`` keyword controlling its randomness.
        search: iteratively optimizes an objective (accepts ``budget=``).
        builtin: shipped with the repo (vs. plugin-registered).
        default_params: keyword defaults recorded for reproducibility.
    """

    name: str
    fn: OrderingFn
    description: str = ""
    deterministic: bool = True
    seeded: bool = False
    search: bool = False
    builtin: bool = False
    default_params: dict[str, object] = field(default_factory=dict)

    def __call__(self, matrix: CSCMatrix, **params: object) -> np.ndarray:
        return self.fn(matrix, **params)


_REGISTRY: dict[str, OrderingMethod] = {}


def register_ordering(
    name: str,
    *,
    description: str = "",
    deterministic: bool = True,
    seeded: bool = False,
    search: bool = False,
    builtin: bool = False,
    default_params: dict[str, object] | None = None,
    overwrite: bool = False,
) -> Callable[[OrderingFn], OrderingFn]:
    """Decorator registering ``fn(matrix, **params) -> perm`` under ``name``.

    Raises:
        ValueError: on an empty/invalid name, or a duplicate registration
            without ``overwrite=True``.
    """
    if not name or not isinstance(name, str) or name.strip() != name:
        raise ValueError(f"invalid ordering name {name!r}")
    if name == "auto":
        raise ValueError(
            "'auto' is reserved for autotuner-resolved orderings")

    def decorator(fn: OrderingFn) -> OrderingFn:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"ordering {name!r} is already registered; "
                f"pass overwrite=True to replace it")
        _REGISTRY[name] = OrderingMethod(
            name=name, fn=fn,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            deterministic=deterministic, seeded=seeded, search=search,
            builtin=builtin, default_params=dict(default_params or {}),
        )
        return fn

    return decorator


def unregister_ordering(name: str) -> None:
    """Remove a registered ordering (built-ins refuse removal)."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(f"unknown ordering {name!r}")
    if entry.builtin:
        raise ValueError(f"cannot unregister built-in ordering {name!r}")
    del _REGISTRY[name]


def get_ordering(name: str) -> OrderingMethod:
    """Look up a registered ordering; error lists the registry contents."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown ordering {name!r}; "
            f"choose from {available_orderings()}") from None


def available_orderings() -> tuple[str, ...]:
    """Registered ordering names, sorted (built-ins and plugins alike)."""
    return tuple(sorted(_REGISTRY))


def ordering_capabilities() -> dict[str, OrderingMethod]:
    """Snapshot of the registry, name -> :class:`OrderingMethod`."""
    return dict(_REGISTRY)


# -- built-ins -------------------------------------------------------------


register_ordering(
    "amd", builtin=True,
    description="quotient-graph approximate minimum degree",
)(minimum_degree)

register_ordering(
    "nd", builtin=True, default_params={"leaf_size": 64},
    description="recursive nested dissection (BFS vertex separators)",
)(nested_dissection)

register_ordering(
    "rcm", builtin=True,
    description="reverse Cuthill-McKee (bandwidth-reducing BFS)",
)(rcm)


@register_ordering(
    "natural", builtin=True,
    description="identity ordering (matrices pre-ordered by the generator)",
)
def _natural(matrix: CSCMatrix) -> np.ndarray:
    return np.arange(matrix.n_rows, dtype=np.int64)
