"""Adjacency-structure helpers shared by the ordering algorithms.

All orderings operate on the undirected graph of the *symmetrized* nonzero
pattern of A (pattern of A + A^T, diagonal excluded), which is the standard
setup for both Cholesky and static-pivoted LU.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix


def pattern_graph(matrix: CSCMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, indices) adjacency of the symmetrized pattern.

    Self-loops (diagonal entries) are removed; each undirected edge appears
    in both endpoint's neighbor lists, sorted ascending.
    """
    coo = matrix.to_coo()
    off = coo.rows != coo.cols
    rows = np.concatenate([coo.rows[off], coo.cols[off]])
    cols = np.concatenate([coo.cols[off], coo.rows[off]])
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    if len(rows):
        keys = rows * matrix.n_cols + cols
        keep = np.concatenate(([True], keys[1:] != keys[:-1]))
        rows, cols = rows[keep], cols[keep]
    indptr = np.zeros(matrix.n_rows + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols


def adjacency_sets(matrix: CSCMatrix) -> list[set[int]]:
    """Neighbor sets of the symmetrized pattern graph (diagonal excluded)."""
    indptr, indices = pattern_graph(matrix)
    return [
        set(indices[indptr[v]:indptr[v + 1]].tolist())
        for v in range(matrix.n_rows)
    ]


def bfs_levels(
    indptr: np.ndarray, indices: np.ndarray, start: int,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Breadth-first levels from ``start``.

    Returns an array of levels (-1 for unreachable or masked-out vertices)
    and the index of the last vertex visited (a vertex at maximum distance).
    ``mask`` restricts the traversal to vertices where mask is True.
    """
    n = len(indptr) - 1
    levels = np.full(n, -1, dtype=np.int64)
    if mask is not None and not mask[start]:
        raise ValueError("start vertex is masked out")
    levels[start] = 0
    frontier = np.array([start], dtype=np.int64)
    last = start
    depth = 0
    while len(frontier):
        last = int(frontier[-1])
        depth += 1
        neighbors = indices[
            np.concatenate(
                [np.arange(indptr[v], indptr[v + 1]) for v in frontier]
            )
        ] if len(frontier) else np.empty(0, dtype=np.int64)
        fresh = neighbors[levels[neighbors] == -1]
        if mask is not None:
            fresh = fresh[mask[fresh]]
        fresh = np.unique(fresh)
        levels[fresh] = depth
        frontier = fresh
    return levels, last


def pseudo_peripheral_vertex(
    indptr: np.ndarray, indices: np.ndarray, start: int,
    mask: np.ndarray | None = None,
) -> int:
    """Find a vertex of (approximately) maximal eccentricity.

    The George-Liu heuristic: repeatedly BFS and jump to the farthest vertex
    until the eccentricity stops growing.
    """
    current = start
    levels, far = bfs_levels(indptr, indices, current, mask)
    best_depth = levels.max()
    for _ in range(8):
        levels, new_far = bfs_levels(indptr, indices, far, mask)
        depth = levels.max()
        if depth <= best_depth:
            return far
        best_depth = depth
        current, far = far, new_far
    return far
