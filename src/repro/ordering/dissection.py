"""Nested dissection ordering via recursive BFS bisection.

Nested dissection is the ordering of choice for mesh-like problems (the bulk
of the paper's suite): it produces balanced elimination trees whose large
separator supernodes carry most of the FLOPs — exactly the structure in
Figure 6 (top).  We use the classic level-set bisection: BFS from a
pseudo-peripheral vertex, cut at the median level, and take the boundary
vertices of one half as the separator.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.graph import (
    bfs_levels,
    pattern_graph,
    pseudo_peripheral_vertex,
)
from repro.sparse.csc import CSCMatrix


def nested_dissection(
    matrix: CSCMatrix, leaf_size: int = 64
) -> np.ndarray:
    """Nested-dissection permutation (new index -> old index).

    Args:
        matrix: square matrix; the symmetrized pattern is used.
        leaf_size: subgraphs at or below this size are ordered directly
            (by degree, a local minimum-degree-flavored heuristic).
    """
    n = matrix.n_rows
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("nested dissection requires a square matrix")
    indptr, indices = pattern_graph(matrix)
    degrees = np.diff(indptr)
    order: list[int] = []

    def order_leaf(vertices: np.ndarray) -> None:
        # Degree-ascending order approximates minimum degree on small leaves.
        local = vertices[np.argsort(degrees[vertices], kind="stable")]
        order.extend(int(v) for v in local)

    def dissect(vertices: np.ndarray) -> None:
        if len(vertices) <= leaf_size:
            order_leaf(vertices)
            return
        mask = np.zeros(n, dtype=bool)
        mask[vertices] = True
        seed = int(vertices[np.argmin(degrees[vertices])])
        start = pseudo_peripheral_vertex(indptr, indices, seed, mask=mask)
        levels, _ = bfs_levels(indptr, indices, start, mask=mask)
        reachable = vertices[levels[vertices] >= 0]
        unreachable = vertices[levels[vertices] < 0]
        if len(unreachable):
            # Disconnected: handle each piece independently, separator-free.
            dissect(reachable)
            dissect(unreachable)
            return
        max_level = int(levels[reachable].max())
        if max_level == 0:
            order_leaf(reachable)
            return
        # Cut at the level that balances the two halves.
        half = len(reachable) // 2
        counts = np.bincount(levels[reachable], minlength=max_level + 1)
        cut = int(np.searchsorted(np.cumsum(counts), half))
        cut = min(max(cut, 0), max_level - 1)
        lower = reachable[levels[reachable] <= cut]
        upper = reachable[levels[reachable] > cut]
        # Separator: vertices of `lower` at the cut level that touch `upper`.
        cut_layer = reachable[levels[reachable] == cut]
        sep_mask = np.zeros(n, dtype=bool)
        upper_mask = np.zeros(n, dtype=bool)
        upper_mask[upper] = True
        for v in cut_layer:
            nbrs = indices[indptr[v]:indptr[v + 1]]
            if upper_mask[nbrs].any():
                sep_mask[v] = True
        separator = cut_layer[sep_mask[cut_layer]]
        lower_rest = lower[~sep_mask[lower]]
        if len(separator) == 0 or len(lower_rest) == 0 or len(upper) == 0:
            order_leaf(reachable)
            return
        # Separator is eliminated last: recurse on halves, then emit it.
        dissect(lower_rest)
        dissect(upper)
        order.extend(int(v) for v in separator)

    dissect(np.arange(n, dtype=np.int64))
    if len(order) != n:
        raise AssertionError("nested dissection failed to order every vertex")
    return np.asarray(order, dtype=np.int64)
