"""Differential execution of one input across configuration axes.

For a single fuzz case, :func:`run_case` runs the same mathematical
problem through many configurations of the stack and asserts the results
agree exactly where the implementation guarantees it and within
conditioning-aware tolerances elsewhere:

==================  =========================================================
axis                contract
==================  =========================================================
``workers``         bit-identical factors for every worker count (the PR 2
                    level-scheduling guarantee)
``refactorize``     ``refactorize`` with unchanged values reproduces the
                    fresh factorization bit-for-bit
``block_size``      different panel widths change floating-point summation
                    order: solutions agree within conditioning-aware
                    tolerance
``ordering``        amd / rcm / nd produce different factors but the same
                    solution (tolerance), and all stay backward-stable
``solve_method``    the supernodal panel solve and the plain CSC
                    substitution oracle agree
``rhs``             a k-column panel solve matches k independent
                    single-vector solves
``kind``            for SPD inputs, Cholesky and LU agree on the solution
``oracle``          backward error bounded; forward error vs scipy
                    ``splu`` / dense LAPACK bounded below the cond cliff
``sim_tasks``       the cycle-level simulator executes the same task count
                    for every PE count, the functional executor retires
                    exactly that many tasks, and its factor reconstructs A
``outcome``         every configuration agrees on solvable-vs-singular;
                    ``expect="singular"`` cases must fail everywhere
==================  =========================================================

The sweep is deterministic given the case (right-hand sides derive from
``case.seed``), which is what makes shrinking and replay possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numeric.solver import SparseSolver
from repro.sparse.csc import CSCMatrix
from repro.verify.generators import FuzzCase
from repro.verify.oracle import (
    backward_error,
    backward_tolerance,
    check_against_oracle,
    condition_estimate,
    forward_tolerance,
)

# Exception types that mean "this configuration rejected the input" (as
# opposed to crashing): all deliberate rejections in the stack raise
# ValueError; LAPACK raises LinAlgError on numerically singular systems.
REJECTION_ERRORS = (ValueError, np.linalg.LinAlgError,
                    FloatingPointError, ZeroDivisionError)


@dataclass(frozen=True)
class SweepAxes:
    """The configuration space one case is swept over."""

    orderings: tuple[str, ...] = ("amd", "rcm", "nd")
    workers: tuple[int, ...] = (1, 4)
    block_sizes: tuple[int, ...] = (8, 48)
    rhs: int = 4
    check_kind_cross: bool = True
    check_sims: bool = True
    sim_max_n: int = 24

    @classmethod
    def quick(cls) -> "SweepAxes":
        """Cheaper sweep for shrinking predicates and smoke tests.

        Keeps every ordering (a bug may only surface under one fill
        pattern) but drops the expensive kind/simulator cross-checks.
        """
        return cls(workers=(1, 4), block_sizes=(8,), rhs=2,
                   check_kind_cross=False, check_sims=False)


# Axes whose mismatches are interchangeable for shrinking purposes: they
# all say "the numeric result is wrong somewhere", and a shrunk matrix
# frequently moves the symptom between them (e.g. an ordering-agreement
# failure collapsing into a direct oracle failure once only one ordering
# survives).
NUMERIC_AXES = frozenset({
    "oracle", "ordering", "block_size", "solve_method", "rhs", "kind",
    "workers", "refactorize",
})


def equivalent_axes(axes: set[str]) -> frozenset[str]:
    """Expand mismatch axes to their interchangeable group."""
    expanded = set(axes)
    if expanded & NUMERIC_AXES:
        expanded |= NUMERIC_AXES
    return frozenset(expanded)


@dataclass
class Mismatch:
    """One detected disagreement."""

    case: str
    axis: str
    detail: str
    config: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"case": self.case, "axis": self.axis,
                "detail": self.detail, "config": self.config}


@dataclass
class CaseResult:
    """Outcome of differentially executing one case."""

    case: FuzzCase
    outcome: str = "ok"          # "ok" | "rejected" | "mismatch"
    checks: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    cond: float = float("nan")

    @property
    def failed(self) -> bool:
        return bool(self.mismatches)


def factor_fingerprint(solver: SparseSolver) -> tuple[np.ndarray, ...]:
    """The exact bytes of a solver's factor (for bit-identity checks)."""
    lower, upper = solver.factor_csc()
    parts = [lower.indptr, lower.indices, lower.data]
    if upper is not None:
        parts += [upper.indptr, upper.indices, upper.data]
    return tuple(parts)


def _identical(a: tuple[np.ndarray, ...], b: tuple[np.ndarray, ...]) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )


def _build(case: FuzzCase, ordering: str, workers: int = 1,
           block_size: int | None = None) -> SparseSolver:
    return SparseSolver(case.matrix, kind=case.kind, ordering=ordering,
                        workers=workers, block_size=block_size)


def run_case(case: FuzzCase, axes: SweepAxes | None = None) -> CaseResult:
    """Differentially execute one fuzz case across the sweep axes."""
    axes = axes or SweepAxes()
    result = CaseResult(case=case)
    n = case.matrix.n_rows
    rng = np.random.default_rng(case.seed)
    b = rng.standard_normal(n)

    def report(axis: str, detail: str, **config) -> None:
        result.mismatches.append(Mismatch(
            case=case.name, axis=axis, detail=detail, config=config))

    # -- outcome consistency: does every configuration accept the input? --
    outcomes: dict[tuple, str] = {}
    solvers: dict[str, SparseSolver] = {}
    for ordering in axes.orderings:
        result.checks += 1
        try:
            solvers[ordering] = _build(case, ordering)
            outcomes[(ordering,)] = "ok"
        except REJECTION_ERRORS as exc:
            outcomes[(ordering,)] = f"rejected({type(exc).__name__})"
    accepted = [o for o in axes.orderings if outcomes[(o,)] == "ok"]
    if accepted and len(accepted) != len(axes.orderings):
        report("outcome",
               "configurations disagree on solvability: "
               + ", ".join(f"{o}={outcomes[(o,)]}" for o in axes.orderings))
        result.outcome = "mismatch"
        return result
    if not accepted:
        result.outcome = "rejected"
        if case.expect == "ok":
            report("outcome", "input unexpectedly rejected everywhere: "
                   + outcomes[(axes.orderings[0],)])
        return result
    if case.expect == "singular":
        report("outcome",
               "expected-singular input was accepted by every config")
        result.outcome = "mismatch"
        return result

    result.cond = condition_estimate(case.matrix)
    perturbed = any(
        getattr(s._lu, "perturbed_pivots", 0) for s in solvers.values()
    )
    fwd_tol = forward_tolerance(result.cond, n)
    base_order = accepted[0]
    base = solvers[base_order]
    base_x = base.solve(b)
    solutions = {base_order: base_x}

    # -- oracle: backward error always, forward error below the cliff ----
    result.checks += 1
    oracle = check_against_oracle(case.matrix, base_x, b,
                                  perturbed=perturbed, cond=result.cond)
    if not oracle.ok:
        report("oracle", oracle.detail, ordering=base_order)

    # -- workers: bit-identical factors ----------------------------------
    base_fp = factor_fingerprint(base)
    for w in axes.workers:
        if w == 1:
            continue
        result.checks += 1
        fp = factor_fingerprint(_build(case, base_order, workers=w))
        if not _identical(base_fp, fp):
            report("workers",
                   f"factor not bit-identical at workers={w}",
                   ordering=base_order, workers=w)

    # -- refactorize: bit-identical to a fresh factorization -------------
    result.checks += 1
    base.refactorize(case.matrix)
    if not _identical(base_fp, factor_fingerprint(base)):
        report("refactorize",
               "refactorize with unchanged values changed the factor",
               ordering=base_order)

    # -- block sizes: tolerance agreement --------------------------------
    for bs in axes.block_sizes:
        result.checks += 1
        xb = _build(case, base_order, block_size=bs).solve(b)
        rel = _rel_diff(xb, base_x)
        if rel > fwd_tol:
            report("block_size",
                   f"solution drift {rel:.3e} > {fwd_tol:.3e} "
                   f"at block_size={bs}",
                   ordering=base_order, block_size=bs)

    # -- orderings: same solution, all backward-stable -------------------
    for ordering in accepted[1:]:
        result.checks += 1
        x = solvers[ordering].solve(b)
        solutions[ordering] = x
        bwd = backward_error(case.matrix, x, b)
        tol = backward_tolerance(n, perturbed=perturbed)
        if bwd > tol:
            report("ordering",
                   f"backward error {bwd:.3e} > {tol:.3e} "
                   f"under ordering={ordering}", ordering=ordering)
        rel = _rel_diff(x, base_x)
        if rel > fwd_tol:
            report("ordering",
                   f"solutions disagree by {rel:.3e} > {fwd_tol:.3e} "
                   f"({base_order} vs {ordering})", ordering=ordering)

    # -- solve methods: supernodal vs plain CSC substitution -------------
    result.checks += 1
    x_csc = base.solve(b, method="csc")
    rel = _rel_diff(x_csc, base_x)
    if rel > fwd_tol:
        report("solve_method",
               f"supernodal and csc solves disagree by {rel:.3e} "
               f"> {fwd_tol:.3e}", ordering=base_order)

    # -- k-RHS panel vs independent single-vector solves ------------------
    if axes.rhs > 1:
        result.checks += 1
        panel = rng.standard_normal((n, axes.rhs))
        X = base.solve(panel)
        worst = max(
            _rel_diff(X[:, j], base.solve(panel[:, j]))
            for j in range(axes.rhs)
        )
        if worst > fwd_tol:
            report("rhs",
                   f"panel solve deviates from single-RHS solves by "
                   f"{worst:.3e} > {fwd_tol:.3e} (k={axes.rhs})",
                   ordering=base_order, rhs=axes.rhs)

    # -- kind cross-check: Cholesky vs LU on SPD inputs -------------------
    # Static-pivoted LU perturbs tiny pivots, so its raw forward error on
    # ill-conditioned inputs is ~cond * sqrt(eps) — meaningless to compare
    # directly.  The documented companion is iterative refinement: refine
    # the LU solve, then both sides should agree to ~cond * eps.  Beyond
    # ~1e8 even refined solutions share too few digits to compare.
    if (axes.check_kind_cross and case.kind == "cholesky"
            and case.expect == "ok" and result.cond < 1e8):
        result.checks += 1
        try:
            lu_solver = SparseSolver(case.matrix, kind="lu",
                                     ordering=base_order)
            x_lu = lu_solver.solve_refined(case.matrix, b).x
        except REJECTION_ERRORS as exc:
            report("kind",
                   f"LU rejected an input Cholesky accepted: "
                   f"{type(exc).__name__}: {exc}")
        else:
            rel = _rel_diff(x_lu, base_x)
            if rel > fwd_tol:
                report("kind",
                       f"Cholesky and refined LU disagree by {rel:.3e} "
                       f"> {fwd_tol:.3e}", ordering=base_order)

    # -- simulator cross-checks -------------------------------------------
    if axes.check_sims and n <= axes.sim_max_n and not case.hard:
        result.checks += 1
        mismatch = _check_simulators(case)
        if mismatch is not None:
            report("sim_tasks", mismatch)

    if result.mismatches:
        result.outcome = "mismatch"
    return result


def _rel_diff(x: np.ndarray, y: np.ndarray) -> float:
    scale = max(float(np.linalg.norm(x)), float(np.linalg.norm(y)), 1e-300)
    return float(np.linalg.norm(np.asarray(x) - np.asarray(y))) / scale


def _check_simulators(case: FuzzCase) -> str | None:
    """Cycle-sim vs functional-executor task-count and numeric agreement.

    Returns a mismatch description, or None when everything agrees.
    """
    from repro.arch.config import SpatulaConfig
    from repro.arch.functional import TileExecutor
    from repro.arch.sim import SpatulaSim, simulate
    from repro.symbolic.analyze import symbolic_factorize
    from repro.tasks.plan import build_plan

    try:
        symbolic = symbolic_factorize(case.matrix, kind=case.kind,
                                      ordering="amd")
        config = SpatulaConfig.tiny()
        plan = build_plan(symbolic, tile=config.tile,
                          supertile=config.supertile)
        executor = TileExecutor(plan, case.matrix)
        report = SpatulaSim(plan, config, matrix_name=case.name,
                            executor=executor).run()
        executor.verify()
    except AssertionError as exc:
        return f"functional executor failed verification: {exc}"
    except REJECTION_ERRORS as exc:
        return (f"simulator rejected an input the solver accepted: "
                f"{type(exc).__name__}: {exc}")
    if executor.tasks_executed != report.n_tasks:
        return (f"functional executor retired {executor.tasks_executed} "
                f"tasks but the cycle sim reports {report.n_tasks}")
    other = simulate(case.matrix, kind=case.kind, plan=plan,
                     config=SpatulaConfig.tiny(n_pes=2))
    if other.n_tasks != report.n_tasks:
        return (f"task count depends on PE count: {report.n_tasks} at "
                f"1 PE vs {other.n_tasks} at 2 PEs")
    return None
