"""Seeded, time-budgeted differential-fuzzing campaigns.

:func:`run_verification` drives the whole subsystem: draw cases from the
deterministic :func:`~repro.verify.generators.case_stream`, run each
through the configuration sweep of
:mod:`repro.verify.differential`, shrink any failure to a minimal
replayable JSON repro, and account for everything in the global metrics
registry (``verify.*``) so a campaign leaves a
:class:`~repro.obs.artifact.RunArtifact` like every other pipeline run.

The campaign is deterministic given ``(seed, max_n)``; the time budget
only decides *how far* into the deterministic case sequence the run
gets, never *which* cases it sees.

With ``jobs > 1`` the (independent) cases fan out across a
``multiprocessing`` pool.  Each worker joins the active telemetry run
through the env/initializer handshake
(:func:`repro.obs.telemetry.init_worker`), emits one ``verify.case``
span per case into its own JSONL sink, and dumps its ``verify.*``
counters at exit — so a collected timeline shows true per-process
worker lanes.  Results are consumed in submission order
(``imap``), keeping the summary deterministic for a fixed case count.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.obs import telemetry
from repro.obs.artifact import RunArtifact
from repro.obs.metrics import global_registry
from repro.verify.differential import CaseResult, SweepAxes, run_case
from repro.verify.generators import case_stream
from repro.verify.shrink import Repro, failure_predicate, shrink_matrix

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class VerifyConfig:
    """Campaign parameters (all deterministic knobs)."""

    seed: int = 0
    budget_seconds: float = 60.0
    max_cases: int | None = None
    max_n: int = 48
    out_dir: str = "repros"
    shrink: bool = True
    shrink_seconds: float = 20.0
    axes: SweepAxes = field(default_factory=SweepAxes)
    jobs: int = 1


@dataclass
class VerifySummary:
    """What a campaign did and found."""

    seed: int
    cases: int = 0
    checks: int = 0
    rejected: int = 0
    failures: int = 0
    seconds: float = 0.0
    families: dict[str, int] = field(default_factory=dict)
    mismatches: list[dict] = field(default_factory=list)
    repro_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "cases": self.cases, "checks": self.checks,
            "rejected": self.rejected, "failures": self.failures,
            "seconds": round(self.seconds, 3), "families": self.families,
            "mismatches": self.mismatches,
            "repro_paths": self.repro_paths,
        }

    def render(self) -> str:
        lines = [
            f"verify: {self.cases} cases, {self.checks} checks, "
            f"{self.failures} mismatching case(s), "
            f"{self.rejected} consistently-rejected, "
            f"{self.seconds:.1f}s (seed {self.seed})"
        ]
        for family in sorted(self.families):
            lines.append(f"  {family:<24}{self.families[family]:>4}")
        for m in self.mismatches:
            lines.append(f"  MISMATCH [{m['axis']}] {m['case']}: "
                         f"{m['detail']}")
        for path in self.repro_paths:
            lines.append(f"  repro written: {path}")
        return "\n".join(lines)


def _shrink_failure(result: CaseResult, config: VerifyConfig
                    ) -> Path | None:
    """Minimize a failing case and write its replayable JSON repro."""
    case = result.case
    axes = {m.axis for m in result.mismatches}
    try:
        shrunk = shrink_matrix(
            case.matrix,
            failure_predicate(case, match_axes=axes),
            max_seconds=config.shrink_seconds,
        )
    except ValueError:
        # The failure needs the full sweep (e.g. a sim-only or multi-
        # ordering mismatch the quick predicate can't see): keep the
        # original matrix as the repro rather than dropping the evidence.
        logger.warning("%s: failure did not reproduce under the quick "
                       "sweep; writing unshrunk repro", case.name)
        shrunk = case.matrix
    repro = Repro.from_failure(result, shrunk)
    safe = case.name.replace("[", "_").replace("]", "").replace(",", "_")
    path = Path(config.out_dir) / f"{safe}.json"
    repro.save(path)
    global_registry().histogram("verify.shrunk_n").observe(shrunk.n_rows)
    return path


def _account(result: CaseResult, summary: VerifySummary,
             config: VerifyConfig) -> None:
    """Fold one case result into the summary + global registry.

    Always runs in the main process (both serial and pool paths), so the
    campaign artifact's ``verify.*`` metrics come from exactly one
    registry regardless of ``jobs``.
    """
    reg = global_registry()
    case = result.case
    summary.cases += 1
    summary.checks += result.checks
    summary.families[case.family] = (
        summary.families.get(case.family, 0) + 1
    )
    reg.counter("verify.cases").inc()
    reg.counter("verify.checks").inc(result.checks)
    reg.counter(f"verify.family.{case.family}").inc()
    reg.histogram("verify.case_n").observe(case.matrix.n_rows)
    if result.outcome == "rejected":
        summary.rejected += 1
        reg.counter("verify.rejected").inc()
    if result.failed:
        summary.failures += 1
        reg.counter("verify.mismatches").inc(len(result.mismatches))
        summary.mismatches.extend(
            m.to_dict() for m in result.mismatches
        )
        logger.warning("mismatch in %s: %s", case.name,
                       result.mismatches[0].detail)
        if config.shrink:
            path = _shrink_failure(result, config)
            if path is not None:
                summary.repro_paths.append(str(path))


def _run_case_job(payload: tuple) -> CaseResult:
    """Pool worker body: run one case under a ``verify.case`` task span.

    Module-level so it pickles under spawn; the span goes to the
    worker's own JSONL sink (no-op when the run has no telemetry).
    """
    case, axes = payload
    with telemetry.task_span("verify.case", case=case.name,
                             family=case.family, n=case.matrix.n_rows):
        return run_case(case, axes=axes)


def _bounded_cases(config: VerifyConfig):
    stream = case_stream(config.seed, max_n=config.max_n)
    if config.max_cases is None:
        yield from stream
        return
    for i, case in enumerate(stream):
        if i >= config.max_cases:
            return
        yield case


def run_verification(config: VerifyConfig | None = None) -> VerifySummary:
    """Run one fuzzing campaign; see the module docstring."""
    config = config or VerifyConfig()
    summary = VerifySummary(seed=config.seed)
    reg = global_registry()
    start = time.monotonic()
    deadline = start + config.budget_seconds
    if config.jobs > 1:
        payloads = ((case, config.axes)
                    for case in _bounded_cases(config))
        pool = multiprocessing.Pool(
            config.jobs, initializer=telemetry.init_worker)
        drained = False
        try:
            for result in pool.imap(_run_case_job, payloads, chunksize=1):
                _account(result, summary, config)
                if time.monotonic() >= deadline:
                    break
            else:
                drained = True
        finally:
            if drained:
                # Clean shutdown: workers run their atexit hooks, which
                # dump per-worker counters into the telemetry stream.
                pool.close()
            else:
                # Budget break (or error): the input generator is still
                # live and close() would drain it — kill the pool.
                pool.terminate()
            pool.join()
    else:
        for case in _bounded_cases(config):
            if summary.cases and time.monotonic() >= deadline:
                break
            result = run_case(case, axes=config.axes)
            _account(result, summary, config)
    summary.seconds = time.monotonic() - start
    reg.counter("verify.seconds").inc(summary.seconds)
    return summary


def campaign_artifact(summary: VerifySummary,
                      config: VerifyConfig) -> RunArtifact:
    """Package a campaign as a standard run artifact."""
    cfg = asdict(config)
    cfg["axes"] = asdict(config.axes)
    report = summary.to_dict()
    # Mismatch details live in the repro files; keep the artifact scalar-
    # friendly for `repro report --diff`.
    report.pop("mismatches", None)
    report.pop("repro_paths", None)
    report.pop("families", None)
    return RunArtifact(
        matrix=f"fuzz(seed={summary.seed})", kind="verify",
        n=config.max_n, config=cfg, report=report,
        metrics=global_registry().snapshot(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )
