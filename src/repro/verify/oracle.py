"""Reference oracles and conditioning-aware tolerances.

Differential checks need a ground truth and a principled notion of "how
wrong is too wrong".  Both are conditioning-dependent:

* the **backward error** ``||Ax - b|| / (||A|| ||x|| + ||b||)`` of a
  backward-stable direct solve is O(n * eps) *independent* of the
  conditioning — it is the primary correctness signal, valid even for
  near-singular inputs;
* the **forward error** against an independent oracle (scipy ``splu`` when
  available, dense LAPACK otherwise) degrades like ``cond(A) * eps`` and
  is only asserted while the conditioning leaves meaningful digits.

scipy is optional: when absent, the dense-LAPACK path (exercising none of
our sparse code) still provides an independent reference for the small
matrices the fuzzer produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix

try:  # pragma: no cover - exercised implicitly by every oracle call
    import scipy.sparse as _sp
    import scipy.sparse.linalg as _spla

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _sp = None
    _spla = None
    HAVE_SCIPY = False

_EPS = float(np.finfo(np.float64).eps)

# Forward-error comparisons stop being meaningful once cond * eps
# approaches 1; beyond this, only backward error is asserted.
COND_CLIFF = 1e12


def condition_estimate(matrix: CSCMatrix, cap_n: int = 600) -> float:
    """2-norm condition number estimate (dense; ``inf`` when too large
    to materialize or numerically singular)."""
    if matrix.n_rows > cap_n:
        return float("inf")
    try:
        return float(np.linalg.cond(matrix.to_dense()))
    except np.linalg.LinAlgError:
        return float("inf")


def oracle_solve(matrix: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` with an implementation independent of this
    repo's factorization stack (scipy splu, else dense LAPACK)."""
    if HAVE_SCIPY:
        a = _sp.csc_matrix(
            (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
        )
        return _spla.splu(a).solve(np.asarray(b, dtype=np.float64))
    return np.linalg.solve(matrix.to_dense(), b)


def oracle_factor_nnz(matrix: CSCMatrix, kind: str) -> int | None:
    """Factor nonzero count from scipy (L + U of splu); ``None`` when
    scipy is unavailable."""
    if not HAVE_SCIPY:
        return None
    a = _sp.csc_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )
    lu = _spla.splu(a)
    return int(lu.L.nnz + lu.U.nnz)


def backward_error(matrix: CSCMatrix, x: np.ndarray,
                   b: np.ndarray) -> float:
    """Normwise backward error ``||Ax-b|| / (||A|| ||x|| + ||b||)``.

    Accepts single vectors or (n, k) panels (Frobenius norms).
    """
    r = matrix.matvec(x) - b
    a_norm = float(np.abs(matrix.data).max()) * matrix.n_rows \
        if matrix.nnz else 0.0
    denom = a_norm * float(np.linalg.norm(x)) + float(np.linalg.norm(b))
    if denom == 0.0:
        return float(np.linalg.norm(r))
    return float(np.linalg.norm(r)) / denom


def backward_tolerance(n: int, perturbed: bool = False) -> float:
    """Backward-error acceptance threshold.

    Backward-stable elimination gives O(n * eps); static-pivoting
    perturbation intentionally trades ``sqrt(eps)``-level residual for a
    static task graph, so perturbed LU gets the wider budget.
    """
    base = 64.0 * max(4, n) * _EPS
    if perturbed:
        return max(base, 1e4 * np.sqrt(_EPS))
    return base


def forward_tolerance(cond: float, n: int) -> float:
    """Acceptance threshold for relative differences between two
    *independently computed* solutions of the same system."""
    return 1e3 * max(4, n) * _EPS * max(1.0, cond)


@dataclass
class OracleCheck:
    """Result of checking one solution against the oracle."""

    cond: float
    backward: float
    backward_tol: float
    forward: float | None
    forward_tol: float | None
    ok: bool
    detail: str = ""


def check_against_oracle(matrix: CSCMatrix, x: np.ndarray, b: np.ndarray,
                         perturbed: bool = False,
                         cond: float | None = None) -> OracleCheck:
    """Compare a solve result against the independent oracle.

    Backward error is always asserted; forward error only below the
    conditioning cliff (and only for single right-hand sides).
    """
    if cond is None:
        cond = condition_estimate(matrix)
    bwd = backward_error(matrix, x, b)
    bwd_tol = backward_tolerance(matrix.n_rows, perturbed=perturbed)
    fwd = fwd_tol = None
    ok = bwd <= bwd_tol
    detail = "" if ok else (
        f"backward error {bwd:.3e} exceeds {bwd_tol:.3e}"
    )
    if ok and np.ndim(x) == 1 and np.isfinite(cond) and cond < COND_CLIFF:
        ref = oracle_solve(matrix, b)
        scale = float(np.linalg.norm(ref)) or 1.0
        fwd = float(np.linalg.norm(x - ref)) / scale
        fwd_tol = forward_tolerance(cond, matrix.n_rows)
        if fwd > fwd_tol:
            ok = False
            detail = (f"forward error vs oracle {fwd:.3e} exceeds "
                      f"{fwd_tol:.3e} (cond {cond:.2e})")
    return OracleCheck(cond=cond, backward=bwd, backward_tol=bwd_tol,
                       forward=fwd, forward_tol=fwd_tol, ok=ok,
                       detail=detail)
