"""Differential verification and fuzzing subsystem.

Three independent implementations of the same factorization math live in
this repo — the parallel blocked numeric engine, the functional
multifrontal/tile model, and the cycle-level Spatula simulator — plus
external oracles (scipy, dense LAPACK).  This package systematically
checks that they all agree:

* :mod:`repro.verify.generators` — adversarial matrix fuzzing;
* :mod:`repro.verify.oracle` — reference solves and conditioning-aware
  tolerances;
* :mod:`repro.verify.differential` — one case swept across orderings,
  worker counts, block sizes, kinds, refactorization, and RHS shapes;
* :mod:`repro.verify.shrink` — failing-case minimization + replayable
  JSON repros;
* :mod:`repro.verify.runner` — seeded, time-budgeted campaigns wired
  into the metrics registry (``repro verify`` on the CLI).
"""

from repro.verify.differential import (
    CaseResult,
    Mismatch,
    SweepAxes,
    factor_fingerprint,
    run_case,
)
from repro.verify.generators import (
    FuzzCase,
    build_case,
    case_stream,
    family_names,
)
from repro.verify.oracle import (
    backward_error,
    backward_tolerance,
    check_against_oracle,
    condition_estimate,
    forward_tolerance,
    oracle_solve,
)
from repro.verify.runner import (
    VerifyConfig,
    VerifySummary,
    campaign_artifact,
    run_verification,
)
from repro.verify.shrink import (
    Repro,
    failure_predicate,
    load_repro,
    replay_repro,
    shrink_matrix,
)

__all__ = [
    "CaseResult",
    "FuzzCase",
    "Mismatch",
    "Repro",
    "SweepAxes",
    "VerifyConfig",
    "VerifySummary",
    "backward_error",
    "backward_tolerance",
    "build_case",
    "campaign_artifact",
    "case_stream",
    "check_against_oracle",
    "condition_estimate",
    "factor_fingerprint",
    "failure_predicate",
    "family_names",
    "forward_tolerance",
    "load_repro",
    "oracle_solve",
    "replay_repro",
    "run_case",
    "run_verification",
    "shrink_matrix",
]
