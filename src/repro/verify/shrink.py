"""Failing-case minimization and replayable JSON repros.

When the differential runner finds a mismatch, the raw failing matrix is
usually far bigger than the bug needs.  :func:`shrink_case` greedily
minimizes it while the failure predicate keeps holding, delta-debugging
style:

1. **shrink n** — drop blocks of row/column indices (principal
   submatrix), halving block sizes down to single indices;
2. **sparsify** — drop off-diagonal entries (in symmetric pairs when the
   pattern is symmetric), chunked then one-by-one;
3. **simplify values** — round surviving values to a few significant
   digits so the repro is human-readable.

The result is serialized as a small self-contained JSON file that
:func:`replay_repro` reloads and re-runs through the same differential
sweep — a failing fuzz campaign leaves behind executable evidence, not a
log line.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.verify.differential import (
    CaseResult,
    SweepAxes,
    equivalent_axes,
    run_case,
)
from repro.verify.generators import FuzzCase

REPRO_SCHEMA_VERSION = 1

Predicate = Callable[[CSCMatrix], bool]


def principal_submatrix(matrix: CSCMatrix, keep: np.ndarray) -> CSCMatrix:
    """The principal submatrix on the (sorted) kept indices."""
    keep = np.asarray(keep, dtype=np.int64)
    coo = matrix.to_coo()
    pos = np.full(matrix.n_rows, -1, dtype=np.int64)
    pos[keep] = np.arange(len(keep))
    sel = (pos[coo.rows] >= 0) & (pos[coo.cols] >= 0)
    return CSCMatrix.from_coo(COOMatrix(
        len(keep), len(keep),
        pos[coo.rows[sel]], pos[coo.cols[sel]], coo.vals[sel],
    ))


def _try(candidate: CSCMatrix, fails: Predicate) -> bool:
    """Run the predicate, treating any crash as 'does not reproduce'."""
    try:
        return bool(fails(candidate))
    except Exception:
        return False


def _shrink_indices(matrix: CSCMatrix, fails: Predicate,
                    deadline: float) -> CSCMatrix:
    """Pass 1: minimize the dimension by dropping index blocks."""
    current = matrix
    chunk = max(1, current.n_rows // 2)
    while chunk >= 1 and time.monotonic() < deadline:
        progressed = False
        start = 0
        while start < current.n_rows and current.n_rows > 1:
            if time.monotonic() >= deadline:
                break
            end = min(current.n_rows, start + chunk)
            keep = np.concatenate([
                np.arange(0, start), np.arange(end, current.n_rows)
            ])
            if len(keep) == 0:
                start = end
                continue
            candidate = principal_submatrix(current, keep)
            if _try(candidate, fails):
                current = candidate
                progressed = True
                # Same start now addresses the next surviving block.
            else:
                start = end
        if not progressed or chunk == 1:
            chunk //= 2
    return current


def _shrink_entries(matrix: CSCMatrix, fails: Predicate,
                    deadline: float) -> CSCMatrix:
    """Pass 2: drop off-diagonal entries while the failure persists."""
    current = matrix
    symmetric = current.is_structurally_symmetric()
    while time.monotonic() < deadline:
        coo = current.to_coo()
        off = np.flatnonzero(coo.rows != coo.cols)
        if symmetric:
            # Treat each (i, j)/(j, i) pair as one droppable unit.
            off = off[coo.rows[off] > coo.cols[off]]
        progressed = False
        for k in off:
            if time.monotonic() >= deadline:
                break
            drop = {(int(coo.rows[k]), int(coo.cols[k]))}
            if symmetric:
                drop.add((int(coo.cols[k]), int(coo.rows[k])))
            sel = np.array([
                (int(r), int(c)) not in drop
                for r, c in zip(coo.rows, coo.cols)
            ])
            candidate = CSCMatrix.from_coo(COOMatrix(
                coo.n_rows, coo.n_cols,
                coo.rows[sel], coo.cols[sel], coo.vals[sel],
            ))
            if _try(candidate, fails):
                current = candidate
                progressed = True
                break  # re-enumerate against the shrunk matrix
        if not progressed:
            break
    return current


def _simplify_values(matrix: CSCMatrix, fails: Predicate,
                     deadline: float) -> CSCMatrix:
    """Pass 3: round values to few significant digits where possible."""
    current = matrix
    for digits in (1, 2, 4, 8):
        if time.monotonic() >= deadline:
            break
        coo = current.to_coo()
        with np.errstate(divide="ignore", invalid="ignore"):
            mag = np.where(coo.vals != 0.0,
                           np.floor(np.log10(np.abs(coo.vals))), 0.0)
        rounded = np.round(coo.vals / 10.0 ** mag, digits) * 10.0 ** mag
        candidate = CSCMatrix.from_coo(COOMatrix(
            coo.n_rows, coo.n_cols, coo.rows, coo.cols, rounded,
        ))
        if _try(candidate, fails):
            return candidate
    return current


def shrink_matrix(matrix: CSCMatrix, fails: Predicate,
                  max_seconds: float = 30.0) -> CSCMatrix:
    """Greedily minimize a failing matrix under a failure predicate.

    ``fails(matrix)`` must be True on entry; the returned matrix still
    satisfies it.  The search is time-boxed, deterministic, and purely
    reductive (dimension, then entries, then value complexity).
    """
    if not _try(matrix, fails):
        raise ValueError("shrink_matrix needs a failing input to start from")
    deadline = time.monotonic() + max_seconds
    current = _shrink_indices(matrix, fails, deadline)
    current = _shrink_entries(current, fails, deadline)
    current = _simplify_values(current, fails, deadline)
    return current


# -- replayable repro files ----------------------------------------------------


@dataclass
class Repro:
    """A self-contained, replayable failing case."""

    case: str
    family: str
    kind: str
    seed: int
    expect: str
    hard: bool
    n: int
    rows: list[int]
    cols: list[int]
    vals: list[float]
    axes: list[str]
    mismatches: list[dict] = field(default_factory=list)
    original_n: int = 0
    schema_version: int = REPRO_SCHEMA_VERSION
    created_at: str = ""

    @classmethod
    def from_failure(cls, result: CaseResult,
                     shrunk: CSCMatrix) -> "Repro":
        coo = shrunk.to_coo()
        case = result.case
        return cls(
            case=case.name, family=case.family, kind=case.kind,
            seed=case.seed, expect=case.expect, hard=case.hard,
            n=shrunk.n_rows,
            rows=[int(r) for r in coo.rows],
            cols=[int(c) for c in coo.cols],
            vals=[float(v) for v in coo.vals],
            axes=sorted({m.axis for m in result.mismatches}),
            mismatches=[m.to_dict() for m in result.mismatches],
            original_n=case.matrix.n_rows,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )

    def matrix(self) -> CSCMatrix:
        return CSCMatrix.from_coo(COOMatrix(
            self.n, self.n,
            np.asarray(self.rows, dtype=np.int64),
            np.asarray(self.cols, dtype=np.int64),
            np.asarray(self.vals, dtype=np.float64),
        ))

    def fuzz_case(self) -> FuzzCase:
        return FuzzCase(
            name=f"replay:{self.case}", family=self.family,
            matrix=self.matrix(), kind=self.kind, seed=self.seed,
            expect=self.expect, hard=self.hard,
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as f:
            json.dump(asdict(self), f, indent=1)
        return path


def load_repro(path: str | Path) -> Repro:
    with open(path) as f:
        data = json.load(f)
    version = data.get("schema_version")
    if version != REPRO_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: repro schema_version {version!r} is not supported "
            f"(expected {REPRO_SCHEMA_VERSION})"
        )
    return Repro(**data)


def replay_repro(path: str | Path,
                 axes: SweepAxes | None = None) -> CaseResult:
    """Re-run a shrunk failing case through the differential sweep."""
    return run_case(load_repro(path).fuzz_case(), axes=axes)


def failure_predicate(case: FuzzCase,
                      axes: SweepAxes | None = None,
                      match_axes: set[str] | None = None) -> Predicate:
    """Predicate for shrinking: does this matrix still reproduce (one of)
    the original mismatch axes?

    Axes are matched up to :func:`equivalent_axes` groups — shrinking
    routinely moves a numeric disagreement between, say, the ``ordering``
    and ``oracle`` checks, and either one is the same underlying bug.
    Without ``match_axes`` any mismatch counts, *except* that an
    expect-ok case is never allowed to shrink into an everywhere-rejected
    matrix (that degenerates to trivially non-SPD inputs, not the bug).
    """
    sweep = axes or SweepAxes.quick()
    wanted = equivalent_axes(match_axes) if match_axes is not None else None

    def fails(matrix: CSCMatrix) -> bool:
        candidate = FuzzCase(
            name=case.name, family=case.family, matrix=matrix,
            kind=case.kind, seed=case.seed, expect=case.expect,
            hard=case.hard,
        )
        result = run_case(candidate, axes=sweep)
        if not result.mismatches:
            return False
        if wanted is not None:
            return any(m.axis in wanted for m in result.mismatches)
        if case.expect == "ok" and result.outcome == "rejected":
            return False
        return True

    return fails
