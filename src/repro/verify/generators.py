"""Adversarial matrix generation for differential verification.

The hypothesis strategies in ``tests/test_properties.py`` cover small
well-behaved matrices; this module generates the inputs that actually
break sparse solvers in production — the axes CKTSO-style validation and
factorization-in-the-loop studies sweep:

* **near-singular SPD** — graph Laplacians shifted by a tiny diagonal,
  condition number ~1/shift;
* **ill-conditioned SPD** — symmetric diagonal scaling ``D A D`` with
  ``D`` spanning many orders of magnitude (conditioning without changing
  the pattern);
* **structurally singular** — an empty row/column or missing diagonal
  (every configuration must fail *consistently*);
* **duplicate-entry COO** — assembly-style input where each logical
  nonzero is split across several coordinate entries, including pairs
  that sum to exactly zero;
* **dense-ish blocks** — arrow / block structures that stress supernode
  amalgamation and the blocked kernels;
* **permuted / scaled suite variants** — small instances of the paper's
  evaluation matrices under random symmetric permutation and scaling.

Every builder is a pure function of a ``numpy.random.Generator``, so the
same helpers back both the seeded fuzz campaign
(:mod:`repro.verify.runner`) and the hypothesis strategies in the
property-test suite (which draw a seed and delegate here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix


# -- shared low-level builders (also used by hypothesis strategies) ------------


def random_spd(rng: np.random.Generator, n: int,
               density: float = 0.3) -> CSCMatrix:
    """Random sparse SPD matrix via symmetric diagonal dominance."""
    mask = rng.random((n, n)) < density
    dense = np.where(mask, rng.uniform(-1.0, 1.0, (n, n)), 0.0)
    dense = (dense + dense.T) / 2.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSCMatrix.from_dense(dense)


def ill_conditioned_spd(rng: np.random.Generator, n: int,
                        log_cond: float = 8.0,
                        density: float = 0.3) -> CSCMatrix:
    """SPD matrix with condition number ~``10**log_cond``.

    A well-conditioned diagonally dominant SPD core is scaled
    symmetrically by ``D = diag(10**u)`` with exponents spanning
    ``[-log_cond/2, log_cond/2]``: ``D A D`` stays SPD with the same
    pattern, but its conditioning is driven by the scaling.
    """
    base = random_spd(rng, n, density=density).to_dense()
    exponents = rng.uniform(-log_cond / 2.0, log_cond / 2.0, n)
    if n >= 2:
        # Pin the extremes so the target conditioning is actually reached.
        exponents[0] = -log_cond / 2.0
        exponents[1] = log_cond / 2.0
    d = 10.0 ** exponents
    return CSCMatrix.from_dense(d[:, None] * base * d[None, :])


def near_singular_spd(rng: np.random.Generator, n: int,
                      shift: float = 1e-8) -> CSCMatrix:
    """Shifted graph Laplacian: PSD + ``shift * I``, condition ~1/shift.

    The Laplacian of a connected graph is singular (constant-vector
    null space); the tiny diagonal shift makes it barely SPD.
    """
    if n == 1:
        return CSCMatrix.from_dense(np.array([[shift]]))
    rows = np.arange(n - 1)
    cols = rows + 1
    # Sprinkle extra random edges on top of the path graph.
    extra = max(0, int(0.5 * n))
    er = rng.integers(0, n, size=extra)
    ec = rng.integers(0, n, size=extra)
    keep = er != ec
    rows = np.concatenate([rows, er[keep]])
    cols = np.concatenate([cols, ec[keep]])
    dense = np.zeros((n, n))
    w = rng.uniform(0.5, 2.0, len(rows))
    dense[rows, cols] -= w
    dense[cols, rows] -= w
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, -dense.sum(axis=1) + shift)
    return CSCMatrix.from_dense(dense)


def random_unsym_dd(rng: np.random.Generator, n: int,
                    density: float = 0.3) -> CSCMatrix:
    """Diagonally dominant unsymmetric matrix (the static-pivoting LU
    regime)."""
    mask = rng.random((n, n)) < density
    dense = np.where(mask, rng.uniform(-1.0, 1.0, (n, n)), 0.0)
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1)
                     + np.abs(dense).sum(axis=0) + 1.0)
    return CSCMatrix.from_dense(dense)


def dense_block_spd(rng: np.random.Generator, n: int) -> CSCMatrix:
    """Block-arrow SPD matrix: dense diagonal blocks plus a dense border.

    Exercises large supernodes, straddle tiles, and amalgamation — the
    "dense-ish" end of the paper's suite (human_gene1 / nd24k character).
    """
    dense = np.zeros((n, n))
    start = 0
    while start < n:
        size = int(rng.integers(1, max(2, n // 3) + 1))
        end = min(n, start + size)
        block = rng.uniform(-1.0, 1.0, (end - start, end - start))
        dense[start:end, start:end] = (block + block.T) / 2.0
        start = end
    border = max(1, n // 8)
    strip = rng.uniform(-1.0, 1.0, (border, n))
    dense[-border:, :] = strip
    dense[:, -border:] = strip.T
    dense = (dense + dense.T) / 2.0
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSCMatrix.from_dense(dense)


def structurally_singular(rng: np.random.Generator, n: int,
                          kind: str) -> CSCMatrix:
    """A matrix every configuration must reject.

    For Cholesky the diagonal entry of one row is removed (a non-SPD
    zero pivot); for LU an entire column is emptied (no perfect row
    matching exists for static pivoting).
    """
    if kind == "cholesky":
        dense = random_spd(rng, n).to_dense()
        k = int(rng.integers(0, n))
        dense[k, k] = 0.0
    else:
        dense = random_unsym_dd(rng, n).to_dense()
        k = int(rng.integers(0, n))
        dense[:, k] = 0.0
    return CSCMatrix.from_dense(dense)


def duplicate_entry_coo(rng: np.random.Generator, n: int
                        ) -> tuple[COOMatrix, CSCMatrix]:
    """Assembly-style COO input with heavy duplication.

    Returns ``(coo, reference)`` where ``reference`` is the canonical
    deduplicated CSC matrix: each logical entry of an SPD matrix is split
    into 1–4 coordinate duplicates, and extra ``(+v, -v)`` pairs that sum
    to exactly zero are sprinkled on structurally-present coordinates.
    ``coo.to_csc()`` must match ``reference`` to summation-order roundoff
    (a few ulps) on every conversion path.
    """
    reference = random_spd(rng, n)
    ref_coo = reference.to_coo()
    rows, cols, vals = [], [], []
    for r, c, v in zip(ref_coo.rows, ref_coo.cols, ref_coo.vals):
        parts = int(rng.integers(1, 5))
        split = rng.dirichlet(np.ones(parts)) * v
        # Dirichlet weights sum to 1 up to roundoff; patch the first part
        # so the duplicate sum is *exactly* the reference value.
        split[0] += v - split.sum()
        for p in split:
            rows.append(int(r))
            cols.append(int(c))
            vals.append(float(p))
    # Zero-sum duplicate pairs on existing coordinates.
    n_pairs = max(1, len(ref_coo.vals) // 8)
    pick = rng.integers(0, len(ref_coo.vals), size=n_pairs)
    for i in pick:
        v = float(rng.uniform(0.5, 2.0))
        for s in (v, -v):
            rows.append(int(ref_coo.rows[i]))
            cols.append(int(ref_coo.cols[i]))
            vals.append(s)
    order = rng.permutation(len(vals))
    coo = COOMatrix(n, n,
                    np.asarray(rows)[order],
                    np.asarray(cols)[order],
                    np.asarray(vals)[order])
    return coo, reference


def permuted_scaled_variant(rng: np.random.Generator,
                            matrix: CSCMatrix) -> CSCMatrix:
    """Random symmetric permutation + symmetric positive scaling of an
    SPD matrix (SPD-preserving; pattern isomorphic)."""
    n = matrix.n_rows
    perm = rng.permutation(n)
    d = 10.0 ** rng.uniform(-2.0, 2.0, n)
    permuted = matrix.permuted(perm)
    coo = permuted.to_coo()
    return CSCMatrix.from_coo(COOMatrix(
        n, n, coo.rows, coo.cols, coo.vals * d[coo.rows] * d[coo.cols],
    ))


def mesh_spd(rng: np.random.Generator, n: int) -> CSCMatrix:
    """Randomly permuted 2-D grid Laplacian (+I): the mesh regime.

    Structured 5-point stencils are where fill-reducing orderings earn
    their keep — the natural order is near-optimal, so the generator
    scrambles the vertex numbering to make the ordering problem real.
    The +I shift keeps the matrix comfortably SPD.
    """
    nx = max(2, int(np.sqrt(n)))
    ny = max(2, n // nx)
    total = nx * ny
    dense = np.zeros((total, total))
    for x in range(nx):
        for y in range(ny):
            v = x * ny + y
            if x + 1 < nx:
                dense[v, v + ny] = dense[v + ny, v] = -1.0
            if y + 1 < ny:
                dense[v, v + 1] = dense[v + 1, v] = -1.0
    np.fill_diagonal(dense, -dense.sum(axis=1) + 1.0)
    perm = rng.permutation(total)
    return CSCMatrix.from_dense(dense[np.ix_(perm, perm)])


def wild_value_spd(rng: np.random.Generator, n: int) -> CSCMatrix:
    """Tridiagonal SPD with entry magnitudes spanning ~12 decades."""
    scale = 10.0 ** rng.uniform(-6.0, 6.0, n)
    dense = np.zeros((n, n))
    for i in range(n - 1):
        w = -min(scale[i], scale[i + 1]) * rng.uniform(0.1, 0.9)
        dense[i, i + 1] = dense[i + 1, i] = w
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + scale)
    return CSCMatrix.from_dense(dense)


# -- fuzz cases ----------------------------------------------------------------


@dataclass
class FuzzCase:
    """One differential-verification input.

    Attributes:
        name: unique, replay-stable label (family + draw parameters).
        family: generator family tag (one counter per family).
        matrix: the canonical CSC input.
        kind: "cholesky" or "lu".
        seed: derived seed for right-hand-side draws.
        expect: "ok" (must factor and solve everywhere) or "singular"
            (every configuration must raise).
        hard: True for inputs where forward-error oracle comparison is
            meaningless (near the conditioning cliff); backward-error and
            cross-configuration agreement are still enforced.
        coo: for duplicate-entry cases, the raw pre-dedup COO input.
    """

    name: str
    family: str
    matrix: CSCMatrix
    kind: str
    seed: int
    expect: str = "ok"
    hard: bool = False
    coo: COOMatrix | None = field(default=None, repr=False)


# Suite entries that stay small at the fuzzing scale (2-D grids and the
# power-law circuit matrix; the 3-D grids bottom out at 4x4x4 = 64+).
_SUITE_FUZZ_NAMES = ("apache2", "BenElechi1", "af_0_k101", "G3_circuit")


def _suite_base(rng: np.random.Generator) -> CSCMatrix:
    from repro.sparse.suite import get_matrix

    name = _SUITE_FUZZ_NAMES[int(rng.integers(0, len(_SUITE_FUZZ_NAMES)))]
    return get_matrix(name, scale=0.005)


_FAMILIES: list[tuple[str, str]] = [
    ("spd_random", "cholesky"),
    ("spd_ill_conditioned", "cholesky"),
    ("spd_near_singular", "cholesky"),
    ("spd_dense_blocks", "cholesky"),
    ("spd_duplicate_coo", "cholesky"),
    ("spd_wild_values", "cholesky"),
    ("spd_permuted_scaled", "cholesky"),
    ("struct_singular_chol", "cholesky"),
    ("lu_unsym_dd", "lu"),
    ("struct_singular_lu", "lu"),
    # Appended after the originals: build_case derives its RNG stream
    # from the family *index*, so adding at the end keeps every existing
    # (family, seed) case byte-identical.
    ("spd_mesh", "cholesky"),
]


def family_names() -> list[str]:
    """The generator family tags, in sweep order."""
    return [name for name, _ in _FAMILIES]


def build_case(family: str, seed: int, max_n: int = 48) -> FuzzCase:
    """Deterministically build one fuzz case for ``(family, seed)``."""
    # Derive the stream from (seed, family index) with a *stable* key —
    # hash() is per-process randomized and would break replayability.
    family_index = family_names().index(family)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(family_index,))
    )
    n = int(rng.integers(2, max(3, max_n + 1)))
    kind = dict(_FAMILIES)[family]
    expect, hard, coo = "ok", False, None
    if family == "spd_random":
        matrix = random_spd(rng, n)
    elif family == "spd_ill_conditioned":
        matrix = ill_conditioned_spd(rng, n,
                                     log_cond=float(rng.uniform(4.0, 10.0)))
        hard = True
    elif family == "spd_near_singular":
        matrix = near_singular_spd(rng, n,
                                   shift=10.0 ** rng.uniform(-9.0, -6.0))
        hard = True
    elif family == "spd_dense_blocks":
        matrix = dense_block_spd(rng, n)
    elif family == "spd_duplicate_coo":
        coo, matrix = duplicate_entry_coo(rng, n)
    elif family == "spd_wild_values":
        matrix = wild_value_spd(rng, n)
        hard = True
    elif family == "spd_mesh":
        matrix = mesh_spd(rng, n)
        n = matrix.n_rows
    elif family == "spd_permuted_scaled":
        matrix = permuted_scaled_variant(rng, _suite_base(rng))
        n = matrix.n_rows
    elif family == "struct_singular_chol":
        matrix = structurally_singular(rng, n, "cholesky")
        expect = "singular"
    elif family == "lu_unsym_dd":
        matrix = random_unsym_dd(rng, n)
    elif family == "struct_singular_lu":
        matrix = structurally_singular(rng, n, "lu")
        expect = "singular"
    else:
        raise ValueError(f"unknown fuzz family {family!r}")
    return FuzzCase(
        name=f"{family}[seed={seed},n={matrix.n_rows}]",
        family=family, matrix=matrix, kind=kind, seed=seed,
        expect=expect, hard=hard, coo=coo,
    )


def case_stream(seed: int, max_n: int = 48):
    """Infinite deterministic stream of fuzz cases, cycling families.

    ``case_stream(seed)`` always yields the same sequence — a failing
    campaign is replayed exactly by its seed.
    """
    round_no = 0
    while True:
        for family, _ in _FAMILIES:
            yield build_case(family, seed + round_no, max_n=max_n)
        round_no += 1
