"""Structural analysis: a 3-D finite-element-style load computation.

Models the Serena / audikw_1 / bone010 class of matrices: a 3-D mesh whose
Cholesky factorization is dominated by a few large separator supernodes.
Shows the supernode-size distribution (the paper's Figure 6 view), then
simulates the factorization on Spatula and prints where cycles and memory
traffic go.

Run:  python examples/structural_analysis.py
"""

import numpy as np

from repro import SparseSolver, SpatulaConfig, symbolic_factorize
from repro.arch.energy import power_breakdown
from repro.arch.sim import SpatulaSim
from repro.sparse import grid_laplacian_3d
from repro.tasks.plan import build_plan


def main() -> None:
    mesh = grid_laplacian_3d(16, seed=11)
    rng = np.random.default_rng(2)
    loads = rng.standard_normal(mesh.n_rows)
    print(f"mesh: {mesh.n_rows} nodes, {mesh.nnz} stiffness entries")

    # Solve the static load problem K u = f.
    solver = SparseSolver(mesh, kind="cholesky", ordering="nd")
    displacements = solver.solve(loads)
    print(f"displacement solve residual: "
          f"{solver.residual_norm(mesh, displacements, loads):.2e}")
    print(f"max |displacement|: {np.abs(displacements).max():.3f}")

    # Supernode structure (Figure 6's view of this matrix).
    symbolic = symbolic_factorize(mesh, kind="cholesky", ordering="nd",
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    sizes = symbolic.supernode_sizes()
    flops = symbolic.supernode_flops().astype(float)
    order = np.argsort(sizes)
    cdf = np.cumsum(flops[order]) / flops.sum()
    print(f"\n{symbolic.n_supernodes} supernodes; largest front "
          f"{sizes.max()} (n={mesh.n_rows})")
    for frac in (0.25, 0.5, 0.9):
        idx = int(np.searchsorted(cdf, frac))
        print(f"  {100 * frac:3.0f}% of FLOPs in supernodes of size <= "
              f"{sizes[order][idx]}")

    # Simulate on Spatula and report the Section 7.3 views.
    cfg = SpatulaConfig.paper()
    plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
    report = SpatulaSim(plan, cfg, matrix_name="mesh-16^3").run()
    print(f"\n{report.summary()}")
    bd = report.cycle_breakdown()
    print("cycle breakdown: " + ", ".join(
        f"{k} {100 * v:.0f}%" for k, v in bd.items() if v > 0.005))
    print("traffic: " + ", ".join(
        f"{k} {v / 1e6:.1f} MB" for k, v in report.traffic_bytes.items()))
    power = power_breakdown(report)
    print("power: " + ", ".join(
        f"{k} {v:.1f} W" for k, v in power.items()))


if __name__ == "__main__":
    main()
