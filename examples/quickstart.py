"""Quickstart: solve a sparse system, then estimate Spatula's speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparseSolver, SpatulaConfig, simulate, symbolic_factorize
from repro.baselines import CPUModel, GPUModel
from repro.sparse import grid_laplacian_3d


def main() -> None:
    # 1. A sparse SPD system: a 14^3 Poisson-style 3-D grid.
    matrix = grid_laplacian_3d(14, seed=7)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(matrix.n_rows)
    print(f"matrix: n={matrix.n_rows}, nnz={matrix.nnz}")

    # 2. Functional solve (analyze -> factorize -> triangular solves).
    solver = SparseSolver(matrix, kind="cholesky", ordering="nd")
    x = solver.solve(b)
    print(f"solve residual ||Ax-b||/||b|| = "
          f"{solver.residual_norm(matrix, x, b):.2e}")
    print(f"factor nnz: {solver.factor_nnz} "
          f"({solver.factor_nnz / matrix.nnz:.1f}x fill)")

    # 3. Timing on the Spatula accelerator (paper configuration).
    symbolic = symbolic_factorize(matrix, kind="cholesky", ordering="nd",
                                  relax_small=32, relax_ratio=0.5,
                                  force_small=64)
    report = simulate(matrix, config=SpatulaConfig.paper(),
                      symbolic=symbolic, matrix_name="grid3d-14")
    print(f"\nSpatula: {report.summary()}")

    # 4. Against the paper's baselines.
    gpu = GPUModel().run(symbolic)
    cpu = CPUModel().run(symbolic)
    print(f"V100 GPU model: {gpu.gflops:8.1f} GFLOP/s  "
          f"-> Spatula speedup {gpu.seconds / report.seconds:6.1f}x")
    print(f"Zen2 CPU model: {cpu.gflops:8.1f} GFLOP/s  "
          f"-> Spatula speedup {cpu.seconds / report.seconds:6.1f}x")


if __name__ == "__main__":
    main()
