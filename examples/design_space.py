"""Design-space exploration: the Figure 20 sweep, runnable.

Sweeps PE count, tile size, cache capacity, and HBM PHYs; prints each
configuration's area and gmean speedup over the V100 GPU model, marking
the paper's selected (Table 2) design point.

Run:  python examples/design_space.py
"""

from repro.eval import EvalSettings, figure20, render_dse


def main() -> None:
    settings = EvalSettings(scale=0.5)
    sweep = [
        (8, 16, 4.0, 1),
        (16, 16, 8.0, 1),
        (32, 16, 8.0, 1),
        (32, 16, 16.0, 2),   # Table 2's selected configuration
        (32, 16, 32.0, 2),
        (64, 16, 16.0, 2),
        (64, 16, 32.0, 4),
        (32, 8, 16.0, 2),
        (32, 32, 16.0, 2),
    ]
    points = figure20(settings, names=["Serena", "bone010", "bmwcra_1"],
                      sweep=sweep)
    print(render_dse(points, "Design-space exploration "
                             "(gmean speedup vs V100 model)"))
    pareto = []
    best = 0.0
    for p in sorted(points, key=lambda q: q["area_mm2"]):
        if p["gmean_speedup"] > best:
            best = p["gmean_speedup"]
            pareto.append(p)
    print("\nPareto frontier:")
    for p in pareto:
        print(f"  {p['n_pes']:>3} PEs, T={p['tile']}, "
              f"{p['cache_mb']:.0f} MB, {p['hbm_phys']} PHYs: "
              f"{p['area_mm2']:.1f} mm^2 -> {p['gmean_speedup']:.1f}x")


if __name__ == "__main__":
    main()
