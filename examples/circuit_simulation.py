"""Transient circuit simulation: the Figure 2 application loop.

A circuit's nonzero pattern is fixed (devices never gain neighbors), so the
symbolic factorization is computed once and amortized; every timestep only
refactorizes numerically and runs two cheap triangular solves.  This is the
workload class (SPICE-style simulators) whose matrices — FullChip, rajat31,
ASIC_680k — GPUs handle worst and Spatula handles best.

Run:  python examples/circuit_simulation.py
"""

import numpy as np

from repro import SparseSolver, SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.arch.solve import simulate_solve
from repro.baselines import CPUModel, GPUModel
from repro.sparse import circuit_like
from repro.sparse.csc import CSCMatrix
from repro.tasks.plan import build_plan


def factor_solve_ratio(factor_report, solve_report) -> float:
    return factor_report.seconds / max(solve_report.seconds, 1e-12)


def conductance_drift(matrix: CSCMatrix, step: int,
                      rng: np.random.Generator) -> CSCMatrix:
    """New device conductances on the same netlist pattern (e.g. nonlinear
    devices re-linearized at a new operating point)."""
    jitter = 1.0 + 0.05 * np.sin(0.3 * step) \
        + 0.01 * rng.standard_normal(len(matrix.data))
    return CSCMatrix(matrix.n_rows, matrix.n_cols, matrix.indptr.copy(),
                     matrix.indices.copy(), matrix.data * jitter)


def main() -> None:
    rng = np.random.default_rng(1)
    netlist = circuit_like(2000, hub_fraction=0.05, aspect=16, seed=3)
    print(f"circuit: {netlist.n_rows} nodes, {netlist.nnz} entries")

    # One-time analysis (symbolic factorization is amortized, Section 2.3).
    solver = SparseSolver(netlist, kind="lu", ordering="amd")
    symbolic = solver.symbolic
    print(f"symbolic: {symbolic.n_supernodes} supernodes, "
          f"{symbolic.flops / 1e6:.1f} MFLOP per numeric factorization")

    # Transient loop: refactorize + solve per timestep.
    n_steps = 5
    voltages = np.zeros(netlist.n_rows)
    currents = rng.standard_normal(netlist.n_rows)
    worst = 0.0
    current_matrix = netlist
    for step in range(n_steps):
        current_matrix = conductance_drift(netlist, step, rng)
        solver.refactorize(current_matrix)
        voltages = solver.solve(currents)
        worst = max(worst,
                    solver.residual_norm(current_matrix, voltages, currents))
    print(f"{n_steps} timesteps solved; worst residual {worst:.2e}")

    # What would each platform spend per numeric factorization?
    cfg = SpatulaConfig.paper()
    plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
    spatula = SpatulaSim(plan, cfg, matrix_name="netlist").run()
    gpu = GPUModel().run(symbolic)
    cpu = CPUModel().run(symbolic)
    print("\nmodeled time per numeric factorization:")
    print(f"  Spatula : {spatula.seconds * 1e6:9.1f} us "
          f"({spatula.achieved_tflops:.2f} TFLOP/s)")
    print(f"  V100 GPU: {gpu.seconds * 1e6:9.1f} us "
          f"({gpu.gflops:.1f} GFLOP/s)  -> "
          f"{gpu.seconds / spatula.seconds:.1f}x slower")
    print(f"  Zen2 CPU: {cpu.seconds * 1e6:9.1f} us "
          f"({cpu.gflops:.1f} GFLOP/s)  -> "
          f"{cpu.seconds / spatula.seconds:.1f}x slower")
    solve = simulate_solve(plan, cfg)
    print(f"  Spatula triangular solve: {solve.seconds * 1e6:.1f} us "
          f"({factor_solve_ratio(spatula, solve):.1f}x cheaper than "
          f"refactorization)")
    bd = spatula.cycle_breakdown()
    print(f"\nSpatula cycle breakdown: "
          f"dgemm {100 * bd['dgemm']:.0f}%, "
          f"gather {100 * bd['gather_updates']:.0f}%, "
          f"stalled {100 * bd['stalled']:.0f}%")


if __name__ == "__main__":
    main()
