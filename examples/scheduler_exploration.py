"""Scheduler exploration: reproduce the paper's scheduling insights.

Three experiments on the same matrices:

1. Figure 14 — Inter vs Intra vs Intra+Inter supernode scheduling;
2. Section 5.1 — breadth-first vs fixed-dimension task emission order;
3. Section 5.1 — in-order dispatch vs an out-of-order dataflow window
   (the paper found < 10% gains, justifying the simpler in-order design).

Run:  python examples/scheduler_exploration.py
"""

from dataclasses import replace

from repro import SpatulaConfig, symbolic_factorize
from repro.arch.sim import SpatulaSim
from repro.sparse import get_matrix, get_spec
from repro.tasks.plan import build_plan

MATRICES = ["Emilia_923", "bmwcra_1", "G3_circuit"]
SCALE = 0.5


def simulate_with(plan, config, name):
    return SpatulaSim(plan, config, matrix_name=name).run()


def main() -> None:
    base = SpatulaConfig.paper()
    print(f"{'Matrix':<14}{'inter':>9}{'intra':>9}{'both':>9}"
          f"{'rowmajor':>10}{'dataflow':>10}   (GFLOP/s)")
    for name in MATRICES:
        spec = get_spec(name)
        matrix = get_matrix(name, scale=SCALE)
        symbolic = symbolic_factorize(
            matrix, kind="cholesky" if spec.kind == "spd" else "lu",
            ordering=spec.ordering, relax_small=32, relax_ratio=0.5,
            force_small=64,
        )
        plan = build_plan(symbolic, tile=base.tile, supertile=base.supertile)

        def gflops(config):
            report = simulate_with(plan, config, name)
            return report.achieved_tflops * 1e3

        results = {
            "inter": gflops(replace(base, policy="inter")),
            "intra": gflops(replace(base, policy="intra")),
            "both": gflops(base),
            "rowmajor": gflops(replace(base, order="rowmajor")),
            "dataflow": gflops(replace(base, dataflow_window=16)),
        }
        print(f"{name:<14}{results['inter']:>9.1f}{results['intra']:>9.1f}"
              f"{results['both']:>9.1f}{results['rowmajor']:>10.1f}"
              f"{results['dataflow']:>10.1f}")
    print("\nExpected shape (paper Sections 4.4 and 5.1):")
    print(" - 'both' (intra+inter) dominates either policy alone;")
    print(" - the fixed-dimension 'rowmajor' order trails breadth-first;")
    print(" - the out-of-order 'dataflow' window adds little over in-order.")


if __name__ == "__main__":
    main()
