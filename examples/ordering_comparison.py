"""Fill-reducing ordering comparison: why the symbolic phase matters.

The quality of the fill-reducing ordering determines the factor's size,
its FLOPs, and the supernode structure Spatula feeds on. This example
compares AMD, nested dissection, RCM, and the natural order on two
structurally different matrices, then simulates the best and worst on
Spatula.

Run:  python examples/ordering_comparison.py
"""

from repro import SpatulaConfig, symbolic_factorize
from repro.arch.sim import SpatulaSim
from repro.sparse import circuit_like, grid_laplacian_3d
from repro.tasks.plan import build_plan

ORDERINGS = ["amd", "nd", "rcm", "natural"]


def analyze(matrix, kind):
    results = {}
    for ordering in ORDERINGS:
        sf = symbolic_factorize(matrix, kind=kind, ordering=ordering,
                                relax_small=32, relax_ratio=0.5,
                                force_small=64)
        results[ordering] = sf
    return results


def main() -> None:
    cfg = SpatulaConfig.paper()
    cases = [
        ("3-D mesh (14^3)", grid_laplacian_3d(14, seed=1), "cholesky"),
        ("circuit (2k nodes)", circuit_like(2000, hub_fraction=0.05,
                                            seed=2), "lu"),
    ]
    for label, matrix, kind in cases:
        print(f"\n{label}: n={matrix.n_rows}, nnz={matrix.nnz}")
        print(f"{'ordering':<10}{'nnz(L)':>10}{'fill':>7}{'MFLOP':>9}"
              f"{'supernodes':>12}{'max front':>11}")
        results = analyze(matrix, kind)
        for ordering, sf in results.items():
            sizes = sf.supernode_sizes()
            print(f"{ordering:<10}{sf.factor_nnz:>10}"
                  f"{sf.factor_nnz / matrix.nnz:>7.1f}"
                  f"{sf.flops / 1e6:>9.1f}{sf.n_supernodes:>12}"
                  f"{sizes.max():>11}")
        best = min(results, key=lambda o: results[o].flops)
        worst = max(results, key=lambda o: results[o].flops)
        for tag, ordering in (("best", best), ("worst", worst)):
            plan = build_plan(results[ordering], tile=cfg.tile,
                              supertile=cfg.supertile)
            report = SpatulaSim(plan, cfg).run()
            print(f"  Spatula with {tag} ordering ({ordering}): "
                  f"{report.cycles} cycles, "
                  f"{report.achieved_tflops:.2f} TFLOP/s")


if __name__ == "__main__":
    main()
