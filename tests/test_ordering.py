"""Tests for fill-reducing orderings and static pivoting."""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.ordering import (
    fill_reducing_ordering,
    minimum_degree,
    nested_dissection,
    rcm,
    static_pivoting,
)
from repro.ordering.graph import (
    bfs_levels,
    pattern_graph,
    pseudo_peripheral_vertex,
)
from repro.ordering.pivoting import apply_static_pivoting
from repro.sparse import (
    banded_spd,
    circuit_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    power_law_spd,
)
from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import elimination_tree
from repro.symbolic.structure import factor_nnz


def bandwidth(matrix, perm):
    coo = matrix.permuted(perm).to_coo()
    off = coo.rows != coo.cols
    if not off.any():
        return 0
    return int(np.abs(coo.rows[off] - coo.cols[off]).max())


def fill_of(matrix, perm):
    permuted = matrix.permuted(perm)
    if not permuted.is_structurally_symmetric():
        permuted = permuted.pattern_symmetrized()
    return factor_nnz(permuted, elimination_tree(permuted))


ALL_METHODS = ["amd", "nd", "rcm", "natural"]


class TestGraphHelpers:
    def test_pattern_graph_symmetric_no_selfloops(self, unsym_small):
        indptr, indices = pattern_graph(unsym_small)
        n = unsym_small.n_rows
        edges = set()
        for v in range(n):
            for u in indices[indptr[v]:indptr[v + 1]]:
                assert u != v
                edges.add((v, int(u)))
        for v, u in edges:
            assert (u, v) in edges

    def test_bfs_levels_on_path(self):
        # Path graph 0-1-2-3.
        dense = np.eye(4) * 3
        for i in range(3):
            dense[i, i + 1] = dense[i + 1, i] = -1
        m = CSCMatrix.from_dense(dense)
        indptr, indices = pattern_graph(m)
        levels, far = bfs_levels(indptr, indices, 0)
        assert list(levels) == [0, 1, 2, 3]
        assert far == 3

    def test_bfs_respects_mask(self):
        dense = np.eye(4) * 3
        for i in range(3):
            dense[i, i + 1] = dense[i + 1, i] = -1
        m = CSCMatrix.from_dense(dense)
        indptr, indices = pattern_graph(m)
        mask = np.array([True, True, False, True])
        levels, _ = bfs_levels(indptr, indices, 0, mask=mask)
        assert levels[2] == -1 and levels[3] == -1  # cut off behind mask

    def test_pseudo_peripheral_on_path_finds_end(self):
        dense = np.eye(6) * 3
        for i in range(5):
            dense[i, i + 1] = dense[i + 1, i] = -1
        m = CSCMatrix.from_dense(dense)
        indptr, indices = pattern_graph(m)
        v = pseudo_peripheral_vertex(indptr, indices, 3)
        assert v in (0, 5)


class TestPermutationValidity:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_is_permutation(self, method, spd_small):
        perm = fill_reducing_ordering(spd_small, method)
        assert sorted(perm.tolist()) == list(range(spd_small.n_rows))

    @pytest.mark.parametrize("method", ["amd", "nd", "rcm"])
    def test_works_on_unsymmetric(self, method, unsym_small):
        perm = fill_reducing_ordering(unsym_small, method)
        assert sorted(perm.tolist()) == list(range(unsym_small.n_rows))

    def test_unknown_method_raises(self, spd_small):
        with pytest.raises(ValueError):
            fill_reducing_ordering(spd_small, "metis")

    @pytest.mark.parametrize("method", ["amd", "nd", "rcm"])
    def test_deterministic(self, method, spd_irregular):
        p1 = fill_reducing_ordering(spd_irregular, method)
        p2 = fill_reducing_ordering(spd_irregular, method)
        assert np.array_equal(p1, p2)

    @pytest.mark.parametrize("method", ["amd", "nd", "rcm"])
    def test_disconnected_graph(self, method):
        blocks = np.zeros((6, 6))
        # Two components: a 3-vertex path and three isolated vertices.
        blocks[:3, :3] = np.eye(3) * 3
        blocks[0, 1] = blocks[1, 0] = -1.0
        blocks[1, 2] = blocks[2, 1] = -1.0
        blocks[3:, 3:] = np.eye(3) * 2
        m = CSCMatrix.from_dense(blocks)
        perm = fill_reducing_ordering(m, method)
        assert sorted(perm.tolist()) == list(range(6))


class TestOrderingQuality:
    def test_rcm_reduces_bandwidth(self):
        m = grid_laplacian_2d(12, seed=1)
        shuffled = m.permuted(np.random.default_rng(0).permutation(m.n_rows))
        perm = rcm(shuffled)
        assert bandwidth(shuffled, perm) < bandwidth(
            shuffled, np.arange(m.n_rows)
        )

    def test_rcm_comparable_to_scipy(self):
        m = grid_laplacian_2d(10, seed=2)
        ours = bandwidth(m, rcm(m))
        ref = bandwidth(m, np.asarray(
            reverse_cuthill_mckee(sp.csc_matrix(m.to_dense()))
        ))
        assert ours <= 2 * max(1, ref)

    def test_amd_beats_natural_on_grid(self):
        m = grid_laplacian_2d(14, seed=3)
        shuffled = m.permuted(np.random.default_rng(1).permutation(m.n_rows))
        amd_fill = fill_of(shuffled, minimum_degree(shuffled))
        natural_fill = fill_of(shuffled, np.arange(m.n_rows))
        assert amd_fill < natural_fill

    def test_nd_beats_natural_on_grid(self):
        m = grid_laplacian_3d(6, seed=4)
        shuffled = m.permuted(np.random.default_rng(2).permutation(m.n_rows))
        nd_fill = fill_of(shuffled, nested_dissection(shuffled))
        natural_fill = fill_of(shuffled, np.arange(m.n_rows))
        assert nd_fill < natural_fill

    def test_amd_handles_hub_graphs(self):
        m = power_law_spd(300, seed=5)
        amd_fill = fill_of(m, minimum_degree(m))
        rcm_fill = fill_of(m, rcm(m))
        assert amd_fill <= rcm_fill

    def test_amd_near_optimal_on_banded(self):
        # A banded matrix has zero fill in natural order; AMD should not
        # be catastrophically worse.
        m = banded_spd(60, 2, seed=6)
        natural_fill = fill_of(m, np.arange(m.n_rows))
        amd_fill = fill_of(m, minimum_degree(m))
        assert amd_fill <= 2 * natural_fill

    def test_nd_leaf_size_respected(self):
        m = grid_laplacian_2d(10, seed=7)
        perm = nested_dissection(m, leaf_size=m.n_rows + 1)
        # Entire graph is one leaf: ordering is by degree.
        assert sorted(perm.tolist()) == list(range(m.n_rows))


class TestStaticPivoting:
    def test_identity_when_diagonal_dominant(self, unsym_small):
        # Diagonally dominant: the greedy match should keep rows in place.
        perm = static_pivoting(unsym_small)
        assert np.array_equal(perm, np.arange(unsym_small.n_rows))

    def test_fixes_zero_diagonal(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        m = CSCMatrix.from_dense(dense)
        permuted, perm = apply_static_pivoting(m)
        assert np.all(permuted.diagonal() != 0)
        assert np.allclose(permuted.to_dense(), dense[perm, :])

    def test_prefers_large_entries(self):
        dense = np.array([[1.0, 100.0], [100.0, 1.0]])
        m = CSCMatrix.from_dense(dense)
        perm = static_pivoting(m)
        # Swapping rows puts the 100s on the diagonal.
        assert list(perm) == [1, 0]

    def test_cyclic_permutation_needed(self):
        # Requires an augmenting path, not just greedy matching.
        dense = np.array([
            [0.0, 1.0, 0.0],
            [0.0, 1.0, 1.0],
            [1.0, 0.0, 0.0],
        ])
        m = CSCMatrix.from_dense(dense)
        permuted, _ = apply_static_pivoting(m)
        assert np.all(permuted.diagonal() != 0)

    def test_structurally_singular_raises(self):
        dense = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            static_pivoting(CSCMatrix.from_dense(dense))

    def test_non_square_raises(self):
        m = CSCMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError):
            static_pivoting(m)

    def test_permutation_is_valid(self):
        m = circuit_like(100, seed=11)
        perm = static_pivoting(m)
        assert sorted(perm.tolist()) == list(range(m.n_rows))


class TestNetworkxOracles:
    """Independent cross-checks against networkx graph algorithms."""

    def test_bfs_levels_match_shortest_paths(self, spd_irregular):
        import networkx as nx

        indptr, indices = pattern_graph(spd_irregular)
        graph = nx.Graph()
        graph.add_nodes_from(range(spd_irregular.n_rows))
        for v in range(spd_irregular.n_rows):
            for u in indices[indptr[v]:indptr[v + 1]]:
                graph.add_edge(v, int(u))
        levels, _ = bfs_levels(indptr, indices, 0)
        dist = nx.single_source_shortest_path_length(graph, 0)
        for v in range(spd_irregular.n_rows):
            assert levels[v] == dist.get(v, -1)

    def test_grid_generator_is_connected(self):
        import networkx as nx

        m = grid_laplacian_2d(8, seed=1)
        indptr, indices = pattern_graph(m)
        graph = nx.Graph()
        graph.add_nodes_from(range(m.n_rows))
        for v in range(m.n_rows):
            for u in indices[indptr[v]:indptr[v + 1]]:
                graph.add_edge(v, int(u))
        assert nx.is_connected(graph)

    def test_circuit_hub_degrees_power_law_ish(self):
        import networkx as nx

        m = circuit_like(3600, hub_fraction=0.3, seed=4)
        indptr, indices = pattern_graph(m)
        graph = nx.Graph()
        for v in range(m.n_rows):
            for u in indices[indptr[v]:indptr[v + 1]]:
                graph.add_edge(v, int(u))
        degrees = sorted((d for _n, d in graph.degree()), reverse=True)
        # Hubs: top degree well above the median.
        assert degrees[0] >= 2 * degrees[len(degrees) // 2]
