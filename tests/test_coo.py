"""Unit tests for the COO sparse format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


def make(n_rows=3, n_cols=3, entries=((0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0))):
    rows = [e[0] for e in entries]
    cols = [e[1] for e in entries]
    vals = [e[2] for e in entries]
    return COOMatrix(n_rows, n_cols, rows, cols, vals)


class TestConstruction:
    def test_shape_and_nnz(self):
        m = make()
        assert m.shape == (3, 3)
        assert m.nnz == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0, 1], [0], [1.0, 2.0])

    def test_out_of_bounds_row_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [2], [0], [1.0])

    def test_out_of_bounds_col_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0], [5], [1.0])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [-1], [0], [1.0])

    def test_empty_matrix(self):
        m = COOMatrix(4, 4, [], [], [])
        assert m.nnz == 0
        assert np.array_equal(m.to_dense(), np.zeros((4, 4)))

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((5, 4))
        dense[np.abs(dense) < 0.7] = 0.0
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_from_dense_drops_zeros(self):
        dense = np.zeros((3, 3))
        dense[1, 1] = 5.0
        assert COOMatrix.from_dense(dense).nnz == 1


class TestDeduplication:
    def test_duplicates_summed(self):
        m = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 4.0])
        d = m.deduplicated()
        assert d.nnz == 2
        assert d.to_dense()[0, 1] == 3.0

    def test_dedup_sorted_by_column_then_row(self):
        m = COOMatrix(3, 3, [2, 0, 1], [1, 1, 0], [1.0, 1.0, 1.0])
        d = m.deduplicated()
        assert list(d.cols) == [0, 1, 1]
        assert list(d.rows) == [1, 0, 2]

    def test_dedup_empty(self):
        d = COOMatrix(2, 2, [], [], []).deduplicated()
        assert d.nnz == 0

    def test_dedup_preserves_dense(self, rng):
        rows = rng.integers(0, 6, 40)
        cols = rng.integers(0, 6, 40)
        vals = rng.standard_normal(40)
        m = COOMatrix(6, 6, rows, cols, vals)
        assert np.allclose(m.to_dense(), m.deduplicated().to_dense())


class TestTransforms:
    def test_transpose(self, rng):
        dense = rng.standard_normal((4, 6))
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.transpose().to_dense(), dense.T)

    def test_transpose_shape(self):
        m = COOMatrix(2, 5, [0], [4], [1.0])
        assert m.transpose().shape == (5, 2)

    def test_symmetrized_is_symmetric(self, rng):
        dense = rng.standard_normal((5, 5))
        m = COOMatrix.from_dense(dense)
        s = m.symmetrized().to_dense()
        assert np.allclose(s, s.T)
        assert np.allclose(s, (dense + dense.T) / 2)

    def test_symmetrize_requires_square(self):
        m = COOMatrix(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.symmetrized()

    def test_lower_triangle(self):
        dense = np.arange(9, dtype=float).reshape(3, 3) + 1
        m = COOMatrix.from_dense(dense)
        low = m.lower_triangle().to_dense()
        assert np.allclose(low, np.tril(dense))

    def test_lower_triangle_strict(self):
        dense = np.ones((3, 3))
        low = COOMatrix.from_dense(dense).lower_triangle(strict=True)
        assert np.allclose(low.to_dense(), np.tril(dense, -1))

    def test_permuted_definition(self, rng):
        dense = rng.standard_normal((5, 5))
        m = COOMatrix.from_dense(dense)
        perm = rng.permutation(5)
        p = m.permuted(perm).to_dense()
        assert np.allclose(p, dense[np.ix_(perm, perm)])

    def test_permuted_identity(self, rng):
        dense = rng.standard_normal((4, 4))
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.permuted(np.arange(4)).to_dense(), dense)

    def test_permuted_requires_square(self):
        m = COOMatrix(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.permuted(np.array([0, 1]))

    def test_permute_then_inverse_roundtrip(self, rng):
        dense = rng.standard_normal((6, 6))
        m = COOMatrix.from_dense(dense)
        perm = rng.permutation(6)
        inverse = np.empty(6, dtype=np.int64)
        inverse[perm] = np.arange(6)
        back = m.permuted(perm).permuted(inverse)
        assert np.allclose(back.to_dense(), dense)


class TestDuplicateSemantics:
    """Duplicate coordinates mean "sum the entries" (finite-element
    assembly convention) on every conversion path, and duplicates that
    sum to exactly zero stay as explicit structural zeros."""

    def dup(self):
        # (0,0): 1+2=3; (1,0): 5-5=0 (structural zero); (2,1): single.
        return COOMatrix(3, 3, [0, 0, 1, 1, 2], [0, 0, 0, 0, 1],
                         [1.0, 2.0, 5.0, -5.0, 4.0])

    def test_to_csc_sums_duplicates(self):
        csc = self.dup().to_csc()
        dense = csc.to_dense()
        assert dense[0, 0] == 3.0
        assert dense[2, 1] == 4.0

    def test_zero_sum_duplicates_stay_structural(self):
        csc = self.dup().to_csc()
        # Three stored entries: (0,0), the explicit zero at (1,0), (2,1).
        assert csc.nnz == 3
        assert 1 in csc.col_rows(0)
        assert csc.to_dense()[1, 0] == 0.0

    def test_to_csc_matches_from_coo_exactly(self):
        from repro.sparse.csc import CSCMatrix

        coo = self.dup()
        a, b = coo.to_csc(), CSCMatrix.from_coo(coo)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)

    def test_all_paths_agree_on_fuzzer_input(self):
        from repro.verify.generators import duplicate_entry_coo

        rng = np.random.default_rng(21)
        coo, reference = duplicate_entry_coo(rng, 8)
        ref = reference.to_dense()
        tol = dict(rtol=0.0, atol=16 * np.finfo(np.float64).eps)
        assert np.allclose(coo.to_dense(), ref, **tol)
        assert np.allclose(coo.to_csc().to_dense(), ref, **tol)
        assert np.allclose(coo.deduplicated().to_dense(), ref, **tol)

    def test_transforms_commute_with_deduplication(self, rng):
        from repro.verify.generators import duplicate_entry_coo

        coo, _ = duplicate_entry_coo(np.random.default_rng(22), 7)
        dedup = coo.deduplicated()
        perm = rng.permutation(7)
        pairs = [
            (coo.permuted(perm), dedup.permuted(perm)),
            (coo.symmetrized(), dedup.symmetrized()),
            (coo.lower_triangle(), dedup.lower_triangle()),
            (coo.transpose(), dedup.transpose()),
        ]
        for with_dups, without in pairs:
            assert np.allclose(with_dups.to_dense(), without.to_dense(),
                               rtol=0.0, atol=1e-13)

    def test_matrix_market_roundtrip_deduplicates(self, tmp_path):
        from repro.sparse.io import read_matrix_market, write_matrix_market

        coo = self.dup()
        path = tmp_path / "dup.mtx"
        write_matrix_market(path, coo)
        back = read_matrix_market(path)
        # The file is canonical: no duplicate coordinates, and the
        # declared nnz is the deduplicated count.
        assert back.nnz == coo.deduplicated().nnz
        keys = set(zip(back.rows.tolist(), back.cols.tolist()))
        assert len(keys) == back.nnz
        assert np.allclose(back.to_dense(), coo.to_dense())

    def test_matrix_market_symmetric_roundtrip_with_duplicates(self,
                                                               tmp_path):
        from repro.sparse.io import read_matrix_market, write_matrix_market
        from repro.verify.generators import duplicate_entry_coo

        coo, reference = duplicate_entry_coo(np.random.default_rng(23), 6)
        path = tmp_path / "sym.mtx"
        write_matrix_market(path, coo, symmetric=True)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), reference.to_dense(),
                           rtol=0.0, atol=1e-13)

    def test_solver_agrees_with_deduplicated_reference(self):
        from repro.numeric import SparseSolver
        from repro.verify.generators import duplicate_entry_coo

        rng = np.random.default_rng(24)
        coo, reference = duplicate_entry_coo(rng, 10)
        b = rng.standard_normal(10)
        x_dup = SparseSolver(coo.to_csc(), kind="cholesky").solve(b)
        x_ref = SparseSolver(reference, kind="cholesky").solve(b)
        assert np.allclose(x_dup, x_ref, rtol=1e-10, atol=1e-12)
