"""Unit tests for the COO sparse format."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


def make(n_rows=3, n_cols=3, entries=((0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0))):
    rows = [e[0] for e in entries]
    cols = [e[1] for e in entries]
    vals = [e[2] for e in entries]
    return COOMatrix(n_rows, n_cols, rows, cols, vals)


class TestConstruction:
    def test_shape_and_nnz(self):
        m = make()
        assert m.shape == (3, 3)
        assert m.nnz == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0, 1], [0], [1.0, 2.0])

    def test_out_of_bounds_row_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [2], [0], [1.0])

    def test_out_of_bounds_col_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [0], [5], [1.0])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(2, 2, [-1], [0], [1.0])

    def test_empty_matrix(self):
        m = COOMatrix(4, 4, [], [], [])
        assert m.nnz == 0
        assert np.array_equal(m.to_dense(), np.zeros((4, 4)))

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((5, 4))
        dense[np.abs(dense) < 0.7] = 0.0
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_from_dense_drops_zeros(self):
        dense = np.zeros((3, 3))
        dense[1, 1] = 5.0
        assert COOMatrix.from_dense(dense).nnz == 1


class TestDeduplication:
    def test_duplicates_summed(self):
        m = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 2.0, 4.0])
        d = m.deduplicated()
        assert d.nnz == 2
        assert d.to_dense()[0, 1] == 3.0

    def test_dedup_sorted_by_column_then_row(self):
        m = COOMatrix(3, 3, [2, 0, 1], [1, 1, 0], [1.0, 1.0, 1.0])
        d = m.deduplicated()
        assert list(d.cols) == [0, 1, 1]
        assert list(d.rows) == [1, 0, 2]

    def test_dedup_empty(self):
        d = COOMatrix(2, 2, [], [], []).deduplicated()
        assert d.nnz == 0

    def test_dedup_preserves_dense(self, rng):
        rows = rng.integers(0, 6, 40)
        cols = rng.integers(0, 6, 40)
        vals = rng.standard_normal(40)
        m = COOMatrix(6, 6, rows, cols, vals)
        assert np.allclose(m.to_dense(), m.deduplicated().to_dense())


class TestTransforms:
    def test_transpose(self, rng):
        dense = rng.standard_normal((4, 6))
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.transpose().to_dense(), dense.T)

    def test_transpose_shape(self):
        m = COOMatrix(2, 5, [0], [4], [1.0])
        assert m.transpose().shape == (5, 2)

    def test_symmetrized_is_symmetric(self, rng):
        dense = rng.standard_normal((5, 5))
        m = COOMatrix.from_dense(dense)
        s = m.symmetrized().to_dense()
        assert np.allclose(s, s.T)
        assert np.allclose(s, (dense + dense.T) / 2)

    def test_symmetrize_requires_square(self):
        m = COOMatrix(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.symmetrized()

    def test_lower_triangle(self):
        dense = np.arange(9, dtype=float).reshape(3, 3) + 1
        m = COOMatrix.from_dense(dense)
        low = m.lower_triangle().to_dense()
        assert np.allclose(low, np.tril(dense))

    def test_lower_triangle_strict(self):
        dense = np.ones((3, 3))
        low = COOMatrix.from_dense(dense).lower_triangle(strict=True)
        assert np.allclose(low.to_dense(), np.tril(dense, -1))

    def test_permuted_definition(self, rng):
        dense = rng.standard_normal((5, 5))
        m = COOMatrix.from_dense(dense)
        perm = rng.permutation(5)
        p = m.permuted(perm).to_dense()
        assert np.allclose(p, dense[np.ix_(perm, perm)])

    def test_permuted_identity(self, rng):
        dense = rng.standard_normal((4, 4))
        m = COOMatrix.from_dense(dense)
        assert np.allclose(m.permuted(np.arange(4)).to_dense(), dense)

    def test_permuted_requires_square(self):
        m = COOMatrix(2, 3, [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.permuted(np.array([0, 1]))

    def test_permute_then_inverse_roundtrip(self, rng):
        dense = rng.standard_normal((6, 6))
        m = COOMatrix.from_dense(dense)
        perm = rng.permutation(6)
        inverse = np.empty(6, dtype=np.int64)
        inverse[perm] = np.arange(6)
        back = m.permuted(perm).permuted(inverse)
        assert np.allclose(back.to_dense(), dense)
