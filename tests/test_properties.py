"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.numeric.dense import (
    dense_cholesky,
    dense_lu_nopivot,
    tsolve_lower_inplace,
)
from repro.numeric import SparseSolver
from repro.ordering import minimum_degree, rcm
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.symbolic.csq import CSQMatrix
from repro.symbolic.etree import elimination_tree, postorder, NO_PARENT
from repro.symbolic.structure import column_structures
from repro.symbolic.tiling import TileGrid, tile_index
from repro.symbolic import symbolic_factorize
from repro.verify.generators import (
    duplicate_entry_coo,
    ill_conditioned_spd,
    near_singular_spd,
    random_spd as fuzz_random_spd,
)
from repro.verify.oracle import backward_error, backward_tolerance


# -- strategies ----------------------------------------------------------------
#
# SPD strategies delegate to the shared fuzzer builders in
# repro.verify.generators (hypothesis draws the size/seed/conditioning
# knobs); sizes are deliberately larger than the original hand-rolled
# strategies, with explicit per-test @settings so tier-1 stays fast.
# ``deadline=None`` is set explicitly everywhere: individual examples
# include factorizations whose first-call cost (analysis cache warmup)
# would otherwise trip hypothesis's per-example deadline on slow CI.

@st.composite
def coo_matrices(draw, max_n=12, square=True):
    n_rows = draw(st.integers(1, max_n))
    n_cols = n_rows if square else draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n_rows * n_cols))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz,
                         max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz,
                         max_size=nnz))
    vals = draw(st.lists(
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        min_size=nnz, max_size=nnz,
    ))
    return COOMatrix(n_rows, n_cols, rows, cols, vals)


@st.composite
def spd_matrices(draw, max_n=16):
    """Random sparse SPD matrices (shared fuzzer builder; hypothesis
    drives size, density, and the generator seed)."""
    n = draw(st.integers(1, max_n))
    density = draw(st.sampled_from([0.1, 0.3, 0.6]))
    seed = draw(st.integers(0, 2 ** 16))
    return fuzz_random_spd(np.random.default_rng(seed), n, density=density)


@st.composite
def adversarial_spd_matrices(draw, max_n=16):
    """SPD matrices across conditioning regimes: well-conditioned,
    ill-conditioned (symmetric scaling), and near-singular (shifted
    Laplacian) — the fuzzer families, driven by hypothesis."""
    n = draw(st.integers(2, max_n))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 16)))
    family = draw(st.sampled_from(["plain", "ill", "near_singular"]))
    if family == "ill":
        return ill_conditioned_spd(
            rng, n, log_cond=draw(st.sampled_from([4.0, 8.0])))
    if family == "near_singular":
        return near_singular_spd(
            rng, n, shift=10.0 ** draw(st.integers(-9, -6)))
    return fuzz_random_spd(rng, n)


# -- COO / CSC properties ------------------------------------------------------

@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_coo_csc_roundtrip_preserves_values(coo):
    dense = coo.to_dense()
    assert np.allclose(CSCMatrix.from_coo(coo).to_dense(), dense)


@given(coo_matrices(square=False))
@settings(max_examples=60, deadline=None)
def test_transpose_involution(coo):
    assert np.allclose(coo.transpose().transpose().to_dense(),
                       coo.to_dense())


@given(coo_matrices(), st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_permutation_preserves_multiset_of_values(coo, seed):
    perm = np.random.default_rng(seed).permutation(coo.n_rows)
    permuted = coo.permuted(perm)
    assert np.allclose(
        sorted(permuted.deduplicated().vals.tolist()),
        sorted(coo.deduplicated().vals.tolist()),
    )


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csc_validate_never_fails_on_from_coo(coo):
    CSCMatrix.from_coo(coo).validate()


@given(coo_matrices(square=False), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_matvec_matches_dense(coo, seed):
    m = CSCMatrix.from_coo(coo)
    x = np.random.default_rng(seed).standard_normal(m.n_cols)
    assert np.allclose(m.matvec(x), m.to_dense() @ x)


# -- etree / symbolic properties --------------------------------------------------

@given(spd_matrices())
@settings(max_examples=40, deadline=None)
def test_etree_parent_above_child(matrix):
    parent = elimination_tree(matrix)
    for j, p in enumerate(parent):
        assert p == NO_PARENT or p > j


@given(spd_matrices())
@settings(max_examples=40, deadline=None)
def test_postorder_is_valid(matrix):
    parent = elimination_tree(matrix)
    post = postorder(parent)
    position = np.empty(len(parent), dtype=np.int64)
    position[post] = np.arange(len(parent))
    for j, p in enumerate(parent):
        if p != NO_PARENT:
            assert position[j] < position[p]


@given(spd_matrices())
@settings(max_examples=30, deadline=None)
def test_structures_contain_matrix_pattern(matrix):
    parent = elimination_tree(matrix)
    structs = column_structures(matrix, parent)
    for j in range(matrix.n_cols):
        below = matrix.col_rows(j)
        below = below[below >= j]
        assert not len(np.setdiff1d(below, structs[j], assume_unique=True))


@given(spd_matrices())
@settings(max_examples=25, deadline=None)
def test_symbolic_tree_always_validates(matrix):
    sf = symbolic_factorize(matrix, kind="cholesky")
    sf.tree.validate()
    assert sf.factor_nnz >= matrix.lower_triangle().nnz


@given(spd_matrices(), st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_solver_residual_always_small(matrix, seed):
    solver = SparseSolver(matrix, kind="cholesky")
    b = np.random.default_rng(seed).standard_normal(matrix.n_rows)
    x = solver.solve(b)
    assert solver.residual_norm(matrix, x, b) < 1e-10


@given(adversarial_spd_matrices(), st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_solver_backward_stable_on_adversarial_spd(matrix, seed):
    """Backward error is O(n * eps) regardless of conditioning — the
    residual bound above does not hold near the conditioning cliff, but
    this one must."""
    solver = SparseSolver(matrix, kind="cholesky")
    b = np.random.default_rng(seed).standard_normal(matrix.n_rows)
    x = solver.solve(b)
    assert backward_error(matrix, x, b) <= backward_tolerance(matrix.n_rows)


@given(st.integers(2, 14), st.integers(0, 2 ** 16))
@settings(max_examples=30, deadline=None)
def test_duplicate_coo_assembly_matches_reference(n, seed):
    """Assembly-style duplicated COO input always reduces to its
    deduplicated reference (up to summation-order roundoff)."""
    coo, reference = duplicate_entry_coo(np.random.default_rng(seed), n)
    assert np.allclose(coo.to_csc().to_dense(), reference.to_dense(),
                       rtol=0.0, atol=1e-13)


# -- ordering properties ------------------------------------------------------

@given(spd_matrices())
@settings(max_examples=30, deadline=None)
def test_orderings_are_permutations(matrix):
    for perm in (minimum_degree(matrix), rcm(matrix)):
        assert sorted(perm.tolist()) == list(range(matrix.n_rows))


# -- dense kernel properties -----------------------------------------------------

@given(st.integers(1, 12), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_cholesky_reconstructs(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a @ a.T + n * np.eye(n)
    lower = dense_cholesky(a)
    assert np.allclose(lower @ lower.T, a, atol=1e-9)


@given(st.integers(1, 10), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_lu_reconstructs(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    lower, upper = dense_lu_nopivot(a)
    assert np.allclose(lower @ upper, a, atol=1e-9)


@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_tsolve_solves(rows, cols, seed):
    rng = np.random.default_rng(seed)
    lower = np.tril(rng.standard_normal((cols, cols))) + cols * np.eye(cols)
    block = rng.standard_normal((rows, cols))
    x = tsolve_lower_inplace(block, lower)
    assert np.allclose(x @ lower.T, block, atol=1e-9)


# -- CSQ properties ----------------------------------------------------------------

@given(st.data())
@settings(max_examples=40, deadline=None)
def test_extend_add_commutes_with_dense(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
    n = data.draw(st.integers(2, 10))
    parent_coords = np.sort(rng.choice(20, size=n, replace=False))
    k = data.draw(st.integers(1, n))
    child_coords = np.sort(rng.choice(parent_coords, size=k, replace=False))
    parent = CSQMatrix(parent_coords, rng.standard_normal((n, n)))
    child = CSQMatrix(child_coords, rng.standard_normal((k, k)))
    dense_parent = np.zeros((20, 20))
    parent.scatter_into_dense(dense_parent)
    dense_child = np.zeros((20, 20))
    child.scatter_into_dense(dense_child)
    parent.extend_add(child)
    combined = np.zeros((20, 20))
    parent.scatter_into_dense(combined)
    assert np.allclose(combined, dense_parent + dense_child)


# -- tiling properties ---------------------------------------------------------------

@given(st.integers(1, 500), st.integers(2, 32))
@settings(max_examples=60, deadline=None)
def test_tile_blocks_cover_front(front, tile):
    grid = TileGrid(front_size=front, n_pivot_cols=front, tile=tile,
                    supertile=4)
    total = sum(grid.block_dim(b) for b in range(grid.n_blocks))
    assert total == front
    assert grid.n_blocks == tile_index(front, tile)
    # Pivot columns are covered exactly once.
    pivots = sum(grid.pivots_in_block(b) for b in range(grid.n_blocks))
    assert pivots == front


@given(st.integers(1, 300), st.integers(1, 300), st.integers(2, 32))
@settings(max_examples=60, deadline=None)
def test_pivot_block_count_consistent(front, pivots, tile):
    pivots = min(front, pivots)
    grid = TileGrid(front_size=front, n_pivot_cols=pivots, tile=tile,
                    supertile=8)
    covered = sum(grid.pivots_in_block(b)
                  for b in range(grid.n_pivot_blocks))
    assert covered == pivots


# -- simulator fuzzing --------------------------------------------------------

@given(spd_matrices(max_n=14), st.sampled_from(["intra+inter", "inter"]),
       st.sampled_from(["bf", "rowmajor"]))
@settings(max_examples=15, deadline=None)
def test_simulator_numerics_fuzz(matrix, policy, order):
    """Any SPD matrix, scheduled any way, must factor correctly in the
    simulator's numeric-execution mode."""
    from repro.arch.config import SpatulaConfig
    from repro.arch.sim import simulate

    config = SpatulaConfig.tiny(policy=policy, order=order)
    report = simulate(matrix, config=config, check_numerics=True)
    assert report.n_tasks > 0


@given(spd_matrices(max_n=12), st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_simulator_flop_conservation_fuzz(matrix, n_pes):
    """Machine FLOPs executed are invariant to the PE count."""
    from repro.arch.config import SpatulaConfig
    from repro.arch.sim import simulate

    reports = [
        simulate(matrix, config=SpatulaConfig.tiny(n_pes=k, cache_banks=2))
        for k in (1, n_pes)
    ]
    assert reports[0].machine_flops == reports[1].machine_flops
