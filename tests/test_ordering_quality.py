"""Cross-checks for the ordering quality harness.

The quality layer must agree with the symbolic analyzer it summarizes:
``OrderingScore.fill`` computed by :func:`score_ordering` for a method
must equal the ``factor_nnz`` that :func:`symbolic_factorize` reports
when told to use the same method.  The gauges it exports must land in
the process metrics registry and flow through into solve artifacts.
"""

import json

import numpy as np
import pytest

from repro.obs.metrics import global_registry
from repro.ordering import (
    OrderingScore,
    compare_orderings,
    export_quality_gauges,
    fill_reducing_ordering,
    score_ordering,
    validate_permutation,
)
from repro.ordering.quality import QUALITY_PREFIX
from repro.sparse import grid_laplacian_2d, random_spd
from repro.symbolic.analyze import symbolic_factorize
from repro.verify.generators import build_case

GOLDEN = {
    "grid7": lambda: grid_laplacian_2d(7, seed=3),
    "grid5x9": lambda: grid_laplacian_2d(5, 9, seed=1),
    "spd200": lambda: random_spd(200, density=0.03, seed=2),
    "mesh_fuzz": lambda: build_case("spd_mesh", 11, max_n=80).matrix,
}


@pytest.mark.parametrize("method", ["amd", "nd", "rcm", "natural"])
@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_score_fill_matches_symbolic_factor_nnz(method, name):
    matrix = GOLDEN[name]()
    perm = fill_reducing_ordering(matrix, method)
    score = score_ordering(matrix, perm, method=method)
    sym = symbolic_factorize(matrix, ordering=method)
    assert score.fill == sym.factor_nnz
    assert score.flops == sym.flops
    # symbolic_factorize attaches the same score to its result.
    assert sym.quality is not None
    assert sym.quality.fill == score.fill
    assert sym.quality.etree_height == score.etree_height


def test_score_fields_are_consistent():
    matrix = GOLDEN["grid7"]()
    score = score_ordering(matrix, fill_reducing_ordering(matrix, "amd"),
                           method="amd")
    assert isinstance(score, OrderingScore)
    assert score.n == matrix.n_rows
    assert score.fill >= matrix.n_rows          # at least the diagonal
    assert score.fill_ratio == pytest.approx(score.fill / matrix.nnz)
    assert 1 <= score.n_levels <= score.n
    assert score.etree_height == score.n_levels
    assert 1 <= score.max_level_width <= score.n
    assert 0.0 < score.level_occupancy <= 1.0
    # Round-trips through its dict form (artifact serialization).
    assert OrderingScore.from_dict(score.to_dict()) == score


def test_simulated_cycles_gauge():
    matrix = grid_laplacian_2d(5, seed=0)
    perm = fill_reducing_ordering(matrix, "amd")
    score = score_ordering(matrix, perm, method="amd", simulate=True)
    assert score.cycles is not None and score.cycles > 0
    assert f"{QUALITY_PREFIX}.cycles" in score.flat_metrics()


def test_validate_permutation_rejects_garbage():
    validate_permutation(np.arange(4, dtype=np.int64), 4)
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 1, 1, 3]), 4)        # repeat
    with pytest.raises(ValueError):
        validate_permutation(np.arange(3), 4)                  # short
    with pytest.raises(ValueError):
        validate_permutation(np.array([0.0, 1.0, 2.0]), 3)     # float
    matrix = GOLDEN["grid7"]()
    with pytest.raises(ValueError):
        score_ordering(matrix, np.zeros(matrix.n_rows, dtype=np.int64))


def test_gauges_land_in_global_registry():
    matrix = GOLDEN["grid5x9"]()
    score = score_ordering(matrix, fill_reducing_ordering(matrix, "rcm"),
                           method="rcm")
    export_quality_gauges(score)
    snapshot = global_registry().snapshot()
    for key, value in score.flat_metrics().items():
        assert snapshot[key] == value
    assert snapshot[f"{QUALITY_PREFIX}.fill"] == score.fill


def test_solver_refreshes_gauges_on_cache_hit():
    """Analysis-cache hits skip symbolic_factorize, so the solver must
    re-export the cached score — otherwise gauges describe whatever
    matrix was analyzed last, not this one."""
    from repro.numeric.solver import SparseSolver

    matrix = GOLDEN["grid7"]()
    SparseSolver(matrix, ordering="rcm")         # warms the analysis cache
    other_matrix = GOLDEN["spd200"]()
    other = score_ordering(other_matrix,
                           fill_reducing_ordering(other_matrix, "amd"))
    export_quality_gauges(other)                 # clobber the gauges
    solver = SparseSolver(matrix, ordering="rcm")  # guaranteed cache hit
    snapshot = global_registry().snapshot()
    assert snapshot[f"{QUALITY_PREFIX}.fill"] == solver.symbolic.quality.fill
    assert snapshot[f"{QUALITY_PREFIX}.fill"] != other.fill


def test_compare_orderings_covers_builtins():
    scores = compare_orderings(GOLDEN["grid7"](),
                               methods=["amd", "rcm", "natural"])
    assert sorted(scores) == ["amd", "natural", "rcm"]
    assert all(s.fill > 0 for s in scores.values())
    # On a shuffled mesh AMD should not lose to the natural order.
    assert scores["amd"].fill <= scores["natural"].fill


def test_solve_artifact_carries_quality(tmp_path, capsys):
    from repro.cli import main

    artifact = tmp_path / "run.json"
    assert main(["solve", "fuzz:spd_mesh@3", "--ordering", "rcm",
                 "--metrics", str(artifact)]) == 0
    payload = json.loads(artifact.read_text())
    quality = payload["attribution"]["ordering_quality"]
    assert quality["method"] == "rcm"
    assert quality["fill"] == payload["metrics"]["ordering.quality.fill"]
    for key in ("ordering.quality.fill", "ordering.quality.flops",
                "ordering.quality.etree_height",
                "ordering.quality.occupancy"):
        assert key in payload["metrics"]
    assert payload["config"]["ordering"] == "rcm"
