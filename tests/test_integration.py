"""End-to-end integration tests crossing all layers."""


from repro import SparseSolver, SpatulaConfig, simulate, symbolic_factorize
from repro.arch.sim import SpatulaSim
from repro.baselines import CPUModel, GPUModel
from repro.sparse import get_matrix, grid_laplacian_3d
from repro.tasks.plan import build_plan


class TestPublicAPI:
    def test_quickstart_flow(self, rng):
        # The README quickstart, as a test.
        A = grid_laplacian_3d(4, seed=0)
        solver = SparseSolver(A, kind="cholesky")
        b = rng.standard_normal(A.n_rows)
        x = solver.solve(b)
        assert solver.residual_norm(A, x, b) < 1e-12
        report = simulate(A, kind="cholesky", config=SpatulaConfig.tiny())
        assert report.achieved_tflops > 0

    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestSimulatorVsBaselinesEndToEnd:
    def test_spatula_beats_both_baselines_on_suite_matrix(self):
        matrix = get_matrix("bmwcra_1", scale=0.3)
        sf = symbolic_factorize(matrix, kind="cholesky", ordering="nd",
                                relax_small=32, relax_ratio=0.5,
                                force_small=64)
        cfg = SpatulaConfig.paper()
        plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
        report = SpatulaSim(plan, cfg).run()
        gpu = GPUModel().run(sf)
        cpu = CPUModel().run(sf)
        assert report.seconds < gpu.seconds
        assert report.seconds < cpu.seconds

    def test_symbolic_reuse_across_sim_and_solver(self, rng):
        matrix = grid_laplacian_3d(4, seed=2)
        sf = symbolic_factorize(matrix, kind="cholesky")
        # Same analysis drives the functional solve and the simulator.
        report = simulate(matrix, config=SpatulaConfig.tiny(), symbolic=sf)
        assert report.algorithmic_flops == sf.flops
        solver = SparseSolver(matrix)
        b = rng.standard_normal(matrix.n_rows)
        assert solver.residual_norm(matrix, solver.solve(b), b) < 1e-12


class TestScalingBehaviour:
    def test_more_work_more_cycles(self):
        small = simulate(grid_laplacian_3d(3, seed=1),
                         config=SpatulaConfig.tiny(), ordering="nd")
        big = simulate(grid_laplacian_3d(5, seed=1),
                       config=SpatulaConfig.tiny(), ordering="nd")
        assert big.cycles > small.cycles
        assert big.algorithmic_flops > small.algorithmic_flops

    def test_utilization_improves_with_matrix_size(self):
        cfg = SpatulaConfig.small()
        small = simulate(grid_laplacian_3d(4, seed=1), config=cfg,
                         ordering="nd")
        big = simulate(grid_laplacian_3d(8, seed=1), config=cfg,
                       ordering="nd")
        assert big.utilization > small.utilization

    def test_scaled_configs_ranked_by_peak(self):
        matrix = grid_laplacian_3d(6, seed=3)
        sf = symbolic_factorize(matrix, ordering="nd")
        seconds = {}
        for name, cfg in [("tiny", SpatulaConfig.tiny()),
                          ("small", SpatulaConfig.small())]:
            plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
            seconds[name] = SpatulaSim(plan, cfg).run().seconds
        assert seconds["small"] < seconds["tiny"]


class TestFunctionalTimingConsistency:
    def test_sim_work_matches_functional_factor(self):
        """The simulator executes exactly the supernodes/tiles the
        functional factorization touches."""
        matrix = grid_laplacian_3d(4, seed=4)
        sf = symbolic_factorize(matrix)
        cfg = SpatulaConfig.tiny()
        plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
        report = SpatulaSim(plan, cfg).run()
        assert report.n_supernodes == sf.n_supernodes
        from repro.numeric import multifrontal_cholesky

        factor = multifrontal_cholesky(matrix, sf)
        assert len(factor.columns) == report.n_supernodes
