"""Tests for the differential verification subsystem (repro.verify).

Covers the generator families, oracle tolerances, the differential
sweep, shrinking/replay, the campaign runner + metrics, the CLI, and —
the acceptance check for the whole subsystem — a mutation test: a
deliberately injected kernel bug must be caught, shrunk to a tiny
replayable case, and the repro must flip back to green once the bug is
removed.
"""

import numpy as np
import pytest

import repro.numeric.cholesky as cholesky_mod
from repro.cli import main
from repro.numeric import SparseSolver
from repro.numeric.dense import partial_cholesky as real_partial_cholesky
from repro.obs.metrics import global_registry
from repro.verify import (
    CaseResult,
    Mismatch,
    Repro,
    SweepAxes,
    VerifyConfig,
    backward_error,
    build_case,
    campaign_artifact,
    case_stream,
    check_against_oracle,
    condition_estimate,
    family_names,
    forward_tolerance,
    load_repro,
    replay_repro,
    run_case,
    run_verification,
    shrink_matrix,
)
from repro.verify.differential import equivalent_axes
from repro.verify.generators import (
    duplicate_entry_coo,
    ill_conditioned_spd,
    near_singular_spd,
    random_spd,
    structurally_singular,
)
from repro.verify.shrink import failure_predicate, principal_submatrix


# -- generators ----------------------------------------------------------------


class TestGenerators:
    def test_build_case_is_deterministic(self):
        for family in family_names():
            a = build_case(family, seed=7, max_n=16)
            b = build_case(family, seed=7, max_n=16)
            assert a.name == b.name
            assert np.array_equal(a.matrix.to_dense(), b.matrix.to_dense())

    def test_different_seeds_differ(self):
        a = build_case("spd_random", seed=1, max_n=16)
        b = build_case("spd_random", seed=2, max_n=16)
        assert not np.array_equal(a.matrix.to_dense(), b.matrix.to_dense())

    def test_case_stream_replays_exactly(self):
        take = 2 * len(family_names())
        first = [c.name for _, c in zip(range(take), case_stream(5, max_n=12))]
        second = [c.name for _, c in zip(range(take), case_stream(5, max_n=12))]
        assert first == second
        # One case per family per round, cycling.
        assert [c.split("[")[0] for c in first[:len(family_names())]] \
            == family_names()

    def test_duplicate_coo_sums_to_reference(self):
        rng = np.random.default_rng(11)
        coo, reference = duplicate_entry_coo(rng, 9)
        assert coo.nnz > reference.nnz  # duplication actually happened
        # Equal up to summation-order roundoff (duplicates are reduced in
        # sorted-coordinate order, not generation order).
        assert np.allclose(coo.to_csc().to_dense(), reference.to_dense(),
                           rtol=0.0, atol=16 * np.finfo(np.float64).eps)

    def test_ill_conditioned_hits_target(self):
        rng = np.random.default_rng(3)
        m = ill_conditioned_spd(rng, 12, log_cond=6.0)
        assert condition_estimate(m) > 1e4

    def test_near_singular_is_barely_spd(self):
        rng = np.random.default_rng(4)
        m = near_singular_spd(rng, 10, shift=1e-8)
        assert condition_estimate(m) > 1e6
        SparseSolver(m, kind="cholesky")  # must still factor

    def test_structurally_singular_is_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            SparseSolver(structurally_singular(rng, 8, "cholesky"),
                         kind="cholesky")
        with pytest.raises(ValueError):
            SparseSolver(structurally_singular(rng, 8, "lu"), kind="lu")


# -- oracle --------------------------------------------------------------------


class TestOracle:
    def test_exact_solution_passes(self):
        rng = np.random.default_rng(0)
        m = random_spd(rng, 10)
        x = rng.standard_normal(10)
        b = m.matvec(x)
        check = check_against_oracle(m, x, b)
        assert check.ok
        assert check.backward < check.backward_tol

    def test_corrupted_solution_fails(self):
        rng = np.random.default_rng(1)
        m = random_spd(rng, 10)
        x = rng.standard_normal(10)
        b = m.matvec(x)
        bad = x * (1.0 + 1e-2)
        check = check_against_oracle(m, bad, b)
        assert not check.ok
        assert "error" in check.detail

    def test_backward_error_panel(self):
        rng = np.random.default_rng(2)
        m = random_spd(rng, 8)
        X = rng.standard_normal((8, 3))
        B = m.matvec(X)
        assert backward_error(m, X, B) < 1e-14

    def test_forward_tolerance_scales_with_conditioning(self):
        assert forward_tolerance(1e8, 10) > 1e6 * forward_tolerance(1.0, 10)


# -- differential sweep --------------------------------------------------------


class TestDifferential:
    def test_every_family_green_under_full_sweep(self):
        for family in family_names():
            case = build_case(family, seed=1, max_n=16)
            result = run_case(case)
            assert not result.failed, (
                f"{case.name}: {[m.detail for m in result.mismatches]}"
            )
            expected = "rejected" if case.expect == "singular" else "ok"
            assert result.outcome == expected

    def test_expected_singular_but_accepted_is_a_mismatch(self):
        rng = np.random.default_rng(9)
        case = build_case("spd_random", seed=9, max_n=10)
        case.expect = "singular"
        result = run_case(case, axes=SweepAxes.quick())
        assert result.failed
        assert result.mismatches[0].axis == "outcome"

    def test_unexpected_rejection_is_a_mismatch(self):
        rng = np.random.default_rng(10)
        case = build_case("struct_singular_chol", seed=10, max_n=10)
        case.expect = "ok"
        result = run_case(case, axes=SweepAxes.quick())
        assert result.failed
        assert result.outcome == "rejected"

    def test_equivalent_axes_groups_numeric_mismatches(self):
        group = equivalent_axes({"ordering"})
        assert "oracle" in group and "workers" in group
        assert equivalent_axes({"outcome"}) == frozenset({"outcome"})


# -- shrinking and replay ------------------------------------------------------


class TestShrink:
    def test_shrink_requires_a_failing_input(self):
        rng = np.random.default_rng(0)
        m = random_spd(rng, 6)
        with pytest.raises(ValueError):
            shrink_matrix(m, lambda _: False, max_seconds=1.0)

    def test_shrink_minimizes_dimension(self):
        rng = np.random.default_rng(1)
        m = random_spd(rng, 14)
        shrunk = shrink_matrix(m, lambda c: c.n_rows >= 3, max_seconds=10.0)
        assert shrunk.n_rows == 3

    def test_principal_submatrix(self):
        rng = np.random.default_rng(2)
        m = random_spd(rng, 8)
        keep = np.array([1, 4, 6])
        sub = principal_submatrix(m, keep)
        assert np.array_equal(sub.to_dense(),
                              m.to_dense()[np.ix_(keep, keep)])

    def test_repro_roundtrip_and_green_replay(self, tmp_path):
        case = build_case("spd_random", seed=3, max_n=10)
        result = CaseResult(case=case, mismatches=[Mismatch(
            case=case.name, axis="oracle", detail="synthetic")])
        repro = Repro.from_failure(result, case.matrix)
        path = repro.save(tmp_path / "case.json")
        loaded = load_repro(path)
        assert loaded.axes == ["oracle"]
        assert np.array_equal(loaded.matrix().to_dense(),
                              case.matrix.to_dense())
        # The underlying stack is healthy, so the replay must be green.
        assert not replay_repro(path, axes=SweepAxes.quick()).failed

    def test_repro_schema_version_enforced(self, tmp_path):
        case = build_case("spd_random", seed=4, max_n=8)
        result = CaseResult(case=case, mismatches=[Mismatch(
            case=case.name, axis="oracle", detail="synthetic")])
        repro = Repro.from_failure(result, case.matrix)
        repro.schema_version = 999
        path = repro.save(tmp_path / "bad.json")
        with pytest.raises(ValueError, match="schema_version"):
            load_repro(path)


# -- campaign runner -----------------------------------------------------------


class TestCampaign:
    def test_smoke_campaign_is_green_and_metered(self, tmp_path):
        before = global_registry().value("verify.cases")
        config = VerifyConfig(seed=3, budget_seconds=120.0, max_cases=10,
                              max_n=14, out_dir=str(tmp_path),
                              axes=SweepAxes.quick())
        summary = run_verification(config)
        assert summary.ok
        assert summary.cases == 10
        assert summary.checks > summary.cases
        assert sum(summary.families.values()) == 10
        assert global_registry().value("verify.cases") - before == 10

    def test_campaign_is_deterministic(self, tmp_path):
        config = VerifyConfig(seed=8, budget_seconds=120.0, max_cases=6,
                              max_n=10, out_dir=str(tmp_path),
                              axes=SweepAxes.quick())
        a = run_verification(config)
        b = run_verification(config)
        assert a.families == b.families
        assert a.checks == b.checks

    def test_campaign_artifact_shape(self, tmp_path):
        config = VerifyConfig(seed=1, budget_seconds=120.0, max_cases=3,
                              max_n=8, out_dir=str(tmp_path),
                              axes=SweepAxes.quick())
        summary = run_verification(config)
        artifact = campaign_artifact(summary, config)
        assert artifact.kind == "verify"
        assert artifact.matrix == "fuzz(seed=1)"
        assert artifact.report["cases"] == 3
        assert "verify.cases" in artifact.metrics


# -- CLI -----------------------------------------------------------------------


class TestCli:
    def test_verify_subcommand_green(self, tmp_path, capsys):
        code = main(["verify", "--seed", "2", "--cases", "5",
                     "--max-n", "10", "--out", str(tmp_path / "repros"),
                     "--metrics", str(tmp_path / "artifact.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: 5 cases" in out
        assert (tmp_path / "artifact.json").exists()

    def test_verify_replay_green_case(self, tmp_path, capsys):
        case = build_case("spd_random", seed=6, max_n=8)
        result = CaseResult(case=case, mismatches=[Mismatch(
            case=case.name, axis="oracle", detail="synthetic")])
        path = Repro.from_failure(result, case.matrix).save(
            tmp_path / "case.json")
        code = main(["verify", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no longer reproduces" in out


# -- mutation check (the subsystem's acceptance test) --------------------------


class TestMutation:
    """A deliberately injected kernel bug must be caught, shrunk to a
    small replayable case, and the repro must go green once the bug is
    removed."""

    @staticmethod
    def _buggy_partial_cholesky(front, n_pivots, block=None):
        real_partial_cholesky(front, n_pivots, block=block)
        # Corrupt the last pivot's diagonal — fires on every front, even
        # the 1x1 fronts of diagonal matrices and fully amalgamated ones.
        if n_pivots >= 1:
            front[n_pivots - 1, n_pivots - 1] *= 1.0 + 1e-3
        return front

    def test_injected_bug_is_caught_shrunk_and_replayable(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(cholesky_mod, "partial_cholesky",
                            self._buggy_partial_cholesky)
        config = VerifyConfig(
            seed=0, budget_seconds=120.0, max_cases=4, max_n=18,
            out_dir=str(tmp_path), shrink_seconds=6.0,
            axes=SweepAxes(workers=(1,), block_sizes=(8,), rhs=2,
                           check_kind_cross=False, check_sims=False),
        )
        summary = run_verification(config)
        assert summary.failures >= 1
        assert summary.repro_paths

        sizes = []
        for path in summary.repro_paths:
            repro = load_repro(path)
            sizes.append(repro.n)
            # With the bug still active the repro reproduces the failure.
            assert replay_repro(path, axes=SweepAxes.quick()).failed
        # Acceptance criterion: shrunk to a <= 12x12 replayable case.
        assert min(sizes) <= 12

        # Remove the bug: every repro must flip to green.
        monkeypatch.undo()
        for path in summary.repro_paths:
            assert not replay_repro(path, axes=SweepAxes.quick()).failed

    def test_failure_predicate_sees_the_bug(self, monkeypatch):
        case = build_case("spd_random", seed=1, max_n=14)
        fails = failure_predicate(case, match_axes={"oracle"})
        assert not fails(case.matrix)
        monkeypatch.setattr(cholesky_mod, "partial_cholesky",
                            self._buggy_partial_cholesky)
        assert fails(case.matrix)
