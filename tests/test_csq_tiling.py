"""Tests for the CSQ format and position-based tiling."""

import numpy as np
import pytest

from repro.symbolic.csq import CSQMatrix
from repro.symbolic.tiling import (
    TileGrid,
    front_tile_footprint_bytes,
    tile_count_lower,
    tile_index,
)


class TestCSQ:
    def test_construction_and_size(self):
        csq = CSQMatrix(np.array([0, 4, 5]))
        assert csq.size == 3
        assert csq.values.shape == (3, 3)

    def test_rejects_unsorted_coords(self):
        with pytest.raises(ValueError):
            CSQMatrix(np.array([3, 1, 2]))

    def test_rejects_duplicate_coords(self):
        with pytest.raises(ValueError):
            CSQMatrix(np.array([1, 1, 2]))

    def test_rejects_bad_value_shape(self):
        with pytest.raises(ValueError):
            CSQMatrix(np.array([0, 1]), np.zeros((3, 3)))

    def test_position_of(self):
        csq = CSQMatrix(np.array([2, 5, 9]))
        assert csq.position_of(5) == 1
        with pytest.raises(KeyError):
            csq.position_of(3)

    def test_positions_of_subset(self):
        csq = CSQMatrix(np.array([1, 4, 6, 8]))
        assert list(csq.positions_of(np.array([4, 8]))) == [1, 3]

    def test_positions_of_missing_raises(self):
        csq = CSQMatrix(np.array([1, 4]))
        with pytest.raises(KeyError):
            csq.positions_of(np.array([1, 5]))

    def test_extend_add_by_coordinate(self):
        parent = CSQMatrix(np.array([0, 2, 4, 6]))
        child = CSQMatrix(np.array([2, 6]),
                          np.array([[1.0, 2.0], [3.0, 4.0]]))
        parent.extend_add(child)
        assert parent.values[1, 1] == 1.0  # (2, 2)
        assert parent.values[1, 3] == 2.0  # (2, 6)
        assert parent.values[3, 1] == 3.0  # (6, 2)
        assert parent.values[3, 3] == 4.0  # (6, 6)
        assert parent.values[0, 0] == 0.0

    def test_extend_add_accumulates(self):
        parent = CSQMatrix(np.array([0, 1]))
        child = CSQMatrix(np.array([1]), np.array([[2.0]]))
        parent.extend_add(child)
        parent.extend_add(child)
        assert parent.values[1, 1] == 4.0

    def test_outer_product_update_semantics(self, rng):
        # The defining CSQ property (Figure 3): outer(v, v) restricted to
        # nonzeros(v) x nonzeros(v) is dense in CSQ positions.
        coords = np.array([0, 3, 4, 7])
        v = rng.standard_normal(4)
        csq = CSQMatrix(coords, np.outer(v, v))
        dense = np.zeros((8, 8))
        csq.scatter_into_dense(dense)
        full_v = np.zeros(8)
        full_v[coords] = v
        assert np.allclose(dense, np.outer(full_v, full_v))

    def test_submatrix(self, rng):
        coords = np.array([1, 3, 5, 7])
        vals = rng.standard_normal((4, 4))
        sub = CSQMatrix(coords, vals).submatrix(2)
        assert np.array_equal(sub.coords, [5, 7])
        assert np.allclose(sub.values, vals[2:, 2:])

    def test_scatter_lower_only(self):
        csq = CSQMatrix(np.array([0, 1]), np.array([[1.0, 9.0], [2.0, 3.0]]))
        dense = np.zeros((2, 2))
        csq.scatter_into_dense(dense, lower_only=True)
        assert dense[0, 1] == 0.0 and dense[1, 0] == 2.0

    def test_copy_independent(self):
        csq = CSQMatrix(np.array([0, 1]))
        dup = csq.copy()
        dup.values[0, 0] = 5.0
        assert csq.values[0, 0] == 0.0


class TestTiling:
    def test_tile_index_ceil(self):
        assert tile_index(16, 16) == 1
        assert tile_index(17, 16) == 2
        assert tile_index(1, 16) == 1

    def test_tile_count_lower_triangle(self):
        assert tile_count_lower(32, 16) == 3  # 2x2 blocks, lower = 3
        assert tile_count_lower(48, 16) == 6

    def test_grid_block_dims(self):
        grid = TileGrid(front_size=40, n_pivot_cols=20, tile=16, supertile=4)
        assert grid.n_blocks == 3
        assert grid.block_dim(0) == 16
        assert grid.block_dim(2) == 8  # partial edge block
        assert grid.block_rows(1) == (16, 32)

    def test_pivot_blocks(self):
        grid = TileGrid(front_size=40, n_pivot_cols=20, tile=16, supertile=4)
        assert grid.n_pivot_blocks == 2
        assert grid.pivots_in_block(0) == 16
        assert grid.pivots_in_block(1) == 4   # partial pivot block
        assert grid.pivots_in_block(2) == 0

    def test_full_vs_lower_tile_counts(self):
        grid = TileGrid(front_size=33, n_pivot_cols=33, tile=16, supertile=4)
        assert grid.n_blocks == 3
        assert grid.n_tiles_full == 9
        assert grid.n_tiles_lower == 6

    def test_supertiles(self):
        grid = TileGrid(front_size=160, n_pivot_cols=160, tile=16,
                        supertile=4)
        assert grid.n_blocks == 10
        assert grid.n_supertiles == 3
        assert grid.supertile_of(0) == 0
        assert grid.supertile_of(7) == 1

    def test_footprint_bytes(self):
        grid = TileGrid(front_size=32, n_pivot_cols=32, tile=16, supertile=4)
        assert grid.tile_bytes() == 16 * 16 * 8
        assert front_tile_footprint_bytes(grid, symmetric=True) \
            == 3 * 2048
        assert front_tile_footprint_bytes(grid, symmetric=False) \
            == 4 * 2048
