"""Regression tests for the per-matrix-family ordering autotuner.

Covers the experience database (trial round-trips through the
:class:`~repro.obs.history.HistoryStore`, corrupt-line tolerance), the
warm-cache short-circuit, ``ordering="auto"`` resolution through
``SparseSolver`` and ``solve --ordering auto`` (AMD fallback on an
empty store), and the acceptance criteria: the tuned pick is never
slower than the measured AMD trials, and numeric results agree across
ordering choices.
"""

import json
import logging

import numpy as np
import pytest

from repro.cli import main
from repro.numeric.solver import SparseSolver
from repro.obs.history import HistoryStore
from repro.obs.metrics import global_registry
from repro.ordering.autotune import (
    Trial,
    TunedConfig,
    autotune,
    best_config,
    matrix_fingerprint,
    resolve_auto,
)
from repro.verify.generators import build_case


@pytest.fixture
def mesh():
    return build_case("spd_mesh", 3, max_n=64).matrix


def make_trial(fingerprint="v1:test", ordering="amd", factorize_s=0.5,
               block_size=64, workers=1):
    return Trial(
        fingerprint=fingerprint, matrix="m", kind="cholesky", n=16,
        ordering=ordering, block_size=block_size, workers=workers,
        analyze_s=0.1, factorize_s=factorize_s, fill=40, flops=200,
    )


class TestTrialStore:
    def test_trial_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path)
        trial = make_trial()
        store.add_trial(trial.to_dict())
        (payload,) = store.trials()
        assert Trial.from_dict(payload) == trial

    def test_add_trial_requires_fingerprint(self, tmp_path):
        store = HistoryStore(tmp_path)
        with pytest.raises(ValueError):
            store.add_trial({"ordering": "amd"})

    def test_trials_filter_by_fingerprint(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.add_trial(make_trial(fingerprint="v1:a").to_dict())
        store.add_trial(make_trial(fingerprint="v1:b").to_dict())
        got = list(store.trials(fingerprint="v1:a"))
        assert len(got) == 1 and got[0]["fingerprint"] == "v1:a"

    def test_corrupt_line_skipped_with_warning(self, tmp_path, caplog):
        store = HistoryStore(tmp_path)
        store.add_trial(make_trial().to_dict())
        with store.trials_path.open("a") as fh:
            fh.write("{not json at all\n")
            fh.write(json.dumps(["a", "list"]) + "\n")
        store.add_trial(make_trial(ordering="rcm").to_dict())
        with caplog.at_level(logging.WARNING, logger="repro.obs.history"):
            payloads = list(store.trials())
        assert [p["ordering"] for p in payloads] == ["amd", "rcm"]
        assert sum("skipping" in r.message for r in caplog.records) == 2

    def test_best_config_picks_lowest_factorize(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.add_trial(make_trial(ordering="amd", factorize_s=0.5).to_dict())
        store.add_trial(make_trial(ordering="rcm", factorize_s=0.2,
                                   block_size=32).to_dict())
        tuned = best_config(store, "v1:test")
        assert tuned == TunedConfig(ordering="rcm", block_size=32,
                                    workers=1, source="tuned")

    def test_best_config_skips_schema_mismatch(self, tmp_path, caplog):
        store = HistoryStore(tmp_path)
        # A future/foreign record that parses as JSON but not as a Trial.
        store.add_trial({"fingerprint": "v1:test", "totally": "different"})
        store.add_trial(make_trial(ordering="nd").to_dict())
        with caplog.at_level(logging.WARNING,
                             logger="repro.ordering.autotune"):
            tuned = best_config(store, "v1:test")
        assert tuned is not None and tuned.ordering == "nd"
        assert any("malformed trial" in r.message for r in caplog.records)


class TestAutotune:
    def test_sweep_records_trials(self, tmp_path, mesh):
        store = HistoryStore(tmp_path)
        result = autotune(mesh, store, budget="small", matrix_name="mesh")
        assert not result.from_cache
        # small budget: 2 orderings x 2 block sizes x 1 worker count.
        assert len(result.trials) == 4
        assert len(list(store.trials())) == 4
        assert result.config.source == "tuned"
        assert result.fingerprint == matrix_fingerprint(mesh)
        reg = global_registry()
        assert reg.gauge("ordering.autotune.trials").value == 4.0

    def test_warm_cache_skips_sweep(self, tmp_path, mesh):
        store = HistoryStore(tmp_path)
        first = autotune(mesh, store, budget="small")
        size_before = store.trials_path.stat().st_size
        second = autotune(mesh, store, budget="small")
        assert second.from_cache and not second.trials
        assert second.config == first.config
        assert store.trials_path.stat().st_size == size_before

    def test_force_resweeps(self, tmp_path, mesh):
        store = HistoryStore(tmp_path)
        autotune(mesh, store, budget="small")
        result = autotune(mesh, store, budget="small", force=True)
        assert not result.from_cache
        assert len(list(store.trials())) == 8

    def test_unknown_budget(self, tmp_path, mesh):
        with pytest.raises(ValueError, match="unknown budget"):
            autotune(mesh, HistoryStore(tmp_path), budget="huge")

    def test_winner_no_slower_than_amd_trials(self, tmp_path, mesh):
        """Acceptance: the tuned pick's measured factorize time is no
        worse than any measured AMD trial (AMD is in every sweep grid,
        so the argmin can never lose to the AMD default)."""
        result = autotune(mesh, HistoryStore(tmp_path), budget="small")
        winner_s = min(t.factorize_s for t in result.trials
                       if (t.ordering, t.block_size, t.workers)
                       == (result.config.ordering, result.config.block_size,
                           result.config.workers))
        amd_s = min(t.factorize_s for t in result.trials
                    if t.ordering == "amd")
        assert winner_s <= amd_s


class TestResolveAuto:
    def test_fallback_without_store(self, mesh):
        tuned = resolve_auto(mesh)
        assert tuned == TunedConfig(ordering="amd", source="fallback")

    def test_fallback_on_empty_store(self, tmp_path, mesh):
        tuned = resolve_auto(mesh, store=HistoryStore(tmp_path))
        assert tuned.ordering == "amd" and tuned.source == "fallback"
        assert tuned.block_size is None and tuned.workers is None

    def test_warm_store_serves_tuned_config(self, tmp_path, mesh):
        store = HistoryStore(tmp_path)
        swept = autotune(mesh, store, budget="small")
        tuned = resolve_auto(mesh, store=store)
        assert tuned == swept.config
        # Accepts a path string too (what the CLI/serve layer pass).
        assert resolve_auto(mesh, store=str(tmp_path)) == swept.config

    def test_solver_auto_falls_back_to_amd(self, tmp_path, mesh):
        solver = SparseSolver(mesh, ordering="auto",
                              tune_store=HistoryStore(tmp_path),
                              use_cache=False)
        assert solver.ordering == "amd"

    def test_solver_auto_uses_warm_store(self, tmp_path, mesh):
        store = HistoryStore(tmp_path)
        swept = autotune(mesh, store, budget="small")
        solver = SparseSolver(mesh, ordering="auto", tune_store=store,
                              use_cache=False)
        assert solver.ordering == swept.config.ordering
        assert solver.block_size == swept.config.block_size
        # Explicit knobs beat tuned ones.
        pinned = SparseSolver(mesh, ordering="auto", tune_store=store,
                              block_size=48, use_cache=False)
        assert pinned.block_size == 48


class TestCLI:
    def test_solve_auto_empty_store_falls_back(self, tmp_path, capsys):
        assert main(["solve", "fuzz:spd_mesh@3", "--ordering", "auto",
                     "--tune-store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "ordering auto -> amd" in out

    def test_solve_auto_warm_store(self, tmp_path, capsys, mesh):
        store = tmp_path / "store"
        assert main(["autotune", "fuzz:spd_mesh@3", "--budget", "small",
                     "--store", str(store)]) == 0
        swept = resolve_auto(build_case("spd_mesh", 3, max_n=96).matrix,
                             store=str(store))
        assert swept.source == "tuned"
        assert main(["solve", "fuzz:spd_mesh@3", "--ordering", "auto",
                     "--tune-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert f"ordering auto -> {swept.ordering}" in out

    def test_autotune_cache_hit_message(self, tmp_path, capsys):
        store = tmp_path / "store"
        args = ["autotune", "fuzz:spd_mesh@3", "--store", str(store)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_autotune_metrics_artifact(self, tmp_path, capsys):
        store = tmp_path / "store"
        artifact = tmp_path / "autotune.json"
        assert main(["autotune", "fuzz:spd_mesh@3", "--store", str(store),
                     "--metrics", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert "quality" in payload["report"]
        assert payload["report"]["quality"]["fill"] > 0
        assert "ordering.quality.fill" in payload["metrics"]


def test_numeric_results_agree_across_orderings(mesh):
    """Acceptance: ordering choice changes speed, never the answer."""
    rng = np.random.default_rng(0)
    b = rng.standard_normal(mesh.n_rows)
    dense = np.linalg.solve(mesh.to_dense(), b)
    for ordering in ("amd", "nd", "rcm", "natural"):
        solver = SparseSolver(mesh, ordering=ordering, use_cache=False)
        solver.factorize()
        x = solver.solve(b)
        assert np.allclose(x, dense, rtol=1e-9, atol=1e-11), ordering
