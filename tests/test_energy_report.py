"""Tests for the area/power models and the text renderers."""

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.energy import (
    area_breakdown,
    power_breakdown,
    _PJ_PER_FLOP,
)
from repro.arch.stats import SimReport
from repro.eval.report import (
    render_cdf,
    render_cycle_breakdown,
    render_dse,
    render_power,
    render_traffic,
)
from repro.tasks.task import TaskType


def synthetic_report(cycles=1_000_000, flops=None, dram_bytes=0,
                     config=None):
    """A hand-built report for calibration-style checks."""
    config = config or SpatulaConfig.paper()
    if flops is None:
        flops = 0
    return SimReport(
        config=config,
        matrix_name="synthetic",
        kind="cholesky",
        n=1000,
        cycles=cycles,
        algorithmic_flops=flops,
        machine_flops=flops,
        n_tasks=1,
        n_supernodes=1,
        busy_cycles_by_type={t: 0 for t in TaskType},
        traffic_bytes={"comp_load": dram_bytes, "gather_load": 0,
                       "factor_load": 0, "store_spill": 0,
                       "store_result": 0},
        cache_hits=0,
        cache_misses=0,
        cache_allocations=0,
    )


class TestAreaModel:
    def test_tile_scaling_quadratic(self):
        t8 = area_breakdown(SpatulaConfig.paper(tile=8))
        t32 = area_breakdown(SpatulaConfig.paper(tile=32))
        assert t32["PEs"] == pytest.approx(16 * t8["PEs"])

    def test_cache_scaling_linear(self):
        small = area_breakdown(SpatulaConfig.paper(cache_mb=8.0))
        big = area_breakdown(SpatulaConfig.paper(cache_mb=32.0))
        assert big["Cache"] == pytest.approx(4 * small["Cache"])

    def test_phy_scaling(self):
        one = area_breakdown(SpatulaConfig.paper(hbm_phys=1))
        four = area_breakdown(SpatulaConfig.paper(hbm_phys=4))
        assert four["HBM PHYs"] == pytest.approx(4 * one["HBM PHYs"])

    def test_total_is_sum(self):
        areas = area_breakdown(SpatulaConfig.paper())
        parts = sum(v for k, v in areas.items() if k != "Total")
        assert areas["Total"] == pytest.approx(parts)


class TestPowerCalibration:
    def test_full_utilization_near_paper_envelope(self):
        # At the paper's gmean operating point (~10.7 TFLOP/s machine
        # throughput, ~400 GB/s DRAM), total power should land in the
        # neighbourhood of the reported 146 W average.
        cfg = SpatulaConfig.paper()
        cycles = 1_000_000
        flops = int(10.7e12 * cycles / (cfg.freq_ghz * 1e9))
        dram = int(400e9 * cycles / (cfg.freq_ghz * 1e9))
        report = synthetic_report(cycles, flops, dram, cfg)
        # Cache/NoC activity roughly tracks compute traffic.
        report.cache_hits = dram // cfg.tile_bytes * 4
        power = power_breakdown(report)
        assert 90 < power["Total"] < 220
        assert power["PEs"] > power["Total"] / 2  # Figure 18's PE share

    def test_idle_power_is_static_only(self):
        report = synthetic_report(flops=0, dram_bytes=0)
        power = power_breakdown(report)
        assert 0 < power["Total"] < 30  # leakage + clocks only

    def test_power_scales_with_flops(self):
        lo = power_breakdown(synthetic_report(flops=10 ** 12))
        hi = power_breakdown(synthetic_report(flops=5 * 10 ** 12))
        gained = hi["PEs"] - lo["PEs"]
        want = _PJ_PER_FLOP * 4e12 * 1e-12 / synthetic_report().seconds
        assert gained == pytest.approx(want, rel=1e-6)

    def test_zero_cycle_report_safe(self):
        power = power_breakdown(synthetic_report(cycles=0))
        assert power["Total"] == 0.0


class TestRenderers:
    def test_cycle_breakdown_render(self):
        entries = [{"matrix": "m1", "dgemm": 0.5, "tsolve": 0.1,
                    "dchol": 0.05, "dlu": 0.0, "gather_updates": 0.15,
                    "stalled": 0.2}]
        text = render_cycle_breakdown(entries, "t")
        assert "m1" in text and "50.0%" in text

    def test_traffic_render(self):
        entries = [{"matrix": "m1", "total_gb": 1.5, "avg_gbs": 300.0,
                    "comp_load": 0.2, "gather_load": 0.1,
                    "factor_load": 0.1, "store_spill": 0.3,
                    "store_result": 0.3}]
        text = render_traffic(entries, "t")
        assert "300" in text and "1.50" in text

    def test_power_render(self):
        entries = [{"matrix": "m1", "PEs": 80.0, "Cache": 20.0,
                    "NoC": 10.0, "HBM": 30.0, "Total": 140.0}]
        text = render_power(entries, "t")
        assert "140.0W" in text

    def test_cdf_render_empty(self):
        assert "empty" in render_cdf("x", np.array([]), np.array([]), "s")

    def test_cdf_render_samples(self):
        text = render_cdf("m", np.array([1, 2, 4, 8]),
                          np.array([0.1, 0.5, 0.9, 1.0]), "size",
                          n_points=2)
        assert "size<=1" in text and "size<=8" in text

    def test_dse_render_marks_selected(self):
        points = [
            {"n_pes": 8, "tile": 16, "cache_mb": 4.0, "hbm_phys": 1,
             "area_mm2": 30.0, "gmean_speedup": 5.0, "selected": False},
            {"n_pes": 32, "tile": 16, "cache_mb": 16.0, "hbm_phys": 2,
             "area_mm2": 107.7, "gmean_speedup": 15.0, "selected": True},
        ]
        text = render_dse(points, "t")
        assert "<- selected" in text
        # Sorted by area: the small config prints first.
        assert text.index("30.0") < text.index("107.7")
