"""Tests for MatrixMarket IO."""

import gzip

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market


def test_roundtrip_general(tmp_path, rng):
    dense = rng.standard_normal((6, 4))
    dense[np.abs(dense) < 0.8] = 0.0
    m = COOMatrix.from_dense(dense)
    path = tmp_path / "a.mtx"
    write_matrix_market(path, m)
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), dense)


def test_roundtrip_symmetric(tmp_path, spd_small):
    path = tmp_path / "s.mtx"
    write_matrix_market(path, spd_small.to_coo(), symmetric=True)
    back = CSCMatrix.from_coo(read_matrix_market(path))
    assert np.allclose(back.to_dense(), spd_small.to_dense())


def test_symmetric_file_smaller(tmp_path, spd_small):
    p1 = tmp_path / "full.mtx"
    p2 = tmp_path / "sym.mtx"
    write_matrix_market(p1, spd_small.to_coo())
    write_matrix_market(p2, spd_small.to_coo(), symmetric=True)
    assert p2.stat().st_size < p1.stat().st_size


def test_pattern_field(tmp_path):
    path = tmp_path / "p.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 2\n2 1\n3 3\n"
    )
    m = read_matrix_market(path)
    assert m.to_dense()[1, 0] == 1.0
    assert m.to_dense()[2, 2] == 1.0


def test_integer_field(tmp_path):
    path = tmp_path / "i.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n1 2 7\n"
    )
    assert read_matrix_market(path).to_dense()[0, 1] == 7.0


def test_comments_and_blanks_skipped(tmp_path):
    path = tmp_path / "c.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "\n"
        "2 2 1\n"
        "% another\n"
        "1 1 3.5\n"
    )
    assert read_matrix_market(path).to_dense()[0, 0] == 3.5


def test_gzip_support(tmp_path, rng):
    dense = rng.standard_normal((3, 3))
    m = COOMatrix.from_dense(dense)
    plain = tmp_path / "g.mtx"
    write_matrix_market(plain, m)
    gz = tmp_path / "g.mtx.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    assert np.allclose(read_matrix_market(gz).to_dense(), dense)


def test_rejects_non_matrixmarket(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("not a matrix\n1 2 3\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_rejects_array_format(tmp_path):
    path = tmp_path / "arr.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_rejects_truncated(tmp_path):
    path = tmp_path / "t.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_rejects_complex_field(tmp_path):
    path = tmp_path / "cx.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(path)
