"""Tests for the named evaluation-matrix suite."""

import numpy as np
import pytest

from repro.sparse.suite import (
    cholesky_suite,
    get_matrix,
    get_spec,
    lu_suite,
    suite_names,
)


def test_twenty_matrices_each():
    assert len(cholesky_suite()) == 20
    assert len(lu_suite()) == 20


def test_paper_table3_order_preserved():
    names = [s.name for s in cholesky_suite()]
    assert names[0] == "Serena"
    assert names[-1] == "G3_circuit"
    assert "audikw_1" in names and "bone010" in names


def test_paper_table4_order_preserved():
    names = [s.name for s in lu_suite()]
    assert names[0] == "cage13"
    assert names[-1] == "rajat31"
    assert "FullChip" in names and "atmosmodd" in names


def test_no_duplicate_names():
    names = suite_names()
    assert len(names) == len(set(names)) == 40


def test_kinds_consistent():
    for spec in cholesky_suite():
        assert spec.kind == "spd"
    for spec in lu_suite():
        assert spec.kind == "unsym"


def test_get_spec_unknown_raises():
    with pytest.raises(KeyError):
        get_spec("not_a_matrix")


def test_get_matrix_bad_scale():
    with pytest.raises(ValueError):
        get_matrix("Serena", scale=0.0)


@pytest.mark.parametrize("name", ["Serena", "G3_circuit"])
def test_spd_suite_matrices_are_symmetric(name):
    m = get_matrix(name, scale=0.3)
    m.validate()
    assert m.is_symmetric()


@pytest.mark.parametrize("name", ["FullChip", "kkt_power", "language"])
def test_lu_suite_matrices_valid(name):
    m = get_matrix(name, scale=0.3)
    m.validate()
    assert m.n_rows == m.n_cols
    assert np.all(m.diagonal() != 0)


def test_scale_shrinks_matrices():
    small = get_matrix("Serena", scale=0.3)
    base = get_matrix("Serena", scale=1.0)
    assert small.n_rows < base.n_rows


def test_suite_deterministic():
    a = get_matrix("atmosmodd", scale=0.4)
    b = get_matrix("atmosmodd", scale=0.4)
    assert np.array_equal(a.indices, b.indices)
    assert np.allclose(a.data, b.data)


def test_orderings_are_known_methods():
    for spec in cholesky_suite() + lu_suite():
        assert spec.ordering in ("amd", "nd", "rcm", "natural")


def test_suite_names_filter():
    assert len(suite_names("spd")) == 20
    assert len(suite_names("unsym")) == 20
    assert set(suite_names("spd")) | set(suite_names("unsym")) \
        == set(suite_names())
