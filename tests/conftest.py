"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.obs import telemetry
from repro.obs.metrics import reset_global_registry
from repro.obs.spans import disable_tracing, get_tracer
from repro.sparse import (
    circuit_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    power_law_spd,
    random_spd,
    random_unsymmetric,
)


@pytest.fixture(autouse=True)
def _isolate_observability_state():
    """Reset every process-global observability singleton around each
    test: the metrics registry, the span tracer (disabled + empty), any
    open telemetry sink, and the telemetry env handshake.  Tests that
    need counters or tracing enable them locally; none may depend on
    state leaked by an earlier test.
    """
    reset_global_registry()
    disable_tracing()
    get_tracer().reset()
    telemetry.stop(dump_registry=False)
    for key in (telemetry.ENV_DIR, telemetry.ENV_RUN,
                telemetry.ENV_PARENT):
        os.environ.pop(key, None)
    yield
    telemetry.stop(dump_registry=False)
    disable_tracing()
    get_tracer().reset()
    reset_global_registry()
    for key in (telemetry.ENV_DIR, telemetry.ENV_RUN,
                telemetry.ENV_PARENT):
        os.environ.pop(key, None)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def spd_small():
    """A small SPD matrix with interesting structure (2-D grid)."""
    return grid_laplacian_2d(7, seed=3)


@pytest.fixture
def spd_medium():
    """A medium SPD matrix (3-D grid, real fill-in)."""
    return grid_laplacian_3d(5, seed=4)


@pytest.fixture
def spd_irregular():
    """An irregular SPD matrix (power-law circuit graph)."""
    return power_law_spd(150, seed=5)


@pytest.fixture
def spd_dense_ish():
    """A dense-ish random SPD matrix (big supernodes after fill)."""
    return random_spd(60, density=0.1, seed=6)


@pytest.fixture
def unsym_small():
    """A small unsymmetric matrix (circuit-like)."""
    return circuit_like(100, seed=7)


@pytest.fixture
def unsym_random():
    return random_unsymmetric(80, density=0.08, seed=8)


@pytest.fixture
def tiny_config():
    return SpatulaConfig.tiny()


@pytest.fixture
def small_config():
    return SpatulaConfig.small()
