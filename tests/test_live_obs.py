"""Tests for repro.obs.live — the windowed, memory-bounded primitives
behind the serve layer's live observability (rolling-window rings,
top-K exemplars, sparklines, Prometheus text rendering)."""

import threading

import numpy as np
import pytest

from repro.obs.live import (
    ExemplarRing,
    RollingWindow,
    flatten_stats,
    prometheus_text,
    sparkline,
)


class TestRollingWindow:
    def test_empty_snapshot_is_zeroed_not_nan(self):
        w = RollingWindow(capacity=8)
        snap = w.snapshot(window_s=60.0, now=100.0)
        assert snap["count"] == 0
        assert snap["rate_per_s"] == 0.0
        for stat in ("mean", "p50", "p95", "p99", "max"):
            assert snap[stat] == 0.0
            assert not np.isnan(snap[stat])

    def test_cumulative_exact_while_under_capacity(self):
        w = RollingWindow(capacity=128)
        values = [float(i) for i in range(100)]
        for i, v in enumerate(values):
            w.append(v, t=float(i))
        assert w.count() == 100
        assert w.retained() == 100
        snap = w.snapshot(window_s=1e9, now=100.0)
        assert snap["count"] == 100
        assert snap["mean"] == pytest.approx(np.mean(values))
        assert snap["p50"] == pytest.approx(np.percentile(values, 50))
        assert snap["max"] == 99.0

    def test_wrap_around_keeps_newest_and_lifetime_count(self):
        w = RollingWindow(capacity=16)
        for i in range(50):
            w.append(float(i), t=float(i))
        # Ring retains only the newest `capacity` samples...
        assert w.retained() == 16
        vals = w.values(window_s=1e9, now=50.0)
        assert sorted(vals) == [float(i) for i in range(34, 50)]
        # ...but the lifetime count survives the wrap exactly.
        assert w.count() == 50
        assert w.snapshot(1e9, now=50.0)["total_count"] == 50

    def test_lifetime_max_survives_eviction(self):
        w = RollingWindow(capacity=4)
        w.append(1000.0, t=0.0)          # spike, then evicted
        for i in range(10):
            w.append(1.0, t=1.0 + i)
        assert 1000.0 not in w.values(1e9, now=20.0)
        assert w.total_max == 1000.0

    def test_window_filters_by_timestamp(self):
        w = RollingWindow(capacity=64)
        for t in (0.0, 10.0, 50.0, 58.0, 59.5):
            w.append(t, t=t)
        recent = w.values(window_s=10.0, now=60.0)
        assert sorted(recent) == [50.0, 58.0, 59.5]
        snap = w.snapshot(window_s=10.0, now=60.0)
        assert snap["count"] == 3
        assert snap["rate_per_s"] == pytest.approx(0.3)
        # Widening the window picks everything back up.
        assert w.snapshot(window_s=100.0, now=60.0)["count"] == 5

    def test_concurrent_appends_are_not_lost(self):
        w = RollingWindow(capacity=4096)

        def pump(base):
            for i in range(250):
                w.append(float(base + i))

        threads = [threading.Thread(target=pump, args=(j * 1000,))
                   for j in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert w.count() == 1000
        assert w.retained() == 1000

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RollingWindow(capacity=0)


class TestExemplarRing:
    def test_keeps_top_k_by_score(self):
        ring = ExemplarRing(k=3)
        for score in (5.0, 1.0, 9.0, 3.0, 7.0, 2.0):
            ring.offer(score, {"id": score})
        snap = ring.snapshot()
        assert [e["score"] for e in snap] == [9.0, 7.0, 5.0]
        assert snap[0]["id"] == 9.0

    def test_offer_reports_admission_and_threshold(self):
        ring = ExemplarRing(k=2)
        assert ring.offer(1.0, {}) is True
        assert ring.offer(2.0, {}) is True
        assert ring.threshold() == 1.0      # min of the kept set
        assert ring.offer(0.5, {}) is False  # below the bar
        assert ring.offer(3.0, {}) is True
        assert ring.threshold() == 2.0

    def test_offered_counts_everything(self):
        ring = ExemplarRing(k=1)
        for s in (1.0, 2.0, 0.1):
            ring.offer(s, {})
        assert ring.offered == 3
        assert len(ring.snapshot()) == 1


class TestRendering:
    def test_sparkline_shape_and_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([5.0, 5.0, 5.0])
        assert len(flat) == 3 and len(set(flat)) == 1

    def test_flatten_stats_dotted_paths(self):
        flat = flatten_stats(
            {"a": {"b": 1, "c": {"d": 2.5}}, "ok": True,
             "skip": "strings are not metrics", "list": [1, 2]},
            prefix="serve")
        assert flat["serve.a.b"] == 1
        assert flat["serve.a.c.d"] == 2.5
        assert flat["serve.ok"] == 1          # bools become 0/1
        assert "serve.skip" not in flat
        assert "serve.list" not in flat

    def test_prometheus_text_format(self):
        text = prometheus_text({"serve.window.p50_ms": 1.5,
                                "health.ok": 1}, prefix="repro_")
        lines = text.splitlines()
        assert "# TYPE repro_serve_window_p50_ms gauge" in lines
        assert "repro_serve_window_p50_ms 1.5" in lines
        assert "repro_health_ok 1" in lines
        # Names must be Prometheus-legal: no dots, no leading digit.
        for line in lines:
            if not line.startswith("#"):
                name = line.split()[0]
                assert "." not in name and not name[0].isdigit()
