"""Tests for elimination-tree construction and traversals."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.symbolic.etree import (
    NO_PARENT,
    elimination_tree,
    etree_children,
    etree_heights,
    etree_levels,
    postorder,
)


def brute_force_etree(dense):
    """Reference: parent(j) = min row > j of L's column j, via dense
    Cholesky-like symbolic elimination."""
    n = dense.shape[0]
    pattern = (dense != 0).astype(bool)
    np.fill_diagonal(pattern, True)
    for k in range(n):
        below = np.nonzero(pattern[k + 1:, k])[0] + k + 1
        for i in below:
            pattern[below, i] = True
            pattern[i, below] = True
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n):
        below = np.nonzero(pattern[j + 1:, j])[0]
        if len(below):
            parent[j] = j + 1 + below[0]
    return parent


@pytest.mark.parametrize("fixture", ["spd_small", "spd_medium",
                                     "spd_irregular", "spd_dense_ish"])
def test_matches_brute_force(fixture, request):
    matrix = request.getfixturevalue(fixture)
    parent = elimination_tree(matrix)
    want = brute_force_etree(matrix.to_dense())
    assert np.array_equal(parent, want)


def test_parent_always_greater(spd_medium):
    parent = elimination_tree(spd_medium)
    for j, p in enumerate(parent):
        assert p == NO_PARENT or p > j


def test_diagonal_matrix_is_forest_of_roots():
    m = CSCMatrix.from_dense(np.diag([1.0, 2.0, 3.0]))
    assert np.all(elimination_tree(m) == NO_PARENT)


def test_tridiagonal_is_path():
    dense = np.eye(5) * 3
    for i in range(4):
        dense[i, i + 1] = dense[i + 1, i] = -1
    parent = elimination_tree(CSCMatrix.from_dense(dense))
    assert list(parent) == [1, 2, 3, 4, NO_PARENT]


def test_requires_square():
    m = CSCMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        elimination_tree(m)


def test_children_inverse_of_parent(spd_medium):
    parent = elimination_tree(spd_medium)
    children = etree_children(parent)
    for j, kids in enumerate(children):
        for c in kids:
            assert parent[c] == j


class TestPostorder:
    def test_is_permutation(self, spd_medium):
        parent = elimination_tree(spd_medium)
        post = postorder(parent)
        assert sorted(post.tolist()) == list(range(len(parent)))

    def test_children_before_parents(self, spd_irregular):
        parent = elimination_tree(spd_irregular)
        post = postorder(parent)
        position = np.empty(len(parent), dtype=np.int64)
        position[post] = np.arange(len(parent))
        for j, p in enumerate(parent):
            if p != NO_PARENT:
                assert position[j] < position[p]

    def test_descendants_contiguous(self, spd_medium):
        # In a postorder, each subtree occupies a contiguous index range.
        parent = elimination_tree(spd_medium)
        post = postorder(parent)
        position = np.empty(len(parent), dtype=np.int64)
        position[post] = np.arange(len(parent))
        children = etree_children(parent)

        def subtree(v):
            out = [v]
            for c in children[v]:
                out.extend(subtree(c))
            return out

        for v in range(len(parent)):
            positions = sorted(position[u] for u in subtree(v))
            assert positions == list(
                range(positions[0], positions[0] + len(positions))
            )

    def test_bad_parent_array_raises(self):
        with pytest.raises(ValueError):
            postorder(np.array([1, 0], dtype=np.int64))  # a cycle


class TestLevelsHeights:
    def test_levels_roots_zero(self, spd_medium):
        parent = elimination_tree(spd_medium)
        levels = etree_levels(parent)
        for j, p in enumerate(parent):
            if p == NO_PARENT:
                assert levels[j] == 0
            else:
                assert levels[j] == levels[p] + 1

    def test_heights_leaves_zero(self, spd_medium):
        parent = elimination_tree(spd_medium)
        heights = etree_heights(parent)
        children = etree_children(parent)
        for j in range(len(parent)):
            if not children[j]:
                assert heights[j] == 0
            else:
                assert heights[j] == 1 + max(heights[c] for c in children[j])

    def test_path_heights(self):
        parent = np.array([1, 2, 3, NO_PARENT], dtype=np.int64)
        assert list(etree_heights(parent)) == [0, 1, 2, 3]
        assert list(etree_levels(parent)) == [3, 2, 1, 0]
