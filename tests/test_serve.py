"""Tests for the serving layer (repro.serve) and its foundations:
batch-invariant padded solves, the sharded analysis cache under
concurrency, protocol round trips, coalescing bit-identity, the
refactorize barrier, the socket front end, the load generator, and the
CLI commands."""

import threading

import numpy as np
import pytest

from repro.numeric.cache import AnalysisCache, analysis_cache
from repro.numeric.solver import SparseSolver
from repro.obs.metrics import global_registry
from repro.serve import (
    InProcessClient,
    LatencyRecorder,
    ServeConfig,
    SocketClient,
    SolveServer,
    run_unix_server,
)
from repro.serve import protocol
from repro.serve.bench import BenchConfig, build_workload, run_bench
from repro.serve.metrics import REQUEST_PHASE
from repro.sparse import grid_laplacian_2d, random_spd, random_unsymmetric
from repro.verify.generators import build_case


def _rhs(matrix, seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = matrix.n_rows if k is None else (matrix.n_rows, k)
    return rng.standard_normal(shape)


# -- batch-invariant padded solves (the bit-identity foundation) ----------


class TestRhsPad:
    @pytest.mark.parametrize("kind", ["cholesky", "lu"])
    def test_batched_equals_singles_bitwise(self, kind):
        matrix = (random_spd(40, density=0.1, seed=5) if kind == "cholesky"
                  else random_unsymmetric(40, density=0.1, seed=5))
        pad = 8
        solver = SparseSolver(matrix, kind=kind, rhs_pad=pad)
        panel = _rhs(matrix, seed=1, k=pad)
        batched = solver.solve(panel)
        for j in range(pad):
            single = solver.solve(panel[:, j])
            assert np.array_equal(batched[:, j], single)

    def test_partial_batch_matches_full(self):
        matrix = grid_laplacian_2d(6, seed=2)
        solver = SparseSolver(matrix, rhs_pad=8)
        panel = _rhs(matrix, seed=3, k=8)
        full = solver.solve(panel)
        half = solver.solve(panel[:, :4])
        assert np.array_equal(full[:, :4], half)

    def test_padded_matches_unpadded_numerically(self):
        matrix = grid_laplacian_2d(6, seed=2)
        b = _rhs(matrix, seed=4)
        plain = SparseSolver(matrix).solve(b)
        padded = SparseSolver(matrix, rhs_pad=16).solve(b)
        assert padded.shape == plain.shape
        assert np.allclose(padded, plain, rtol=1e-12, atol=1e-14)
        assert SparseSolver(matrix, rhs_pad=16).residual_norm(
            matrix, padded, b) < 1e-10

    def test_wider_than_pad_passes_through(self):
        matrix = grid_laplacian_2d(5, seed=1)
        solver = SparseSolver(matrix, rhs_pad=4)
        panel = _rhs(matrix, seed=5, k=9)
        x = solver.solve(panel)
        assert x.shape == panel.shape
        assert solver.residual_norm(matrix, x[:, 0], panel[:, 0]) < 1e-10

    def test_rhs_pad_validation(self):
        matrix = grid_laplacian_2d(4, seed=0)
        with pytest.raises(ValueError, match="rhs_pad"):
            SparseSolver(matrix, rhs_pad=0)


# -- sharded analysis cache under concurrency -----------------------------


class TestShardedCacheConcurrency:
    def test_concurrent_hammering_integrity(self):
        cache = AnalysisCache(capacity=8, shards=4)
        matrices = [random_spd(12 + i, density=0.3, seed=i)
                    for i in range(6)]
        n_threads, per_thread = 8, 30
        seen: list[dict] = [dict() for _ in range(n_threads)]
        errors = []

        def worker(tid):
            rng = np.random.default_rng(tid)
            try:
                for _ in range(per_thread):
                    i = int(rng.integers(len(matrices)))
                    symbolic = cache.get_or_analyze(
                        matrices[i], kind="cholesky", ordering="amd")
                    assert symbolic.n == matrices[i].n_rows
                    seen[tid][i] = symbolic
                    # The bound must hold at every instant, not only at
                    # the end.
                    assert len(cache) <= cache.capacity
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Counter accuracy: every operation is exactly one hit or miss.
        assert cache.hits + cache.misses == n_threads * per_thread
        assert len(cache) <= cache.capacity
        stats = cache.stats()
        assert stats["hits"] == cache.hits
        assert stats["misses"] == cache.misses
        assert sum(s["size"] for s in cache.shard_stats()) == len(cache)

    def test_hot_entries_share_one_object(self):
        # With capacity >= working set, every warm hit must return the
        # same analysis object per pattern (the whole point of the
        # cache).  Pre-warm sequentially: racing *cold* misses on one
        # key may each analyze (documented last-writer-wins), so only
        # the hit path guarantees object identity.
        cache = AnalysisCache(capacity=16, shards=4)
        matrices = [random_spd(15 + i, density=0.3, seed=100 + i)
                    for i in range(4)]
        warm = [cache.get_or_analyze(m, kind="cholesky", ordering="amd")
                for m in matrices]
        results: list[list] = [[] for _ in range(4)]

        def worker(tid):
            for i, m in enumerate(matrices):
                results[tid].append(
                    cache.get_or_analyze(m, kind="cholesky",
                                         ordering="amd"))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(len(matrices)):
            assert all(results[t][i] is warm[i] for t in range(4))

    def test_single_thread_lru_semantics_preserved(self):
        # The sharded cache keeps exact global LRU order sequentially.
        cache = AnalysisCache(capacity=2, shards=4)
        a, b, c = (random_spd(10 + i, density=0.4, seed=200 + i)
                   for i in range(3))
        sa = cache.get_or_analyze(a, kind="cholesky", ordering="amd")
        cache.get_or_analyze(b, kind="cholesky", ordering="amd")
        cache.get_or_analyze(a, kind="cholesky", ordering="amd")  # a hot
        cache.get_or_analyze(c, kind="cholesky", ordering="amd")  # evict b
        assert cache.evictions == 1
        assert cache.get_or_analyze(
            a, kind="cholesky", ordering="amd") is sa      # still cached
        before = cache.misses
        cache.get_or_analyze(b, kind="cholesky", ordering="amd")
        assert cache.misses == before + 1                  # b was evicted

    def test_shard_distribution_and_index_stability(self):
        cache = AnalysisCache(capacity=64, shards=8)
        for i in range(20):
            cache.get_or_analyze(random_spd(10 + i, density=0.4,
                                            seed=300 + i),
                                 kind="cholesky", ordering="amd")
        assert len(cache) == 20
        # Stable assignment: re-deriving the shard index for every key
        # finds the entry in that shard.
        for shard_index, shard in enumerate(cache._shards):
            for key in shard.entries:
                assert cache.shard_index(key) == shard_index

    def test_process_global_cache_is_sharded(self):
        assert analysis_cache().n_shards >= 1
        assert analysis_cache().capacity >= 1


# -- protocol -------------------------------------------------------------


class TestProtocol:
    def test_matrix_round_trip(self):
        matrix = grid_laplacian_2d(4, seed=0)
        again = protocol.matrix_from_wire(protocol.matrix_to_wire(matrix))
        assert np.array_equal(again.indptr, matrix.indptr)
        assert np.array_equal(again.indices, matrix.indices)
        assert np.array_equal(again.data, matrix.data)

    def test_frame_round_trip(self):
        msg = {"op": "solve", "id": 7, "pattern": "p", "b": [1.0, 2.0]}
        assert protocol.decode(protocol.encode(msg)) == msg

    @pytest.mark.parametrize("bad,match", [
        ({"op": "nope"}, "unknown op"),
        ({"op": "factor"}, "matrix"),
        ({"op": "solve", "b": [1.0]}, "pattern"),
        ({"op": "solve", "pattern": "p"}, "'b'"),
        ({"op": "refactorize", "pattern": "p"}, "data"),
    ])
    def test_validation_errors(self, bad, match):
        with pytest.raises(protocol.ProtocolError, match=match):
            protocol.validate_request(bad)

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")


# -- server core ----------------------------------------------------------


@pytest.fixture
def server():
    srv = SolveServer(ServeConfig(coalesce_window_s=0.002, max_batch=8))
    yield srv
    srv.shutdown()


class TestSolveServer:
    def test_factor_solve_round_trip(self, server):
        matrix = grid_laplacian_2d(6, seed=1)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        b = _rhs(matrix, seed=1)
        x = client.solve(pattern, b)
        reference = SparseSolver(matrix, rhs_pad=8)
        assert np.array_equal(x, reference.solve(b))

    def test_coalesced_bit_identical_to_sequential(self, server):
        matrix = grid_laplacian_2d(6, seed=1)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        vectors = [_rhs(matrix, seed=10 + i) for i in range(24)]
        results = [None] * len(vectors)

        def go(i):
            results[i] = client.solve(pattern, vectors[i])

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(len(vectors))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Sequential per-request reference through a direct solver with
        # the server's padding width: every coalesced response must be
        # bit-identical, whatever batch it rode in.
        reference = SparseSolver(matrix, rhs_pad=8)
        for i, vector in enumerate(vectors):
            assert np.array_equal(results[i], reference.solve(vector))
        stats = server.stats(export=False)
        assert stats["coalesce"]["batches"] >= 1
        assert stats["coalesce"]["batch_max"] <= 8
        assert server.latency.count() == len(vectors) + 1  # + factor

    def test_refactorize_is_a_barrier(self, server):
        # Requests behind a refactorize see the new values: scaling A by
        # 2 must exactly halve the solution of the queued solve.
        matrix = grid_laplacian_2d(6, seed=2)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        b = _rhs(matrix, seed=3)
        x1 = client.solve(pattern, b)
        client.refactorize(pattern, matrix.data * 2.0)
        x2 = client.solve(pattern, b)
        assert np.allclose(x2, x1 / 2.0, rtol=1e-12)

    def test_warm_refactor_via_factor(self, server):
        matrix = grid_laplacian_2d(5, seed=4)
        first = server.factor(matrix)
        assert first["warm"] is False
        again = server.factor(matrix)
        assert again["warm"] is True
        assert again["pattern"] == first["pattern"]

    def test_distinct_patterns_distinct_workers(self, server):
        a = grid_laplacian_2d(5, seed=5)
        b_mat = random_spd(20, density=0.3, seed=6)
        pa = server.factor(a)["pattern"]
        pb = server.factor(b_mat)["pattern"]
        assert pa != pb
        assert server.stats(export=False)["patterns"] == 2

    def test_solve_unknown_pattern_raises(self, server):
        with pytest.raises(KeyError, match="unknown pattern"):
            server.solve("nope", np.ones(3))

    def test_multi_rhs_request(self, server):
        matrix = grid_laplacian_2d(5, seed=7)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        panel = _rhs(matrix, seed=8, k=3)
        x = client.solve(pattern, panel)
        reference = SparseSolver(matrix, rhs_pad=8)
        assert np.array_equal(x, reference.solve(panel))

    def test_multi_rhs_coalescing_capped_and_bit_identical(self, server):
        # Concurrent multi-column panels: no batch may overshoot
        # max_batch (that would solve at a width > rhs_pad and break
        # batch invariance), and every response must still match the
        # sequential per-request reference bit for bit.
        matrix = grid_laplacian_2d(6, seed=22)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        widths = [3, 4, 2, 5, 3, 4, 2, 5]
        panels = [_rhs(matrix, seed=30 + i, k=w)
                  for i, w in enumerate(widths)]
        results = [None] * len(panels)

        def go(i):
            results[i] = client.solve(pattern, panels[i])

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(len(panels))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = SparseSolver(matrix, rhs_pad=8)
        for panel, result in zip(panels, results):
            assert np.array_equal(result, reference.solve(panel))
        assert server.stats(export=False)["coalesce"]["batch_max"] <= 8

    def test_oversized_panel_chunked_bit_identically(self, server):
        # A single request wider than max_batch is solved in
        # rhs_pad-wide chunks, so each column's bits still equal a
        # lone single-RHS solve — batching-independent for any k.
        matrix = grid_laplacian_2d(5, seed=23)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        panel = _rhs(matrix, seed=40, k=19)        # > max_batch = 8
        x = client.solve(pattern, panel)
        assert x.shape == panel.shape
        reference = SparseSolver(matrix, rhs_pad=8)
        for j in range(panel.shape[1]):
            assert np.array_equal(x[:, j], reference.solve(panel[:, j]))

    def test_failed_batch_fails_every_rider(self, server):
        # A solve failure mid-batch must reject every coalesced
        # ticket's future — an unresolved peer would hang its client
        # in Future.result() forever.
        from repro.serve.server import _Ticket

        matrix = grid_laplacian_2d(5, seed=24)
        pattern = server.factor(matrix)["pattern"]
        worker = server._worker(pattern)

        def boom(panel):
            raise RuntimeError("solver exploded")

        worker.solver.solve = boom
        tickets = [_Ticket(op="solve",
                           b=np.ones((matrix.n_rows, 1)), vector=True)
                   for _ in range(6)]
        # Enqueue all six under the worker's lock so they coalesce
        # into one batch when it wakes.
        with worker._cond:
            worker._queue.extend(tickets)
            worker._cond.notify()
        for ticket in tickets:
            with pytest.raises(RuntimeError, match="solver exploded"):
                ticket.future.result(timeout=10.0)

    def test_wrong_length_b_rejected_at_submission(self, server):
        matrix = grid_laplacian_2d(5, seed=25)
        pattern = server.factor(matrix)["pattern"]
        with pytest.raises(ValueError, match="rows"):
            server.submit_solve(pattern, np.ones(matrix.n_rows + 1))
        with pytest.raises(ValueError, match="rows"):
            server.submit_solve(pattern,
                                np.ones((matrix.n_rows - 1, 3)))
        # Healthy traffic is unaffected afterwards.
        x = server.solve(pattern, np.ones(matrix.n_rows))
        assert x.shape == (matrix.n_rows,)

    def test_handle_protocol_errors_are_responses(self, server):
        response = server.handle({"op": "bogus", "id": 9})
        assert response == {"id": 9, "ok": False,
                            "error": response["error"]}
        assert "unknown op" in response["error"]
        response = server.handle({"op": "solve", "id": 10,
                                  "pattern": "missing", "b": [1.0]})
        assert response["ok"] is False

    def test_handle_full_protocol_round_trip(self, server):
        matrix = grid_laplacian_2d(5, seed=9)
        fr = server.handle({"op": "factor", "id": 1,
                            "matrix": protocol.matrix_to_wire(matrix)})
        assert fr["ok"] and fr["warm"] is False
        b = _rhs(matrix, seed=11)
        sr = server.handle({"op": "solve", "id": 2,
                            "pattern": fr["pattern"],
                            "b": b.tolist()})
        assert sr["ok"] and sr["batch_k"] >= 1
        reference = SparseSolver(matrix, rhs_pad=8)
        assert np.array_equal(np.asarray(sr["x"]), reference.solve(b))
        st = server.handle({"op": "stats", "id": 3})
        assert st["ok"] and st["stats"]["patterns"] == 1

    def test_uncoalesced_config_batches_of_one(self):
        srv = SolveServer(ServeConfig(coalesce_window_s=0.0, max_batch=1,
                                      rhs_pad=1))
        try:
            matrix = grid_laplacian_2d(5, seed=10)
            pattern = srv.factor(matrix)["pattern"]
            for i in range(4):
                srv.solve(pattern, _rhs(matrix, seed=i))
            stats = srv.stats(export=False)
            assert stats["coalesce"]["batch_max"] == 1
        finally:
            srv.shutdown()

    def test_stats_exports_serve_gauges(self, server):
        matrix = grid_laplacian_2d(5, seed=11)
        pattern = server.factor(matrix)["pattern"]
        server.solve(pattern, _rhs(matrix))
        server.stats(export=True)
        snapshot = global_registry().snapshot()
        assert "serve.latency.request.p50_ms" in snapshot
        assert snapshot["serve.requests.solve"] == 1


# -- socket front end -----------------------------------------------------


class TestSocketServer:
    def test_socket_round_trip_and_shutdown(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        srv = SolveServer(ServeConfig(max_batch=4))
        ready = threading.Event()
        thread = threading.Thread(target=run_unix_server,
                                  args=(srv, path, ready), daemon=True)
        thread.start()
        assert ready.wait(10.0)
        matrix = grid_laplacian_2d(6, seed=12)
        b = _rhs(matrix, seed=13)
        reference = SparseSolver(matrix, rhs_pad=4)
        with SocketClient(path) as client:
            pattern = client.factor(matrix)
            x = client.solve(pattern, b)
            assert np.array_equal(x, reference.solve(b))
            panel = _rhs(matrix, seed=14, k=3)
            xs = client.solve(pattern, panel)
            assert np.array_equal(xs, reference.solve(panel))
            client.refactorize(pattern, matrix.data * 2.0)
            assert np.allclose(client.solve(pattern, b),
                               reference.solve(b) / 2.0, rtol=1e-12)
            assert client.stats()["patterns"] == 1
            with pytest.raises(RuntimeError, match="unknown pattern"):
                client.solve("missing", b)
            client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()


# -- load generator -------------------------------------------------------


class TestBench:
    def test_workload_is_deterministic_and_filtered(self):
        config = BenchConfig(patterns=2, min_n=10, max_n=48)
        m1, p1 = build_workload(config)
        m2, p2 = build_workload(config)
        assert [m.n_rows for m in m1] == [m.n_rows for m in m2]
        assert all(m.n_rows >= 10 for m in m1)
        assert np.array_equal(p1[0][0], p2[0][0])

    def test_closed_loop_bench_smoke(self):
        config = BenchConfig(patterns=1, clients=4, requests=24,
                             rhs_pool=4, min_n=10, max_n=48,
                             max_batch=4, coalesce_window_s=0.001)
        result = run_bench(config)
        assert result["coalesced"]["completed"] == 24
        assert not result["coalesced"]["errors"]
        assert result["verify"]["bit_identical"]
        assert result["speedup_coalesce"] > 0
        snapshot = global_registry().snapshot()
        assert "serve.speedup.coalesce" in snapshot
        assert "serve.throughput.rps" in snapshot
        assert "serve.latency.request.p95_ms" in snapshot

    def test_open_loop_bench_smoke(self):
        config = BenchConfig(patterns=1, requests=16, mode="open",
                             rate=400.0, rhs_pool=4, min_n=10,
                             max_n=48, max_batch=4, baseline=False)
        result = run_bench(config)
        assert result["coalesced"]["completed"] == 16
        assert result["verify"]["bit_identical"]
        assert "baseline" not in result

    def test_bench_config_validation(self):
        with pytest.raises(ValueError, match="family"):
            run_bench(BenchConfig(family="not_a_family"))
        with pytest.raises(ValueError, match="mode"):
            run_bench(BenchConfig(mode="sideways"))

    def test_fuzz_family_case_compatible(self):
        # The bench builds on the fuzz generators; spot-check the
        # contract it relies on (expect flag + solvable matrix).
        case = build_case("spd_random", 0, max_n=48)
        assert case.expect in ("ok", "singular")


# -- serve metrics helpers ------------------------------------------------


class TestServeMetrics:
    def test_latency_recorder_summary_and_export(self):
        recorder = LatencyRecorder()
        for ms in (1.0, 2.0, 3.0):
            recorder.observe(REQUEST_PHASE, ms / 1e3)
        summary = recorder.summary()[REQUEST_PHASE]
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0)
        recorder.export()
        snapshot = global_registry().snapshot()
        assert snapshot["serve.latency.request.p50_ms"] == \
            pytest.approx(2.0)

    def test_serve_metrics_are_watched(self):
        from repro.obs.artifact import WATCHED_METRICS
        for name in ("serve.latency.request.p95_ms",
                     "serve.throughput.rps",
                     "serve.coalesce.batch_mean",
                     "serve.speedup.coalesce"):
            assert name in WATCHED_METRICS


# -- CLI ------------------------------------------------------------------


class TestServeCli:
    def test_serve_bench_command(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "serve.json"
        history = tmp_path / "history"
        code = main([
            "serve-bench", "--patterns", "1", "--clients", "4",
            "--requests", "16", "--max-batch", "4", "--min-n", "10",
            "--max-n", "48", "--window", "1",
            "--metrics", str(metrics), "--history", str(history),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        assert "coalescing speedup" in out
        assert metrics.exists()
        assert any(history.iterdir())

    def test_serve_command_clears_stale_socket(self, tmp_path, capsys):
        # A crashed run leaves its socket file behind; restarting must
        # unlink it and bind rather than die with EADDRINUSE.
        import time

        from repro.cli import main

        path = tmp_path / "serve.sock"
        path.touch()                              # stale leftover
        done = {}

        def run():
            done["code"] = main(["serve", "--socket", str(path)])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        client = None
        deadline = time.time() + 10.0
        while time.time() < deadline:
            try:
                client = SocketClient(str(path))
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "server never came up"
        try:
            client.shutdown()
        finally:
            client.close()
        thread.join(timeout=10.0)
        assert done.get("code") == 0

    def test_solve_repeat_exports_serve_gauges(self, capsys):
        from repro.cli import main

        code = main(["solve", "suite:ASIC_680k@0.02", "--repeat", "3",
                     "--rhs-pad", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "p50" in out
        snapshot = global_registry().snapshot()
        assert "serve.latency.request.p50_ms" in snapshot
        assert "serve.throughput.rps" in snapshot


# -- environment knobs ----------------------------------------------------


class TestCacheEnvKnobs:
    def test_env_overrides(self, monkeypatch):
        from repro.numeric import cache as cache_mod

        monkeypatch.setenv(cache_mod.ENV_CAPACITY, "5")
        monkeypatch.setenv(cache_mod.ENV_SHARDS, "3")
        assert cache_mod._capacity_from_env() == 5
        assert cache_mod._shards_from_env() == 3
        monkeypatch.setenv(cache_mod.ENV_CAPACITY, "junk")
        assert cache_mod._capacity_from_env() == cache_mod.DEFAULT_CAPACITY


# -- live observability (ISSUE 10) ----------------------------------------


class TestLiveObservability:
    def test_stats_default_is_side_effect_free(self, server):
        matrix = grid_laplacian_2d(6, seed=1)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        client.solve(pattern, _rhs(matrix, seed=1))
        # Polling stats must not mutate the global registry: a dashboard
        # refreshing every second would otherwise overwrite the gauges a
        # bench run exported.
        stats = client.stats()
        assert stats["responses"] == 2
        snapshot = global_registry().snapshot()
        assert "serve.latency.request.p50_ms" not in snapshot
        assert "serve.window.latency.request.p50_ms" not in snapshot
        # The explicit collection point exports everything, including
        # the windowed SLO gauges and the liveness gauges.
        server.stats(export=True)
        snapshot = global_registry().snapshot()
        for name in ("serve.latency.request.p50_ms",
                     "serve.window.latency.request.p50_ms",
                     "serve.window.throughput.rps",
                     "serve.queue.depth", "serve.uptime_s"):
            assert name in snapshot, name

    def test_stats_window_section_shape(self, server):
        matrix = grid_laplacian_2d(6, seed=2)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        for i in range(4):
            client.solve(pattern, _rhs(matrix, seed=20 + i))
        stats = client.stats(window_s=30.0)
        assert stats["window_s"] == 30.0
        window = stats["window"]
        assert window["throughput_rps"] > 0
        assert window["latency_ms"][REQUEST_PHASE]["count"] == 5
        assert set(window["latency_ms"][REQUEST_PHASE]) >= {
            "count", "rate_per_s", "p50_ms", "p95_ms", "p99_ms",
            "max_ms"}
        worker = stats["workers"][pattern]
        assert worker["alive"] and worker["served"] == 5
        assert worker["queue_depth"] == 0

    def test_health_shape_and_heartbeat_advances(self):
        import time

        srv = SolveServer(ServeConfig(heartbeat_s=0.05))
        try:
            health = srv.health()
            assert health["ok"] is True
            for key in ("uptime_s", "heartbeats", "heartbeat_age_s",
                        "patterns", "inflight", "queue_depth",
                        "workers", "analysis_cache"):
                assert key in health, key
            deadline = time.time() + 5.0
            while (srv.health()["heartbeats"] < 2
                   and time.time() < deadline):
                time.sleep(0.02)
            assert srv.health()["heartbeats"] >= 2
            assert srv.health()["uptime_s"] > 0
        finally:
            srv.shutdown()
        assert srv.health()["ok"] is False

    def test_request_id_echo_and_exemplars(self, server):
        matrix = grid_laplacian_2d(6, seed=3)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        future = server.submit_solve(pattern, _rhs(matrix, seed=4),
                                     request_id="trace-me")
        result = future.result(timeout=10.0)
        assert result["request_id"] == "trace-me"
        exemplars = server.exemplars.snapshot()
        assert any(e["request_id"] == "trace-me" for e in exemplars)
        slow = exemplars[0]
        assert set(slow["phases_ms"]) == {"queue_wait", "coalesce_wait",
                                          "solve"}
        assert slow["latency_ms"] >= max(slow["phases_ms"].values())

    def test_trace_ids_cover_coalesced_batch_exactly_once(self, tmp_path):
        from collections import Counter

        from repro.obs import telemetry

        telemetry.start(tmp_path, run_id="run-serve-trace",
                        heartbeat_s=None)
        srv = SolveServer(ServeConfig(coalesce_window_s=0.005,
                                      max_batch=8))
        try:
            matrix = grid_laplacian_2d(6, seed=5)
            pattern = srv.factor(matrix)["pattern"]
            futures = {}
            for i in range(16):
                rid = f"req-{i}"
                futures[rid] = srv.submit_solve(
                    pattern, _rhs(matrix, seed=30 + i), request_id=rid)
            for future in futures.values():
                future.result(timeout=30.0)
        finally:
            srv.shutdown()
            telemetry.stop(dump_registry=False)
        timeline = telemetry.collect(tmp_path, run_id="run-serve-trace")
        batches = [s for s in timeline.spans()
                   if s["name"] == "serve.batch"]
        assert batches, "no serve.batch spans recorded"
        seen = Counter(rid for s in batches
                       for rid in s["attrs"]["riders"])
        # Every request rode exactly one batch — none lost, none solved
        # twice — and the span knows the batch width it rode in.
        assert seen == Counter(futures.keys())
        assert all(s["attrs"]["requests"] == len(s["attrs"]["riders"])
                   for s in batches)
        request_spans = [s for s in timeline.spans()
                         if s["name"] == "serve.request"]
        assert {s["attrs"]["request_id"] for s in request_spans} >= set(
            futures)

    def test_concurrent_polling_under_traffic(self, server):
        # Dashboards poll stats/health while traffic is coalescing; the
        # lock ordering must never deadlock and snapshots must stay
        # internally consistent.  A deadlock shows up as a join timeout.
        matrix = grid_laplacian_2d(7, seed=6)
        client = InProcessClient(server)
        pattern = client.factor(matrix)
        vectors = [_rhs(matrix, seed=40 + i) for i in range(24)]
        results = [None] * len(vectors)
        stop = threading.Event()
        polls = {"stats": 0, "health": 0}
        poll_errors = []

        def poller():
            while not stop.is_set():
                try:
                    stats = server.stats(export=False)
                    health = server.health()
                except Exception as exc:  # pragma: no cover - failure
                    poll_errors.append(exc)
                    return
                polls["stats"] += 1
                polls["health"] += 1
                assert stats["responses"] >= 0
                assert health["queue_depth"] >= 0

        def go(i):
            results[i] = client.solve(pattern, vectors[i])

        pollers = [threading.Thread(target=poller) for _ in range(3)]
        workers = [threading.Thread(target=go, args=(i,))
                   for i in range(len(vectors))]
        for t in pollers + workers:
            t.start()
        for t in workers:
            t.join(timeout=30.0)
        stop.set()
        for t in pollers:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in pollers + workers), \
            "deadlock: poller or worker never finished"
        assert not poll_errors
        assert polls["stats"] > 0
        reference = SparseSolver(matrix, rhs_pad=8)
        for i, vector in enumerate(vectors):
            assert np.array_equal(results[i], reference.solve(vector))
        assert server.stats(export=False)["responses"] == \
            len(vectors) + 1

    def test_latency_recorder_ring_is_bounded(self):
        recorder = LatencyRecorder(ring=8)
        for i in range(50):
            recorder.observe(REQUEST_PHASE, i / 1e3)
        # Lifetime count is exact even though only 8 samples are
        # retained (the unbounded-list bug this replaces).
        assert recorder.count(REQUEST_PHASE) == 50
        summary = recorder.summary()[REQUEST_PHASE]
        assert summary["count"] == 50
        assert recorder._window(REQUEST_PHASE).retained() == 8
        # Percentiles now describe the newest 8 samples (42..49 ms).
        assert summary["p50_ms"] >= 42.0
        window = recorder.window_summary(window_s=1e9)
        assert window[REQUEST_PHASE]["count"] == 8

    def test_window_summary_zero_fills_idle_phases(self):
        recorder = LatencyRecorder(ring=16)
        recorder.observe(REQUEST_PHASE, 0.001)
        window = recorder.window_summary(window_s=60.0)
        # Layout-stable: every known phase appears even when idle.
        assert window["solve"]["count"] == 0
        assert window["solve"]["p99_ms"] == 0.0

    def test_windowed_gauges_are_watched(self):
        from repro.obs.artifact import WATCHED_METRICS
        for name in ("serve.window.latency.request.p50_ms",
                     "serve.window.latency.request.p99_ms",
                     "serve.window.throughput.rps"):
            assert name in WATCHED_METRICS


class TestObservabilityProtocol:
    def test_health_op_round_trips(self, server):
        request = protocol.decode(protocol.encode({"op": "health",
                                                   "id": 3}))
        response = server.handle(request)
        assert response["ok"] and response["id"] == 3
        assert response["health"]["ok"] is True
        assert response["health"]["workers"] == {}

    def test_stats_op_options(self, server):
        response = server.handle({"op": "stats", "id": 1,
                                  "window_s": 5.0})
        assert response["stats"]["window_s"] == 5.0
        response = server.handle({"op": "stats", "id": 2,
                                  "format": "text"})
        assert response["text"].startswith("# TYPE repro_")

    @pytest.mark.parametrize("bad,match", [
        ({"op": "stats", "format": "xml"}, "format"),
        ({"op": "stats", "window_s": -1.0}, "window_s"),
        ({"op": "stats", "window_s": "soon"}, "window_s"),
    ])
    def test_stats_validation(self, bad, match):
        with pytest.raises(protocol.ProtocolError, match=match):
            protocol.validate_request(bad)

    def test_health_over_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        srv = SolveServer(ServeConfig(max_batch=4))
        ready = threading.Event()
        thread = threading.Thread(target=run_unix_server,
                                  args=(srv, path, ready), daemon=True)
        thread.start()
        assert ready.wait(10.0)
        matrix = grid_laplacian_2d(6, seed=7)
        with SocketClient(path) as client:
            pattern = client.factor(matrix)
            client.solve(pattern, _rhs(matrix, seed=8))
            health = client.health()
            assert health["ok"] and health["patterns"] == 1
            assert health["workers"][pattern]["alive"]
            text = client.stats(format="text")
            assert "repro_health_ok 1" in text
            assert "repro_serve_responses" in text
            stats = client.stats(window_s=10.0)
            assert stats["window_s"] == 10.0
            client.shutdown()
        thread.join(timeout=10.0)


class TestObservabilityCli:
    @staticmethod
    def _boot(tmp_path):
        path = str(tmp_path / "serve.sock")
        srv = SolveServer(ServeConfig(max_batch=4))
        ready = threading.Event()
        thread = threading.Thread(target=run_unix_server,
                                  args=(srv, path, ready), daemon=True)
        thread.start()
        assert ready.wait(10.0)
        matrix = grid_laplacian_2d(6, seed=9)
        client = SocketClient(path)
        pattern = client.factor(matrix)
        for i in range(3):
            client.solve(pattern, _rhs(matrix, seed=50 + i))
        return path, client, thread

    def test_serve_stats_command(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path, client, thread = self._boot(tmp_path)
        try:
            assert main(["serve-stats", "--socket", path]) == 0
            pretty = capsys.readouterr().out
            assert "window" in pretty and "lifetime" in pretty
            assert main(["serve-stats", "--socket", path,
                         "--format", "json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["health"]["ok"] is True
            assert payload["stats"]["responses"] == 4
            assert main(["serve-stats", "--socket", path,
                         "--format", "text"]) == 0
            assert "# TYPE repro_" in capsys.readouterr().out
        finally:
            client.shutdown()
            client.close()
            thread.join(timeout=10.0)

    def test_serve_stats_unreachable_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve-stats", "--socket",
                     str(tmp_path / "nope.sock")])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_top_renders_frames(self, tmp_path, capsys):
        from repro.cli import main

        path, client, thread = self._boot(tmp_path)
        try:
            code = main(["serve-top", "--socket", path,
                         "--iterations", "2", "--interval", "0.1",
                         "--no-clear"])
            out = capsys.readouterr().out
            assert code == 0
            assert out.count("repro serve-top") == 2
            assert "pattern" in out and "slowest requests" in out
        finally:
            client.shutdown()
            client.close()
            thread.join(timeout=10.0)
